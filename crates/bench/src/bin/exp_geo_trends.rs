//! Experiment E9 — the "no geographic trends" finding (§3).
//!
//! Prior work hypothesized European SCs would differ from US ones; the
//! survey "discovered that there was not a difference". Table 2 does not
//! publish the row→country mapping, so we compute the sharper statement the
//! published marginals support: the minimum two-sided Fisher p-value ANY
//! assignment of 4 US / 6 EU labels could achieve, per component.

use hpcgrid_bench::table::TextTable;
use hpcgrid_core::survey::analysis::{fisher_two_sided, geo_trend_feasibility};
use hpcgrid_core::survey::corpus::SurveyCorpus;

fn main() {
    println!("== E9: US-vs-Europe trend feasibility ==\n");
    let corpus = SurveyCorpus::published();
    let feas = geo_trend_feasibility(&corpus, 4);

    let mut t = TextTable::new(vec![
        "component",
        "present",
        "min achievable p (two-sided)",
        "nominally significant split possible?",
    ]);
    for g in &feas {
        t.row(vec![
            g.kind.label().to_string(),
            format!("{}/{}", g.present, g.pop),
            format!("{:.4}", g.min_p_two_sided),
            if g.significance_possible {
                "only at the single most extreme split"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("observed reality check: a balanced split (the paper reports no");
    println!("difference was found) is nowhere near significance, e.g. a 5-of-10");
    println!(
        "component split 2 US / 3 EU has p = {:.3}.",
        fisher_two_sided(10, 5, 4, 2)
    );
    println!(
        "\npaper: 'the survey results did not show any geographic trends' — \
         with n = 10 the test floor is p = 1/30; the null finding is close to \
         what the sample size guarantees."
    );
    for g in &feas {
        assert!(g.min_p_two_sided >= 1.0 / 30.0 - 1e-9);
    }
    assert!(fisher_two_sided(10, 5, 4, 2) > 0.5);
    println!("E9 OK");
}
