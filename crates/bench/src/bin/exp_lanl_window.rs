//! Experiment E6 — the LANL case study (§4): ancillary-service value in the
//! 15-minute-to-1-hour window from office-building flexibility and on-site
//! generation, with zero depreciation pressure on the SC itself.

use hpcgrid_bench::table::TextTable;
use hpcgrid_dr::ancillary::AncillaryPlan;
use hpcgrid_dr::program::CapacityProgram;
use hpcgrid_facility::generator::OnsiteGenerator;
use hpcgrid_units::{Duration, Power};

fn main() {
    println!("== E6: LANL-style ancillary services, 15 min – 1 h window ==\n");
    let plan = AncillaryPlan {
        office_flex: Power::from_megawatts(1.5),
        generators: vec![OnsiteGenerator::reference_diesel()],
        program: CapacityProgram::reference(),
    };
    println!(
        "offered capacity: {} (office 1.5 MW + diesel 2 MW)",
        plan.offered_capacity()
    );
    println!(
        "availability revenue (8000 h/yr): {}\n",
        plan.availability_revenue(Duration::from_hours(8_000.0))
    );

    let mut t = TextTable::new(vec![
        "dispatch length",
        "in product window?",
        "delivered",
        "fuel cost",
    ]);
    for minutes in [5.0, 15.0, 30.0, 60.0, 120.0] {
        let d = Duration::from_minutes(minutes);
        match plan.dispatch(d) {
            Ok(out) => {
                t.row(vec![
                    format!("{d}"),
                    "yes".to_string(),
                    out.delivered.to_string(),
                    out.fuel_cost.to_string(),
                ]);
            }
            Err(_) => {
                t.row(vec![
                    format!("{d}"),
                    "no".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    println!("{}", t.render());

    // The paper's window: only 15 min–1 h dispatches are feasible products.
    assert!(plan.dispatch(Duration::from_minutes(5.0)).is_err());
    assert!(plan.dispatch(Duration::from_minutes(15.0)).is_ok());
    assert!(plan.dispatch(Duration::from_hours(1.0)).is_ok());
    assert!(plan.dispatch(Duration::from_hours(2.0)).is_err());

    let net = plan
        .annual_net(Duration::from_hours(8_000.0), 24, Duration::from_hours(1.0))
        .unwrap();
    println!("annual net (24 one-hour dispatches): {net}");
    println!(
        "\npaper: LANL sees 'opportunities in providing DR services in the 15 min \
         to 1 hour timescale' via office loads and on-site generation — the plan \
         is net-positive because none of the shed resources carry SC depreciation \
         (contrast exp_dr_breakeven)."
    );
    assert!(net.is_positive());
    println!("E6 OK");
}
