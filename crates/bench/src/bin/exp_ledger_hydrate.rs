//! Experiment X9 (extension) — the ledger-hydration baseline.
//!
//! A contract ledger's whole point is that taking one more revision is
//! cheap: hydrating at revision N+1 when revision N's kernel is cached is a
//! [`CompiledContract::patch`] of one delta, not a recompile of the whole
//! contract over the whole horizon. This experiment measures exactly that
//! edge — each timed iteration *appends a fresh amendment and asks for the
//! new head's kernel* — against the naive path that hydrates the head
//! contract by replay and compiles it from scratch. The workload is the
//! rich sweep contract (four tariffs, demand charge, service fee) over a
//! year horizon, where a full lowering is genuinely expensive and a fee
//! amendment patch is a validated field write.
//!
//! Emits the measured numbers as `BENCH_ledger.json` so the baseline is
//! committed next to the code it describes, and asserts the patch path's
//! release-build speedup floor.

use hpcgrid_bench::table::TextTable;
use hpcgrid_core::compiled::CompiledContract;
use hpcgrid_core::contract::{Contract, ContractDelta};
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::ledger::{ContractId, ContractLedger};
use hpcgrid_core::tariff::{DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_timeseries::series::{PowerSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, Money, MonthSet, Power, SimTime, TimeOfDay,
};
use std::hint::black_box;
use std::time::Instant;

/// A year horizon: the scale at which recompiling per amendment hurts.
const HORIZON_DAYS: u64 = 365;

/// The utility-shaped TOU schedule from the X4 baseline: month- and
/// weekday-filtered windows, so lowering it walks the calendar.
fn tou_schedule() -> Tariff {
    Tariff::TimeOfUse(TouTariff {
        windows: vec![
            TouWindow {
                months: Some(MonthSet::summer()),
                days: DayFilter::WeekdaysOnly,
                from: TimeOfDay::new(14, 0),
                to: TimeOfDay::new(20, 0),
                price: EnergyPrice::per_kilowatt_hour(0.24),
            },
            TouWindow {
                months: None,
                days: DayFilter::WeekdaysOnly,
                from: TimeOfDay::new(7, 0),
                to: TimeOfDay::new(22, 0),
                price: EnergyPrice::per_kilowatt_hour(0.11),
            },
            TouWindow {
                months: None,
                days: DayFilter::All,
                from: TimeOfDay::new(22, 0),
                to: TimeOfDay::new(7, 0),
                price: EnergyPrice::per_kilowatt_hour(0.04),
            },
        ],
        base: EnergyPrice::per_kilowatt_hour(0.08),
    })
}

/// The rich contract a long-lived ESP relationship accumulates: fixed
/// rider, utility TOU, day/night TOU, demand charge, service fee.
fn rich_contract() -> Contract {
    Contract::builder("esp-master-agreement")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.015)))
        .tariff(tou_schedule())
        .tariff(Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.03),
            EnergyPrice::per_kilowatt_hour(0.012),
        ))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .monthly_fee(Money::from_dollars(750.0))
        .build()
        .unwrap()
}

/// One day of 15-minute samples for the correctness gate's bills.
fn day_load() -> PowerSeries {
    Series::from_fn(
        SimTime::from_days(30),
        Duration::from_minutes(15.0),
        96,
        |t| {
            let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
            Power::from_megawatts(
                8.0 * (1.0 + 0.3 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos()),
            )
        },
    )
    .unwrap()
}

/// Best-of-`trials` wall time for `iters` runs of `f`, in nanoseconds per
/// single run. Best-of keeps scheduler noise out of a committed baseline.
fn time_ns<F: FnMut()>(trials: usize, iters: usize, mut f: F) -> f64 {
    // Warm-up: populate caches and fault in pages before the timed trials.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// A fresh ledger holding one stream of the rich contract.
fn fresh_stream() -> (ContractLedger, ContractId) {
    let mut ledger = ContractLedger::new(
        Calendar::default(),
        SimTime::EPOCH,
        SimTime::from_days(HORIZON_DAYS),
    );
    let id = ledger
        .create(rich_contract(), "created", SimTime::EPOCH)
        .expect("stream created");
    (ledger, id)
}

fn main() {
    println!("== X9: ledger hydration at head — patch cache vs fresh compile ==\n");
    const TRIALS: usize = 3;
    const ITERS: usize = 20;

    // Correctness gate first: a patch-cached head kernel bills
    // bit-identically to a fresh compile of the hydrated head contract.
    let load = day_load();
    {
        let (mut ledger, id) = fresh_stream();
        ledger
            .append(
                id,
                ContractDelta::SetMonthlyFee(Money::from_dollars(800.0)),
                "gate-amendment",
                SimTime::from_days(30),
            )
            .expect("amendment appended");
        let head = ledger.head(id).expect("head revision");
        let cached = ledger.kernel_at(id, head).expect("patch-cached kernel");
        let (start, end) = ledger.horizon();
        let fresh = CompiledContract::compile(
            ledger.calendar(),
            &ledger.hydrate_at(id, head).expect("hydrated head"),
            start,
            end,
        )
        .expect("fresh compile");
        assert_eq!(
            cached.bill(&load).expect("cached bill"),
            fresh.bill(&load).expect("fresh bill"),
            "patch-cached hydration must be bit-identical to a fresh compile"
        );
        println!("bit-identity: kernel_at(head) == compile(hydrate_at(head)) ✓\n");
    }

    // The patch path: every iteration appends a new fee amendment (a new
    // revision with a new fingerprint) and hydrates the new head's kernel.
    // Revision N's kernel is in the cache from the previous iteration, so
    // each hydration is exactly one `CompiledContract::patch`.
    let (mut ledger, id) = fresh_stream();
    let mut seq = 0u64;
    let patch_ns = time_ns(TRIALS, ITERS, || {
        seq += 1;
        ledger
            .append(
                id,
                ContractDelta::SetMonthlyFee(Money::from_dollars(750.0 + seq as f64)),
                &format!("amend-{seq}"),
                SimTime::from_days(30),
            )
            .expect("amendment appended");
        let head = ledger.head(id).expect("head revision");
        black_box(ledger.kernel_at(id, head).expect("patch-cached kernel"));
    });
    let revisions_taken = seq;

    // The naive path: same appends, but hydrate the head by replay and
    // compile the whole contract over the whole horizon from scratch.
    let (mut naive, naive_id) = fresh_stream();
    let mut naive_seq = 0u64;
    let compile_ns = time_ns(TRIALS, ITERS, || {
        naive_seq += 1;
        naive
            .append(
                naive_id,
                ContractDelta::SetMonthlyFee(Money::from_dollars(750.0 + naive_seq as f64)),
                &format!("amend-{naive_seq}"),
                SimTime::from_days(30),
            )
            .expect("amendment appended");
        let head = naive.head(naive_id).expect("head revision");
        let contract = naive.hydrate_at(naive_id, head).expect("hydrated head");
        let (start, end) = naive.horizon();
        black_box(
            CompiledContract::compile(naive.calendar(), &contract, start, end)
                .expect("fresh compile"),
        );
    });
    let speedup = compile_ns / patch_ns;

    let mut t = TextTable::new(vec!["hydration path", "ns/revision", "speedup"]);
    t.row(vec![
        "hydrate_at + fresh compile".to_string(),
        format!("{compile_ns:.0}"),
        "1.00x".to_string(),
    ]);
    t.row(vec![
        "kernel_at (patch cache)".to_string(),
        format!("{patch_ns:.0}"),
        format!("{speedup:.2}x"),
    ]);
    println!("{}", t.render());
    println!(
        "ledger after the timed runs: {} revisions, {} cached kernels\n",
        revisions_taken,
        ledger.kernel_cache().len()
    );

    let json = serde_json::json!({
        "experiment": "ledger_hydrate_baseline",
        "contract": "fixed + 3-window TOU + day/night TOU + demand charge + fee",
        "horizon_days": HORIZON_DAYS,
        "revisions_per_path": revisions_taken,
        "amendment": "SetMonthlyFee (validated field write on the patch path)",
        "fresh_compile_ns_per_revision": compile_ns,
        "patch_hydrate_ns_per_revision": patch_ns,
        "speedup": speedup,
        "optimized_build": cfg!(not(debug_assertions)),
    });
    let out = std::env::var("HPCGRID_BENCH_OUT").unwrap_or_else(|_| "BENCH_ledger.json".into());
    let pretty = serde_json::to_string_pretty(&json).expect("serialize bench baseline");
    std::fs::write(&out, pretty + "\n").expect("write BENCH_ledger.json");
    println!("wrote {out}");

    println!("speedup: patch-cached hydration is {speedup:.1}x faster than fresh compile");
    // The 3x acceptance bar is a release-build claim; unoptimized builds
    // still must show a clear win.
    let floor = if cfg!(debug_assertions) { 1.5 } else { 3.0 };
    assert!(
        speedup >= floor,
        "patch-cached hydration speedup {speedup:.2}x below the {floor}x floor"
    );
    println!("X9 OK");
}
