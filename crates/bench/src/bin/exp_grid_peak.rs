//! Experiment E8 — grid-scale DR potential (§2): FERC estimated wholesale
//! DR programs could cut US peak load by ≈6.6 %.
//!
//! We build a regional system (demand + renewables + merit-order fleet),
//! enroll a fleet of DR-capable consumers covering a few percent of peak
//! demand, call events on the top stress hours, and measure the peak
//! reduction delivered.
//!
//! The (enrolled share × event hours) sweep runs through the
//! `hpcgrid-engine` sweep runner with content-addressed caching (set
//! `HPCGRID_SWEEP_CACHE` to persist results across runs).

use hpcgrid_bench::scenarios::{experiment_runner, experiment_spec};
use hpcgrid_bench::table::TextTable;
use hpcgrid_engine::ScenarioSpec;
use hpcgrid_grid::demand::{demand_series, DemandParams};
use hpcgrid_grid::dispatch::MeritOrderMarket;
use hpcgrid_grid::events::{detect_events, StressThresholds};
use hpcgrid_grid::generation::GeneratorFleet;
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_timeseries::stats::load_stats;
use hpcgrid_units::{Calendar, Duration, Power, SimTime};
use serde::{Deserialize, Serialize};

/// Apply DR: during the top-`hours` demand hours, enrolled consumers shed
/// `enrolled_share` of system load.
fn apply_dr(demand: &PowerSeries, enrolled_share: f64, hours: usize) -> PowerSeries {
    let mut indexed: Vec<(usize, Power)> = demand.values().iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let called: std::collections::HashSet<usize> =
        indexed.into_iter().take(hours).map(|(i, _)| i).collect();
    let mut out = demand.clone();
    for (i, v) in out.values_mut().iter_mut().enumerate() {
        if called.contains(&i) {
            *v = *v * (1.0 - enrolled_share);
        }
    }
    out
}

/// One point of the enrollment sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PeakPoint {
    peak_mw: f64,
    reduction: f64,
}

fn main() {
    println!("== E8: grid-scale DR peak reduction (FERC ≈6.6%) ==\n");
    let cal = Calendar::default();
    let n = 365 * 24;
    let demand = demand_series(
        &DemandParams::default(),
        &cal,
        SimTime::EPOCH,
        Duration::from_hours(1.0),
        n,
        5,
    )
    .unwrap();
    let base_stats = load_stats(&demand).unwrap();

    // The (enrolled share × event hours) axis, one engine scenario per point.
    let points = [(0.0, 0i64), (0.033, 40), (0.066, 40), (0.10, 40)];
    let specs: Vec<ScenarioSpec> = points
        .iter()
        .map(|(share, hours)| {
            experiment_spec("grid_peak", 5)
                .horizon_days(365)
                .param("enrolled_share", *share)
                .param("event_hours", *hours)
                .build()
        })
        .collect();
    let mut runner = experiment_runner::<PeakPoint>();
    let outcome = runner.run(&specs, |ctx| {
        let share = ctx.spec.param_f64("enrolled_share")?;
        let hours = ctx.spec.param_i64("event_hours")? as usize;
        let dr = apply_dr(&demand, share, hours);
        let stats = load_stats(&dr).map_err(|e| e.to_string())?;
        Ok(PeakPoint {
            peak_mw: stats.peak.as_megawatts(),
            reduction: 1.0 - stats.peak.as_megawatts() / base_stats.peak.as_megawatts(),
        })
    });
    println!("sweep engine report:\n{}", outcome.report.summary_table());
    let results = outcome.expect_all("grid-peak sweep");

    let mut t = TextTable::new(vec![
        "enrolled share of load",
        "event hours/yr",
        "annual peak",
        "peak reduction",
    ]);
    let mut reductions = Vec::new();
    for ((share, hours), point) in points.iter().zip(results.iter()) {
        reductions.push(point.reduction);
        t.row(vec![
            format!("{:.1}%", share * 100.0),
            hours.to_string(),
            format!("{:.0} MW", point.peak_mw),
            format!("{:.1}%", point.reduction * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper (§2, FERC): wholesale DR could reduce US peak load by 6.6% — \
         reproduced shape: peak reduction tracks the enrolled curtailable share \
         (until non-event hours become the binding peak)."
    );
    assert!(reductions[0].abs() < 1e-9);
    assert!(reductions[1] > 0.01);
    assert!(reductions[2] >= reductions[1]);
    // 6.6% enrollment delivers a peak cut in the FERC range (bounded by the
    // next-highest uncalled hour).
    assert!(
        reductions[2] > 0.03 && reductions[2] < 0.10,
        "6.6% enrollment gave {:.3}",
        reductions[2]
    );

    // Reserve-margin view: DR removes stress events.
    let fleet = GeneratorFleet::synthetic_regional(base_stats.peak, 0.02).unwrap();
    let market = MeritOrderMarket::new(fleet);
    let cap = market.fleet().total_available();
    let out_base = market.dispatch(&demand, None).unwrap();
    let ev_base = detect_events(&out_base, cap, StressThresholds::default()).unwrap();
    let dr_load = apply_dr(&demand, 0.066, 40);
    let out_dr = market.dispatch(&dr_load, None).unwrap();
    let ev_dr = detect_events(&out_dr, cap, StressThresholds::default()).unwrap();
    // DR can split one long event into several shorter ones, so compare
    // stressed *duration*, not event count.
    use hpcgrid_grid::events::{stressed_duration, Severity};
    let dur_base = stressed_duration(&ev_base, Severity::Emergency);
    let dur_dr = stressed_duration(&ev_dr, Severity::Emergency);
    println!(
        "\nemergency-stress duration (tight 2% reserve system): {dur_base} without DR → {dur_dr} with 6.6% DR"
    );
    assert!(dur_dr <= dur_base, "DR must not lengthen emergency stress");
    println!("E8 OK");
}
