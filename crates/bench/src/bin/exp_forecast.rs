//! Experiment X4 (extension) — forecasting SC load for the ESP.
//!
//! §3.4/§2: ESPs value SC "forecasting of deviations from normal power
//! consumption patterns". This experiment backtests the reference
//! forecasters on simulated SC load and prices their errors as imbalance
//! cost. The (perhaps surprising) result: SC load is event-driven rather
//! than calendar-shaped, so persistence beats seasonal models — which is
//! precisely why announcing events ("good neighbor") is where the
//! forecasting value lives.

use hpcgrid_bench::scenarios::*;
use hpcgrid_bench::table::TextTable;
use hpcgrid_grid::balancing::{settle, ImbalancePricing};
use hpcgrid_timeseries::forecast::{backtest, daily_seasonal, Forecaster};

fn main() {
    println!("== X4: forecasting SC load for the ESP ==\n");
    let (_, load) = reference_run(53);
    let step = load.step();

    let forecasters: Vec<(&str, Forecaster)> = vec![
        ("persistence", Forecaster::Persistence),
        (
            "moving-average (6h)",
            Forecaster::MovingAverage { window: 24 },
        ),
        ("seasonal-naive (1d)", daily_seasonal(step)),
    ];

    let pricing = ImbalancePricing::default();
    let mut t = TextTable::new(vec![
        "forecaster",
        "MAE (kW)",
        "RMSE (kW)",
        "MAPE",
        "imbalance cost (30d)",
    ]);
    let mut costs = Vec::new();
    for (name, f) in &forecasters {
        let err = backtest(*f, &load).unwrap();
        let forecast = f.one_step(&load).unwrap();
        let actual = f.actuals(&load).unwrap();
        let settlement = settle(&forecast, &actual, &pricing).unwrap();
        costs.push((name.to_string(), settlement.total()));
        t.row(vec![
            name.to_string(),
            format!("{:.1}", err.mae_kw),
            format!("{:.1}", err.rmse_kw),
            format!("{:.1}%", err.mape * 100.0),
            settlement.total().to_string(),
        ]);
    }
    println!("{}", t.render());

    let persistence_cost = costs[0].1;
    let seasonal_cost = costs[2].1;
    println!(
        "finding: unlike building load, SC load is NOT calendar-shaped — it is \
         slow occupancy dynamics punctuated by discrete events (benchmarks, \
         maintenance). Short-horizon persistence beats the seasonal model by \
         {} per month here, and no calendar forecaster can predict the events \
         themselves. That is exactly why the paper's 'good neighbor' \
         announcements (exp_good_neighbor) carry the real forecasting value.",
        seasonal_cost - persistence_cost
    );
    assert!(
        persistence_cost < seasonal_cost,
        "event-driven SC load favors persistence at short horizons"
    );
    println!("X4 OK");
}
