//! Experiment X1 (extension) — the paper's stated future work, executed:
//! *"contingency planning, where specific actions can be applied in SC
//! operation, to adhere to grid conditions ... enable SCs to perform impact
//! analysis of contingency planning on their operation"* (§5).
//!
//! A summer week of grid stress is simulated; the SC runs a staged
//! contingency plan and the impact analysis reports both grid relief and
//! mission cost.

use hpcgrid_bench::scenarios::*;
use hpcgrid_bench::table::TextTable;
use hpcgrid_core::emergency::EmergencyDrClause;
use hpcgrid_dr::contingency::{execute_plan, ContingencyPlan, ContingencyResources};
use hpcgrid_facility::generator::OnsiteGenerator;
use hpcgrid_grid::demand::{demand_series, DemandParams};
use hpcgrid_grid::dispatch::MeritOrderMarket;
use hpcgrid_grid::events::{detect_events, StressThresholds};
use hpcgrid_grid::generation::GeneratorFleet;
use hpcgrid_scheduler::policy::Policy;
use hpcgrid_units::{Calendar, Duration, Power, SimTime};

fn main() {
    println!("== X1: contingency planning (the paper's future work) ==\n");

    // A stressed summer grid horizon.
    let cal = Calendar::default();
    let demand = demand_series(
        &DemandParams::default(),
        &cal,
        SimTime::EPOCH,
        Duration::from_hours(1.0),
        (HORIZON_DAYS * 24) as usize,
        31,
    )
    .unwrap();
    let market = MeritOrderMarket::new(
        GeneratorFleet::synthetic_regional(Power::from_megawatts(2_700.0), 0.0).unwrap(),
    );
    let dispatch = market.dispatch(&demand, None).unwrap();
    let grid_events = detect_events(
        &dispatch,
        market.fleet().total_available(),
        StressThresholds::default(),
    )
    .unwrap();
    println!(
        "grid horizon: {} stress events over {} days",
        grid_events.len(),
        HORIZON_DAYS
    );

    // The SC, its plan, and its resources.
    let site = reference_site();
    let trace = reference_trace(31);
    let plan = ContingencyPlan::reference(Power::from_kilowatts(200.0));
    let resources = ContingencyResources {
        generators: vec![OnsiteGenerator::reference_diesel()],
    };
    let clause = EmergencyDrClause::reference(Power::from_kilowatts(250.0));

    let out = execute_plan(
        &site,
        &trace,
        Policy::EasyBackfill,
        &grid_events,
        &plan,
        &resources,
        Some(&clause),
        meter_step(),
    )
    .unwrap();

    let mut t = TextTable::new(vec![
        "event window",
        "severity",
        "armed stage",
        "baseline mean",
        "with plan",
        "relief",
    ]);
    for i in out.impacts.iter().take(12) {
        t.row(vec![
            format!("{} +{}", i.window.start, i.window.duration()),
            format!("{:?}", i.severity),
            i.stage.map_or("-".to_string(), |s| format!("#{s}")),
            i.baseline_mean.to_string(),
            i.response_mean.to_string(),
            i.relief().to_string(),
        ]);
    }
    println!("{}", t.render());
    if out.impacts.len() > 12 {
        println!("(… {} more events)", out.impacts.len() - 12);
    }

    println!("\nimpact analysis:");
    println!(
        "  emergency-clause penalties: {} → {} (avoided {})",
        out.baseline_penalty,
        out.response_penalty,
        out.penalty_avoided()
    );
    println!("  generator fuel spent:       {}", out.fuel_cost);
    println!(
        "  mission cost: utilization {:.4} → {:.4}, mean wait {} → {}",
        out.dr.baseline.utilization(),
        out.dr.response.utilization(),
        out.dr.baseline.mean_wait(),
        out.dr.response.mean_wait()
    );

    assert!(
        !grid_events.is_empty(),
        "the stressed grid must produce events"
    );
    assert!(out.response_penalty <= out.baseline_penalty);
    let any_relief = out.impacts.iter().any(|i| i.relief() > Power::ZERO);
    assert!(any_relief, "the plan must deliver relief somewhere");
    println!("\nX1 OK");
}
