//! Experiment E5 — the CSCS procurement case study (§4): a public auction
//! with a 4-variable price formula, an 80 % renewable-mix floor, and demand
//! charges removed; compared against the site's prior demand-charge
//! contract.

use hpcgrid_bench::scenarios::*;
use hpcgrid_bench::table::TextTable;
use hpcgrid_dr::procurement::{random_bids, run_auction, ProcurementSpec};
use hpcgrid_units::{Calendar, Ratio};

fn main() {
    println!("== E5: CSCS-style procurement auction ==\n");
    let (_, load) = reference_run(17);
    let cal = Calendar::default();
    let spec = ProcurementSpec {
        min_renewable: Ratio::from_percent(80.0),
    };
    let bids = random_bids(99, 12);
    let result = run_auction(&bids, &spec, &cal, &load).unwrap();

    let mut t = TextTable::new(vec![
        "rank",
        "bidder",
        "renewable",
        "annual-rate cost (30d)",
    ]);
    for (i, b) in result.ranking.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            b.bidder.clone(),
            b.renewable_share.to_string(),
            b.annual_cost.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("disqualified (renewable floor):");
    for (name, why) in &result.disqualified {
        println!("  {name}: {why}");
    }
    assert!(
        !result.disqualified.is_empty(),
        "some bids should fail the floor"
    );
    let winner = result.winner().expect("someone must win");
    assert!(winner.renewable_share >= Ratio::from_percent(80.0));

    // Compare with the site's prior contract (fixed tariff + demand charge).
    let old = typical_contract();
    let old_bill = bill(&old, &load);
    println!(
        "\nprior contract (fixed + demand charges): {}",
        old_bill.total()
    );
    println!(
        "  of which demand charges: {} ({:.1}% of bill)",
        old_bill.demand_cost(),
        old_bill.demand_share() * 100.0
    );
    println!("auction winner ({}): {}", winner.bidder, winner.annual_cost);
    let savings = old_bill.total() - winner.annual_cost;
    println!("savings from the procurement redesign: {savings}");
    println!(
        "\npaper: CSCS 'transformed from being a passive electricity consumer' and \
         the process 'yield[ed] a direct economic benefit' — reproduced: the \
         winning demand-charge-free formula beats the legacy contract."
    );
    assert!(savings.is_positive(), "redesign should save money");
    println!("E5 OK");
}
