//! Experiment T2 — regenerate Table 2: the per-site contract-component
//! matrix, by round-tripping every site's reference contract through the
//! typology classifier and the qualitative coder.

use hpcgrid_core::survey::analysis::component_counts;
use hpcgrid_core::survey::coding::{recode_corpus, render_table2};
use hpcgrid_core::survey::corpus::SurveyCorpus;

fn main() {
    println!("== T2: Table 2 — summary of survey results ==\n");
    let published = SurveyCorpus::published();

    // The reproduction path: published rows → typed contracts → typology
    // classification → coded rows. The printed matrix must be reproduced
    // exactly.
    let recoded = recode_corpus(&published);
    assert_eq!(
        published, recoded,
        "coding contracts back through the typology must reproduce Table 2"
    );
    println!("{}", render_table2(&recoded));

    println!("Column totals (as printed):");
    for (kind, n) in component_counts(&recoded) {
        println!("  {:<24} {n}/10", kind.label());
    }
    println!("\ncoding round-trip: EXACT match with the published table");
    println!("T2 OK");
}
