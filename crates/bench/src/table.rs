//! Fixed-width table printer for experiment output.
//!
//! The implementation moved to `hpcgrid-engine` (the engine's `RunReport`
//! renders through it); this module re-exports it so the twenty `exp_*`
//! binaries keep their historical `hpcgrid_bench::table::TextTable` path.

pub use hpcgrid_engine::table::TextTable;
