//! Canonical scenarios shared by experiments and benches.
//!
//! One reference facility, one reference workload, one reference market —
//! so every experiment sweeps parameters against the same baseline world
//! and results are comparable across experiment binaries.
//!
//! Experiments that sweep a parameter axis do so through the
//! `hpcgrid-engine` orchestration layer: build [`hpcgrid_engine::ScenarioSpec`]s with
//! [`experiment_spec`], run them on an [`experiment_runner`], and print the
//! engine's `RunReport` next to the result table. Set `HPCGRID_SWEEP_CACHE`
//! to a directory to persist results between runs (re-running an experiment
//! then only recomputes changed scenarios).
//!
//! Heavy per-sweep substrate — compiled kernels, load and price series —
//! rides into scenario closures through the engine's zero-copy
//! [`hpcgrid_engine::SharedInputs`] registry rather than ad-hoc closure
//! captures: stock a registry with [`share_kernel`] / [`share_series`],
//! attach it with `SweepRunner::shared_inputs`, and read entries back by
//! key via `ctx.shared` inside the closure.

use hpcgrid_core::billing::{BillingEngine, Precision};
use hpcgrid_core::contract::Contract;
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::tariff::Tariff;
use hpcgrid_engine::{ScenarioSpecBuilder, SharedInputs, SweepRunner};
use hpcgrid_facility::node::NodeSpec;
use hpcgrid_facility::site::{Country, SiteSpec};
use hpcgrid_grid::demand::{demand_series, DemandParams};
use hpcgrid_grid::dispatch::MeritOrderMarket;
use hpcgrid_grid::generation::GeneratorFleet;
use hpcgrid_grid::renewables::{solar_series, wind_series, SolarParams, WindParams};
use hpcgrid_scheduler::metrics::SimOutcome;
use hpcgrid_scheduler::policy::Policy;
use hpcgrid_scheduler::sim::ScheduleSimulator;
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries};
use hpcgrid_units::{Calendar, DemandPrice, Duration, EnergyPrice, Money, Power, SimTime};
use hpcgrid_workload::trace::{JobTrace, WorkloadBuilder};
use std::sync::Arc;

/// The default experiment horizon: 30 days.
pub const HORIZON_DAYS: u64 = 30;
/// Metering resolution for experiment load series.
pub fn meter_step() -> Duration {
    Duration::from_minutes(15.0)
}

/// The reference 512-node experiment site (small enough for fast sweeps,
/// same shape as the flagship sites).
pub fn reference_site() -> SiteSpec {
    SiteSpec::new(
        "exp-site",
        Country::UnitedStates,
        512,
        NodeSpec::reference_hpc(),
        1.1,
        1.35,
        Power::from_megawatts(1.0),
        Power::from_kilowatts(20.0),
    )
    .expect("reference experiment site is valid")
}

/// The reference workload: 30 busy days on 512 nodes with deferrable jobs
/// and a weekly full-machine benchmark.
pub fn reference_trace(seed: u64) -> JobTrace {
    WorkloadBuilder::new(seed)
        .nodes(512)
        .days(HORIZON_DAYS)
        .arrivals_per_hour(18.0)
        .deferrable_fraction(0.25)
        .benchmark_every_days(7)
        .build()
}

/// Run the reference trace and return (outcome, facility load).
pub fn reference_run(seed: u64) -> (SimOutcome, PowerSeries) {
    let site = reference_site();
    let trace = reference_trace(seed);
    let outcome = ScheduleSimulator::new(trace.machine_nodes, Policy::EasyBackfill).run(&trace);
    let load = outcome.to_load_series_with_step(&site, meter_step());
    (outcome, load)
}

/// The reference wholesale market: a 3 GW region with renewables, cleared
/// hourly over the horizon. Returns the dynamic price strip.
pub fn reference_market_prices(seed: u64, days: u64) -> PriceSeries {
    let cal = Calendar::default();
    let n = (days * 24) as usize;
    let step = Duration::from_hours(1.0);
    let start = SimTime::EPOCH;
    let peak = Power::from_megawatts(3_000.0);
    let demand =
        demand_series(&DemandParams::default(), &cal, start, step, n, seed).expect("valid demand");
    let solar = solar_series(
        &SolarParams {
            capacity: Power::from_megawatts(400.0),
            ..Default::default()
        },
        &cal,
        start,
        step,
        n,
        seed,
    )
    .expect("valid solar");
    let wind = wind_series(
        &WindParams {
            capacity: Power::from_megawatts(500.0),
            ..Default::default()
        },
        start,
        step,
        n,
        seed,
    )
    .expect("valid wind");
    let renewables = solar.add_series(&wind).expect("aligned renewables");
    let fleet = GeneratorFleet::synthetic_regional(peak, 0.10).expect("valid fleet");
    let market = MeritOrderMarket::new(fleet);
    market
        .dispatch(&demand, Some(&renewables))
        .expect("dispatch succeeds")
        .prices
}

/// The baseline "survey-typical" contract: fixed tariff + monthly demand
/// charge (the most common Table 2 combination).
pub fn typical_contract() -> Contract {
    Contract::builder("typical")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .monthly_fee(Money::from_dollars(1_000.0))
        .build()
        .expect("typical contract is valid")
}

/// Bill a load under a contract with the default calendar.
pub fn bill(contract: &Contract, load: &PowerSeries) -> hpcgrid_core::billing::Bill {
    BillingEngine::new(Calendar::default())
        .bill(contract, load)
        .expect("billing succeeds on experiment loads")
}

/// Bill many loads under one contract with the default calendar. The
/// contract is compiled once (segment timelines + month-boundary index) and
/// evaluation fans out across threads; bills are bit-identical to [`bill`]
/// and returned in load order.
pub fn bill_many(contract: &Contract, loads: &[PowerSeries]) -> Vec<hpcgrid_core::billing::Bill> {
    BillingEngine::new(Calendar::default())
        .bill_many(contract, loads)
        .expect("batch billing succeeds on experiment loads")
}

/// Compile a contract under the default calendar for loads inside
/// `[start, end)` — the shared kernel for sweeps whose scenarios differ only
/// in load.
pub fn compile_contract(
    contract: &Contract,
    start: SimTime,
    end: SimTime,
) -> hpcgrid_core::compiled::CompiledContract {
    BillingEngine::new(Calendar::default())
        .compile(contract, start, end)
        .expect("experiment contracts compile")
}

/// Start a [`hpcgrid_engine::ScenarioSpec`] pre-filled with the reference
/// world's identity (site, horizon) so specs — and therefore cache keys —
/// from different experiment binaries agree on what the baseline is.
///
/// The active billing [`Precision`] (the `HPCGRID_PRECISION` selection the
/// experiment helpers bill under) is recorded as the reserved `precision`
/// param, so bit-exact and fast runs of one experiment cache under
/// different content hashes and can never serve each other's results.
pub fn experiment_spec(experiment: &str, trace_seed: u64) -> ScenarioSpecBuilder {
    hpcgrid_engine::ScenarioSpec::builder(experiment)
        .site("exp-site")
        .trace_seed(trace_seed)
        .horizon_days(HORIZON_DAYS)
        .precision(Precision::from_env().label())
}

/// A sweep runner for experiment binaries. Honours `HPCGRID_SWEEP_CACHE`:
/// when set, results persist as content-addressed artifacts under that
/// directory (compact checksummed binary by default;
/// `HPCGRID_SWEEP_ARTIFACT_FORMAT=json` keeps the legacy JSON encoding) and
/// re-runs only compute the delta; otherwise the cache is in-memory (still
/// deduplicates within one process).
pub fn experiment_runner<R>() -> SweepRunner<R>
where
    R: Clone + Send + serde::Serialize + serde::Deserialize,
{
    match std::env::var("HPCGRID_SWEEP_CACHE") {
        Ok(dir) if !dir.is_empty() => {
            SweepRunner::with_artifact_dir(dir).expect("HPCGRID_SWEEP_CACHE directory is creatable")
        }
        _ => SweepRunner::new(),
    }
}

/// Register a compiled kernel in a [`SharedInputs`] registry under the
/// workspace key convention (`kernel/<fingerprint hex>`), returning the key
/// scenario closures look it up with
/// (`ctx.shared.expect::<CompiledContract>(&key)?`). The `Arc` is shared,
/// not cloned: a sweep, a [`hpcgrid_core::fleet::MeterFleet`], and the
/// driver can all hold the same compiled kernel.
pub fn share_kernel(
    shared: &mut SharedInputs,
    kernel: Arc<hpcgrid_core::compiled::CompiledContract>,
) -> String {
    let key = hpcgrid_engine::kernel_key(&kernel.fingerprint().to_hex());
    shared.insert_arc(key.clone(), kernel);
    key
}

/// Register a named series (load strip, price strip, …) in a
/// [`SharedInputs`] registry under the `series/<name>` convention,
/// returning the key scenario closures look it up with.
pub fn share_series<T: std::any::Any + Send + Sync>(
    shared: &mut SharedInputs,
    name: &str,
    series: T,
) -> String {
    let key = hpcgrid_engine::series_key(name);
    shared.insert(key.clone(), series);
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_run_produces_busy_machine() {
        let (outcome, load) = reference_run(1);
        assert!(
            outcome.utilization() > 0.3,
            "util {}",
            outcome.utilization()
        );
        assert!(load.peak().unwrap() > Power::from_kilowatts(100.0));
        assert!(load.peak().unwrap() <= reference_site().feeder_rating);
    }

    #[test]
    fn reference_market_prices_vary() {
        let prices = reference_market_prices(3, 7);
        assert_eq!(prices.len(), 7 * 24);
        let min = prices.values().iter().fold(f64::INFINITY, |a, p| {
            a.min(p.as_dollars_per_kilowatt_hour())
        });
        let max = prices
            .values()
            .iter()
            .fold(0.0f64, |a, p| a.max(p.as_dollars_per_kilowatt_hour()));
        assert!(max > min, "prices should vary: {min}..{max}");
    }

    #[test]
    fn typical_bill_is_positive() {
        let (_, load) = reference_run(2);
        let b = bill(&typical_contract(), &load);
        assert!(b.total() > Money::ZERO);
        assert!(b.demand_share() > 0.0);
    }

    #[test]
    fn experiment_specs_record_the_active_precision() {
        let spec = experiment_spec("demo", 1).build();
        assert_eq!(
            spec.precision(),
            Some(Precision::from_env().label()),
            "specs must pin the precision their results were billed at"
        );
    }

    #[test]
    fn shared_input_helpers_use_the_engine_key_conventions() {
        let contract = typical_contract();
        let kernel = Arc::new(compile_contract(
            &contract,
            SimTime::EPOCH,
            SimTime::from_days(HORIZON_DAYS),
        ));
        let mut shared = SharedInputs::new();
        let kernel_k = share_kernel(&mut shared, Arc::clone(&kernel));
        let series_k = share_series(&mut shared, "baseline", vec![1.0_f64, 2.0]);
        assert_eq!(
            kernel_k,
            hpcgrid_engine::kernel_key(&kernel.fingerprint().to_hex())
        );
        assert_eq!(series_k, hpcgrid_engine::series_key("baseline"));
        // share_kernel shares the Arc, it does not clone the kernel.
        let got: Arc<hpcgrid_core::compiled::CompiledContract> = shared.expect(&kernel_k).unwrap();
        assert!(Arc::ptr_eq(&got, &kernel));
        let series: Arc<Vec<f64>> = shared.expect(&series_k).unwrap();
        assert_eq!(*series, vec![1.0, 2.0]);
    }

    #[test]
    fn batch_and_compiled_bills_match_interpreted() {
        let (_, load) = reference_run(4);
        let contract = typical_contract();
        let loads = vec![load.clone(), load.scale(0.5), load.scale(2.0)];
        let batch = bill_many(&contract, &loads);
        for (l, b) in loads.iter().zip(&batch) {
            assert_eq!(bill(&contract, l), *b);
        }
        let compiled = compile_contract(&contract, load.start(), load.end());
        assert_eq!(compiled.bill(&load).unwrap(), bill(&contract, &load));
    }
}
