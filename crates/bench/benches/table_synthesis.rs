//! Bench: regeneration of the paper's artifacts — Table 1, Table 2
//! (contract→typology coding round trip), Figure 1, and the survey
//! analyses (experiments T1/T2/F1/C1/E9).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_core::survey::analysis::{component_counts, discrepancies, geo_trend_feasibility};
use hpcgrid_core::survey::coding::{recode_corpus, render_table2};
use hpcgrid_core::survey::corpus::{ProseFacts, SurveyCorpus};
use hpcgrid_core::typology::Typology;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let corpus = SurveyCorpus::published();
    let facts = ProseFacts::published();

    let mut g = c.benchmark_group("paper_artifacts");
    g.bench_function("table1_sites", |b| {
        b.iter(|| black_box(SurveyCorpus::interview_sites().len()))
    });
    g.bench_function("table2_recode_roundtrip", |b| {
        b.iter(|| {
            let recoded = recode_corpus(&corpus);
            black_box(recoded == corpus)
        })
    });
    g.bench_function("table2_render", |b| {
        b.iter(|| black_box(render_table2(&corpus).len()))
    });
    g.bench_function("figure1_render", |b| {
        b.iter(|| black_box(Typology::render().len()))
    });
    g.bench_function("component_counts", |b| {
        b.iter(|| black_box(component_counts(&corpus).len()))
    });
    g.bench_function("text_vs_table_discrepancies", |b| {
        b.iter(|| black_box(discrepancies(&corpus, &facts).len()))
    });
    g.bench_function("geo_trend_feasibility", |b| {
        b.iter(|| black_box(geo_trend_feasibility(&corpus, 4).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
