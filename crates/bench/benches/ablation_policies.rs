//! Ablation A2: power-aware policy sweep — the (bill, utilization,
//! slowdown) Pareto front behind DESIGN.md's design-choice table. This
//! bench times the full policy-evaluation pipeline; the Pareto assertions
//! live in `tests/ablation.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_bench::scenarios::{meter_step, reference_site, typical_contract};
use hpcgrid_core::billing::BillingEngine;
use hpcgrid_scheduler::policy::{CapSchedule, Policy, PowerConstraints};
use hpcgrid_scheduler::sim::ScheduleSimulator;
use hpcgrid_units::Calendar;
use hpcgrid_workload::trace::WorkloadBuilder;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let site = reference_site();
    // Jobs capped at 400 nodes so the constant-cap policy cannot deadlock
    // on a full-machine job.
    let trace = WorkloadBuilder::new(2)
        .nodes(512)
        .days(30)
        .arrivals_per_hour(18.0)
        .deferrable_fraction(0.25)
        .max_job_nodes(400)
        .build();
    let contract = typical_contract();
    let engine = BillingEngine::new(Calendar::default());

    let eval = |constraints: PowerConstraints| {
        let out = ScheduleSimulator::with_constraints(
            trace.machine_nodes,
            Policy::EasyBackfill,
            constraints,
        )
        .run(&trace);
        let load = out.to_load_series_with_step(&site, meter_step());
        let bill = engine.bill(&contract, &load).unwrap().total().as_dollars();
        (bill, out.utilization(), out.mean_bounded_slowdown())
    };

    let mut g = c.benchmark_group("ablation_policy_pipeline");
    g.sample_size(10);
    g.bench_function("unconstrained", |b| {
        b.iter(|| black_box(eval(PowerConstraints::none())))
    });
    g.bench_function("cap_450", |b| {
        b.iter(|| {
            black_box(eval(PowerConstraints {
                cap: CapSchedule::constant(450),
                ..Default::default()
            }))
        })
    });
    g.bench_function("shutdown_idle", |b| {
        b.iter(|| {
            black_box(eval(PowerConstraints {
                shutdown_idle: true,
                ..Default::default()
            }))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
