//! Bench: the extension hot paths — forecaster backtests (X4) and SWF
//! parsing/serialization throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_bench::scenarios::reference_run;
use hpcgrid_timeseries::forecast::{backtest, daily_seasonal, Forecaster};
use hpcgrid_workload::swf::{parse_swf, to_swf};
use hpcgrid_workload::trace::WorkloadBuilder;
use std::hint::black_box;

fn bench_forecast(c: &mut Criterion) {
    let (_, load) = reference_run(1);
    let mut g = c.benchmark_group("forecast_backtest_30d_15min");
    g.sample_size(20);
    g.bench_function("persistence", |b| {
        b.iter(|| black_box(backtest(Forecaster::Persistence, &load).unwrap().mae_kw))
    });
    g.bench_function("moving_average_24", |b| {
        b.iter(|| {
            black_box(
                backtest(Forecaster::MovingAverage { window: 24 }, &load)
                    .unwrap()
                    .mae_kw,
            )
        })
    });
    g.bench_function("seasonal_daily", |b| {
        b.iter(|| black_box(backtest(daily_seasonal(load.step()), &load).unwrap().mae_kw))
    });
    g.finish();
}

fn bench_swf(c: &mut Criterion) {
    let trace = WorkloadBuilder::new(7)
        .nodes(1024)
        .days(30)
        .arrivals_per_hour(20.0)
        .build();
    let text = to_swf(&trace);
    let mut g = c.benchmark_group("swf_io");
    g.sample_size(20);
    g.bench_function(format!("serialize_{}_jobs", trace.len()), |b| {
        b.iter(|| black_box(to_swf(&trace).len()))
    });
    g.bench_function(format!("parse_{}_jobs", trace.len()), |b| {
        b.iter(|| black_box(parse_swf(&text, 1024).unwrap().len()))
    });
    g.finish();
}

criterion_group!(benches, bench_forecast, bench_swf);
criterion_main!(benches);
