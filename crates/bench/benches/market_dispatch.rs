//! Bench: merit-order dispatch over a year of hourly data (substrate of
//! experiments E1 and E8).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_grid::demand::{demand_series, DemandParams};
use hpcgrid_grid::dispatch::MeritOrderMarket;
use hpcgrid_grid::generation::GeneratorFleet;
use hpcgrid_grid::renewables::{solar_series, wind_series, SolarParams, WindParams};
use hpcgrid_units::{Calendar, Duration, Power, SimTime};
use std::hint::black_box;

fn bench_dispatch(c: &mut Criterion) {
    let cal = Calendar::default();
    let n = 365 * 24;
    let step = Duration::from_hours(1.0);
    let demand = demand_series(&DemandParams::default(), &cal, SimTime::EPOCH, step, n, 1).unwrap();
    let solar = solar_series(&SolarParams::default(), &cal, SimTime::EPOCH, step, n, 1).unwrap();
    let wind = wind_series(&WindParams::default(), SimTime::EPOCH, step, n, 1).unwrap();
    let renewables = solar.add_series(&wind).unwrap();
    let fleet = GeneratorFleet::synthetic_regional(Power::from_megawatts(3_000.0), 0.1).unwrap();
    let market = MeritOrderMarket::new(fleet);

    let mut g = c.benchmark_group("dispatch_year_hourly");
    g.sample_size(20);
    g.bench_function("no_renewables", |b| {
        b.iter(|| black_box(market.dispatch(&demand, None).unwrap().prices.len()))
    });
    g.bench_function("with_renewables", |b| {
        b.iter(|| {
            black_box(
                market
                    .dispatch(&demand, Some(&renewables))
                    .unwrap()
                    .renewable_share(),
            )
        })
    });
    g.finish();

    let mut g2 = c.benchmark_group("renewable_generation_year");
    g2.sample_size(20);
    g2.bench_function("solar", |b| {
        b.iter(|| {
            black_box(
                solar_series(&SolarParams::default(), &cal, SimTime::EPOCH, step, n, 2)
                    .unwrap()
                    .total_energy(),
            )
        })
    });
    g2.bench_function("wind", |b| {
        b.iter(|| {
            black_box(
                wind_series(&WindParams::default(), SimTime::EPOCH, step, n, 2)
                    .unwrap()
                    .total_energy(),
            )
        })
    });
    g2.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
