//! Bench: the discrete-event scheduler (substrate of experiments E1/E4).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_bench::scenarios::{meter_step, reference_site, reference_trace};
use hpcgrid_scheduler::policy::{CapSchedule, Policy, PowerConstraints};
use hpcgrid_scheduler::sim::ScheduleSimulator;
use std::hint::black_box;

fn bench_scheduler(c: &mut Criterion) {
    let trace = reference_trace(1);
    let site = reference_site();

    let mut g = c.benchmark_group("schedule_30day_512node");
    g.sample_size(10);
    g.bench_function("fcfs", |b| {
        b.iter(|| {
            let out = ScheduleSimulator::new(trace.machine_nodes, Policy::Fcfs).run(&trace);
            black_box(out.utilization())
        })
    });
    g.bench_function("easy_backfill", |b| {
        b.iter(|| {
            let out = ScheduleSimulator::new(trace.machine_nodes, Policy::EasyBackfill).run(&trace);
            black_box(out.utilization())
        })
    });
    g.bench_function("conservative_backfill", |b| {
        b.iter(|| {
            let out = ScheduleSimulator::new(trace.machine_nodes, Policy::ConservativeBackfill)
                .run(&trace);
            black_box(out.utilization())
        })
    });
    g.bench_function("easy_with_cap", |b| {
        // A capped run needs jobs that fit under the cap: the reference
        // trace contains full-machine benchmarks, so use a capped-size
        // variant of the same workload.
        let capped_trace = hpcgrid_workload::trace::WorkloadBuilder::new(1)
            .nodes(512)
            .days(30)
            .arrivals_per_hour(18.0)
            .deferrable_fraction(0.25)
            .max_job_nodes(400)
            .build();
        let constraints = PowerConstraints {
            cap: CapSchedule::constant(400),
            ..Default::default()
        };
        b.iter(|| {
            let out = ScheduleSimulator::with_constraints(
                capped_trace.machine_nodes,
                Policy::EasyBackfill,
                constraints.clone(),
            )
            .run(&capped_trace);
            black_box(out.utilization())
        })
    });
    g.finish();

    let outcome = ScheduleSimulator::new(trace.machine_nodes, Policy::EasyBackfill).run(&trace);
    let mut g2 = c.benchmark_group("load_series_conversion");
    g2.sample_size(20);
    g2.bench_function("to_load_series_15min", |b| {
        b.iter(|| black_box(outcome.to_load_series_with_step(&site, meter_step()).len()))
    });
    g2.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
