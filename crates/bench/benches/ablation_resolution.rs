//! Ablation A1: metering resolution vs billing cost and accuracy.
//!
//! Demand charges and powerbands are resolution-sensitive (a 1-minute meter
//! sees spikes a 1-hour meter averages away). This bench measures the
//! billing cost at each resolution; the companion accuracy check lives in
//! `tests/ablation.rs` at the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_core::billing::BillingEngine;
use hpcgrid_core::contract::Contract;
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::Tariff;
use hpcgrid_timeseries::resample::downsample_mean;
use hpcgrid_timeseries::series::{PowerSeries, Series};
use hpcgrid_units::{Calendar, DemandPrice, Duration, EnergyPrice, Power, SimTime};
use std::hint::black_box;

/// 30 days of 1-minute data with diurnal structure and short spikes.
fn minute_load() -> PowerSeries {
    let n = 30 * 1440;
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(1.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        let base = 6.0 + 2.0 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        // A 3-minute spike at 13:00 every day.
        let into_day = t.as_secs() % 86_400;
        let spike = if (46_800..47_000).contains(&into_day) {
            4.0
        } else {
            0.0
        };
        Power::from_megawatts(base + spike)
    })
    .unwrap()
}

fn bench_resolution(c: &mut Criterion) {
    let fine = minute_load();
    let contract = Contract::builder("a1")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .powerband(Powerband::ceiling(
            Power::from_megawatts(9.0),
            EnergyPrice::per_kilowatt_hour(0.35),
        ))
        .build()
        .unwrap();
    let engine = BillingEngine::new(Calendar::default());

    let mut g = c.benchmark_group("ablation_resolution_bill_30d");
    g.sample_size(10);
    for minutes in [1u64, 15, 60] {
        let step = Duration::from_minutes(minutes as f64);
        let load = downsample_mean(&fine, step).unwrap();
        g.bench_function(format!("{minutes}min"), |b| {
            b.iter(|| black_box(engine.bill(&contract, &load).unwrap().total()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);
