//! Bench: the fleet ingest shapes head to head (group `fleet_tick_batched`).
//!
//! One population, three ways to feed it the same samples: scalar AoS
//! `advance_tick` (per-sample directory probes and locks at scatter),
//! columnar `advance_frame` (cached `ScatterPlan`, plan-indexed pull), and
//! fused `advance_window` (one `push_run` per meter per window). Each
//! iteration feeds a fixed meter-sample count (`METERS`, or
//! `METERS × WINDOW` for the fused shape), so per-iteration time divides
//! straight into the meter-samples/s unit `BENCH_fleet.json` reports —
//! the criterion trend lines up with `exp_fleet_throughput`.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_core::contract::Contract;
use hpcgrid_core::fleet::{MeterFleet, MeterId, Sample, TickFrame};
use hpcgrid_core::tariff::Tariff;
use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
use std::sync::Arc;

const METERS: usize = 4_096;
const WINDOW: usize = 16;
/// Long horizon so monotone streaming never outruns it mid-measurement.
const HORIZON_DAYS: u64 = 3_650;

fn contract() -> Contract {
    Contract::builder("fleet-bench-tou")
        .tariff(Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.10),
            EnergyPrice::per_kilowatt_hour(0.04),
        ))
        .build()
        .unwrap()
}

fn fleet() -> (MeterFleet, Arc<[MeterId]>) {
    let mut fleet = MeterFleet::new(
        Calendar::default(),
        SimTime::EPOCH,
        SimTime::from_days(HORIZON_DAYS),
    );
    let c = contract();
    let step = Duration::from_minutes(15.0);
    let ids: Arc<[MeterId]> = (0..METERS)
        .map(|_| fleet.register(&c, SimTime::EPOCH, step).unwrap())
        .collect();
    (fleet, ids)
}

/// Deterministic diurnal load per meter and tick.
fn power(meter: usize, tick: u64) -> Power {
    let phase = (meter % 96) as f64 / 96.0 + (tick % 96) as f64 / 96.0;
    Power::from_megawatts(4.0 + 3.0 * (phase * std::f64::consts::TAU).sin())
}

fn bench_fleet_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_tick_batched");
    group.sample_size(10);

    {
        let (mut fleet, ids) = fleet();
        let mut t = 0u64;
        group.bench_function("scalar_tick", |b| {
            b.iter(|| {
                let samples: Vec<Sample> = ids
                    .iter()
                    .map(|id| Sample {
                        meter: *id,
                        power: power(id.0, t),
                    })
                    .collect();
                let report = fleet.advance_tick(&samples).unwrap();
                t += 1;
                report.applied
            })
        });
    }

    {
        let (mut fleet, ids) = fleet();
        let mut t = 0u64;
        group.bench_function("frame_tick", |b| {
            b.iter(|| {
                let powers: Vec<Power> = ids.iter().map(|id| power(id.0, t)).collect();
                let frame = TickFrame::new(Arc::clone(&ids), powers).unwrap();
                let report = fleet.advance_frame(&frame).unwrap();
                t += 1;
                report.applied
            })
        });
    }

    {
        let (mut fleet, ids) = fleet();
        let mut t = 0u64;
        group.bench_function("fused_window", |b| {
            b.iter(|| {
                let frames: Vec<TickFrame> = (0..WINDOW as u64)
                    .map(|k| {
                        let powers: Vec<Power> = ids.iter().map(|id| power(id.0, t + k)).collect();
                        TickFrame::new(Arc::clone(&ids), powers).unwrap()
                    })
                    .collect();
                let report = fleet.advance_window(&frames).unwrap();
                t += WINDOW as u64;
                report.applied
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fleet_tick);
criterion_main!(benches);
