//! Bench: parallel vs sequential Monte-Carlo sweeps (the crossbeam
//! machinery behind the experiment harness; hpc-parallel ablation).

use criterion::{criterion_group, criterion_main, Criterion};
use hpcgrid_core::billing::BillingEngine;
use hpcgrid_core::contract::Contract;
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::tariff::Tariff;
use hpcgrid_timeseries::par::{par_map, par_map_dynamic};
use hpcgrid_timeseries::series::{PowerSeries, Series};
use hpcgrid_units::{Calendar, DemandPrice, Duration, EnergyPrice, Power, SimTime};
use std::hint::black_box;

fn scenario_load(seed: u64) -> PowerSeries {
    let n = 30 * 96;
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        let phase = seed as f64 * 0.7;
        Power::from_megawatts(5.0 + 2.0 * ((h + phase) / 24.0 * std::f64::consts::TAU).sin())
    })
    .unwrap()
}

fn bench_sweep(c: &mut Criterion) {
    let contract = Contract::builder("sweep")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .build()
        .unwrap();
    let engine = BillingEngine::new(Calendar::default());
    let scenarios: Vec<u64> = (0..64).collect();
    let run_one = |seed: &u64| {
        let load = scenario_load(*seed);
        engine.bill(&contract, &load).unwrap().total().as_dollars()
    };

    let mut g = c.benchmark_group("billing_sweep_64_scenarios");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| black_box(scenarios.iter().map(run_one).sum::<f64>()))
    });
    g.bench_function("par_map_static", |b| {
        b.iter(|| black_box(par_map(&scenarios, run_one).iter().sum::<f64>()))
    });
    g.bench_function("par_map_dynamic", |b| {
        b.iter(|| black_box(par_map_dynamic(&scenarios, run_one).iter().sum::<f64>()))
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
