//! Bench: the billing engine hot path (harness behind experiments E1/E2/E5).
//!
//! Prices one year of 15-minute interval data under each tariff leaf and
//! under the full typical contract (tariff + demand charge + powerband),
//! then compares the interpreted path against the compiled kernel
//! (segment timelines + month-boundary index) on the acceptance workload:
//! one month of 15-minute samples under a TOU contract.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpcgrid_core::billing::BillingEngine;
use hpcgrid_core::contract::Contract;
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::{DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, MonthSet, Power, SimTime, TimeOfDay,
};
use std::hint::black_box;

fn year_load() -> PowerSeries {
    let n = 365 * 96; // one year of 15-min intervals
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        let diurnal = 1.0 + 0.3 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        Power::from_megawatts(8.0 * diurnal)
    })
    .unwrap()
}

fn year_strip() -> PriceSeries {
    let n = 365 * 96;
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        EnergyPrice::per_kilowatt_hour(0.05 + 0.03 * (h / 24.0 * std::f64::consts::TAU).sin().abs())
    })
    .unwrap()
}

fn bench_billing(c: &mut Criterion) {
    let load = year_load();
    let cal = Calendar::default();
    let engine = BillingEngine::new(cal);

    let fixed = Contract::builder("fixed")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .build()
        .unwrap();
    let tou = Contract::builder("tou")
        .tariff(Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.10),
            EnergyPrice::per_kilowatt_hour(0.04),
        ))
        .build()
        .unwrap();
    let dynamic = Contract::builder("dynamic")
        .tariff(Tariff::dynamic(
            year_strip(),
            EnergyPrice::per_kilowatt_hour(0.01),
            EnergyPrice::per_kilowatt_hour(0.07),
        ))
        .build()
        .unwrap();
    let full = Contract::builder("full")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .powerband(Powerband::symmetric(
            Power::from_megawatts(8.0),
            Power::from_megawatts(2.0),
            EnergyPrice::per_kilowatt_hour(0.35),
        ))
        .build()
        .unwrap();

    let mut g = c.benchmark_group("billing_year_15min");
    g.sample_size(20);
    for (name, contract) in [
        ("fixed", &fixed),
        ("tou", &tou),
        ("dynamic", &dynamic),
        ("full_contract", &full),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || load.clone(),
                |l| black_box(engine.bill(contract, &l).unwrap().total()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn month_load() -> PowerSeries {
    let n = 30 * 96; // one month of 15-min intervals
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        let diurnal = 1.0 + 0.3 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        Power::from_megawatts(8.0 * diurnal)
    })
    .unwrap()
}

fn bench_compiled(c: &mut Criterion) {
    let load = month_load();
    let cal = Calendar::default();
    let engine = BillingEngine::new(cal);
    // Utility-shaped TOU: the weekday/month filters are what force the
    // interpreter to consult the calendar per sample.
    let tou = Contract::builder("tou")
        .tariff(Tariff::TimeOfUse(TouTariff {
            windows: vec![
                TouWindow {
                    months: Some(MonthSet::summer()),
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(14, 0),
                    to: TimeOfDay::new(20, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.24),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(7, 0),
                    to: TimeOfDay::new(22, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.11),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::All,
                    from: TimeOfDay::new(22, 0),
                    to: TimeOfDay::new(7, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.04),
                },
            ],
            base: EnergyPrice::per_kilowatt_hour(0.08),
        }))
        .build()
        .unwrap();
    let compiled = engine.compile(&tou, load.start(), load.end()).unwrap();
    assert_eq!(
        engine.bill(&tou, &load).unwrap(),
        compiled.bill(&load).unwrap(),
        "bench contract must bill bit-identically on both paths"
    );

    let mut g = c.benchmark_group("billing_month_15min_tou");
    g.sample_size(20);
    g.bench_function("interpreted", |b| {
        b.iter(|| black_box(engine.bill(&tou, &load).unwrap().total()))
    });
    g.bench_function("compiled", |b| {
        b.iter(|| black_box(compiled.bill(&load).unwrap().total()))
    });
    g.bench_function("compile_only", |b| {
        b.iter(|| black_box(engine.compile(&tou, load.start(), load.end()).unwrap()))
    });
    g.finish();

    // Batch throughput: 32 sites under one contract — compile once, fan out.
    let loads: Vec<PowerSeries> = (0..32).map(|i| load.scale(0.5 + 0.05 * i as f64)).collect();
    let mut g = c.benchmark_group("billing_batch_32_loads");
    g.sample_size(10);
    g.bench_function("interpreted_loop", |b| {
        b.iter(|| {
            for l in &loads {
                black_box(engine.bill(&tou, l).unwrap().total());
            }
        })
    });
    g.bench_function("bill_many", |b| {
        b.iter(|| black_box(engine.bill_many(&tou, &loads).unwrap().len()))
    });
    g.finish();
}

criterion_group!(benches, bench_billing, bench_compiled);
criterion_main!(benches);
