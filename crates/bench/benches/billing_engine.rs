//! Bench: the billing engine hot path (harness behind experiments E1/E2/E5).
//!
//! Prices one year of 15-minute interval data under each tariff leaf and
//! under the full typical contract (tariff + demand charge + powerband).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpcgrid_core::billing::BillingEngine;
use hpcgrid_core::contract::Contract;
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::Tariff;
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{Calendar, DemandPrice, Duration, EnergyPrice, Power, SimTime};
use std::hint::black_box;

fn year_load() -> PowerSeries {
    let n = 365 * 96; // one year of 15-min intervals
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        let diurnal = 1.0 + 0.3 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        Power::from_megawatts(8.0 * diurnal)
    })
    .unwrap()
}

fn year_strip() -> PriceSeries {
    let n = 365 * 96;
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        EnergyPrice::per_kilowatt_hour(0.05 + 0.03 * (h / 24.0 * std::f64::consts::TAU).sin().abs())
    })
    .unwrap()
}

fn bench_billing(c: &mut Criterion) {
    let load = year_load();
    let cal = Calendar::default();
    let engine = BillingEngine::new(cal);

    let fixed = Contract::builder("fixed")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .build()
        .unwrap();
    let tou = Contract::builder("tou")
        .tariff(Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.10),
            EnergyPrice::per_kilowatt_hour(0.04),
        ))
        .build()
        .unwrap();
    let dynamic = Contract::builder("dynamic")
        .tariff(Tariff::dynamic(
            year_strip(),
            EnergyPrice::per_kilowatt_hour(0.01),
            EnergyPrice::per_kilowatt_hour(0.07),
        ))
        .build()
        .unwrap();
    let full = Contract::builder("full")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .powerband(Powerband::symmetric(
            Power::from_megawatts(8.0),
            Power::from_megawatts(2.0),
            EnergyPrice::per_kilowatt_hour(0.35),
        ))
        .build()
        .unwrap();

    let mut g = c.benchmark_group("billing_year_15min");
    g.sample_size(20);
    for (name, contract) in [
        ("fixed", &fixed),
        ("tou", &tou),
        ("dynamic", &dynamic),
        ("full_contract", &full),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || load.clone(),
                |l| black_box(engine.bill(contract, &l).unwrap().total()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_billing);
criterion_main!(benches);
