//! Bench: the billing engine hot path (harness behind experiments E1/E2/E5).
//!
//! Prices one year of 15-minute interval data under each tariff leaf and
//! under the full typical contract (tariff + demand charge + powerband),
//! then compares the interpreted path against the compiled kernel
//! (segment timelines + month-boundary index) on the acceptance workload:
//! one month of 15-minute samples under a TOU contract.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpcgrid_core::billing::{BillingEngine, Precision};
use hpcgrid_core::contract::{Contract, ContractDelta};
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::{DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, MonthSet, Power, SimTime, TimeOfDay,
};
use std::hint::black_box;

fn year_load() -> PowerSeries {
    let n = 365 * 96; // one year of 15-min intervals
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        let diurnal = 1.0 + 0.3 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        Power::from_megawatts(8.0 * diurnal)
    })
    .unwrap()
}

fn year_strip() -> PriceSeries {
    let n = 365 * 96;
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        EnergyPrice::per_kilowatt_hour(0.05 + 0.03 * (h / 24.0 * std::f64::consts::TAU).sin().abs())
    })
    .unwrap()
}

fn bench_billing(c: &mut Criterion) {
    let load = year_load();
    let cal = Calendar::default();
    let engine = BillingEngine::new(cal);

    let fixed = Contract::builder("fixed")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .build()
        .unwrap();
    let tou = Contract::builder("tou")
        .tariff(Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.10),
            EnergyPrice::per_kilowatt_hour(0.04),
        ))
        .build()
        .unwrap();
    let dynamic = Contract::builder("dynamic")
        .tariff(Tariff::dynamic(
            year_strip(),
            EnergyPrice::per_kilowatt_hour(0.01),
            EnergyPrice::per_kilowatt_hour(0.07),
        ))
        .build()
        .unwrap();
    let full = Contract::builder("full")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .powerband(Powerband::symmetric(
            Power::from_megawatts(8.0),
            Power::from_megawatts(2.0),
            EnergyPrice::per_kilowatt_hour(0.35),
        ))
        .build()
        .unwrap();

    let mut g = c.benchmark_group("billing_year_15min");
    g.sample_size(20);
    for (name, contract) in [
        ("fixed", &fixed),
        ("tou", &tou),
        ("dynamic", &dynamic),
        ("full_contract", &full),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || load.clone(),
                |l| black_box(engine.bill(contract, &l).unwrap().total()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn month_load() -> PowerSeries {
    let n = 30 * 96; // one month of 15-min intervals
    Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), n, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        let diurnal = 1.0 + 0.3 * ((h - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        Power::from_megawatts(8.0 * diurnal)
    })
    .unwrap()
}

fn bench_compiled(c: &mut Criterion) {
    let load = month_load();
    let cal = Calendar::default();
    let engine = BillingEngine::new(cal);
    // Utility-shaped TOU: the weekday/month filters are what force the
    // interpreter to consult the calendar per sample.
    let tou = Contract::builder("tou")
        .tariff(Tariff::TimeOfUse(TouTariff {
            windows: vec![
                TouWindow {
                    months: Some(MonthSet::summer()),
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(14, 0),
                    to: TimeOfDay::new(20, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.24),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(7, 0),
                    to: TimeOfDay::new(22, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.11),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::All,
                    from: TimeOfDay::new(22, 0),
                    to: TimeOfDay::new(7, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.04),
                },
            ],
            base: EnergyPrice::per_kilowatt_hour(0.08),
        }))
        .build()
        .unwrap();
    let compiled = engine.compile(&tou, load.start(), load.end()).unwrap();
    assert_eq!(
        engine.bill(&tou, &load).unwrap(),
        compiled.bill(&load).unwrap(),
        "bench contract must bill bit-identically on both paths"
    );

    let mut g = c.benchmark_group("billing_month_15min_tou");
    g.sample_size(20);
    g.bench_function("interpreted", |b| {
        b.iter(|| black_box(engine.bill(&tou, &load).unwrap().total()))
    });
    g.bench_function("compiled", |b| {
        b.iter(|| black_box(compiled.bill(&load).unwrap().total()))
    });
    g.bench_function("compile_only", |b| {
        b.iter(|| black_box(engine.compile(&tou, load.start(), load.end()).unwrap()))
    });
    g.finish();

    // Batch throughput: 32 sites under one contract — compile once, fan out.
    let loads: Vec<PowerSeries> = (0..32).map(|i| load.scale(0.5 + 0.05 * i as f64)).collect();
    let mut g = c.benchmark_group("billing_batch_32_loads");
    g.sample_size(10);
    g.bench_function("interpreted_loop", |b| {
        b.iter(|| {
            for l in &loads {
                black_box(engine.bill(&tou, l).unwrap().total());
            }
        })
    });
    g.bench_function("bill_many", |b| {
        b.iter(|| black_box(engine.bill_many(&tou, &loads).unwrap().len()))
    });
    g.finish();
}

/// A month-coverage hourly strip whose level varies by revision index, like
/// a day-ahead republication.
fn revision_strip(revision: usize) -> PriceSeries {
    let offset = 0.002 * (revision % 17) as f64;
    Series::from_fn(SimTime::EPOCH, Duration::from_hours(1.0), 30 * 24, |t| {
        let h = (t.as_secs() % 86_400) as f64 / 3_600.0;
        EnergyPrice::per_kilowatt_hour(
            0.05 + offset + 0.03 * (h / 24.0 * std::f64::consts::TAU).sin().abs(),
        )
    })
    .unwrap()
}

fn bench_patch(c: &mut Criterion) {
    let cal = Calendar::default();
    let engine = BillingEngine::new(cal);
    // The rich sweep contract from `exp_billing_kernel`: four tariffs plus
    // demand charge. A market revision touches only tariff index 3 (the
    // dynamic strip); the patch path re-lowers that one piece and shares the
    // rest, while the recompile path re-lowers everything over the year.
    let dynamic_index = 3;
    let base_strip = revision_strip(0);
    let contract = Contract::builder("rich")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.015)))
        .tariff(Tariff::TimeOfUse(TouTariff {
            windows: vec![
                TouWindow {
                    months: Some(MonthSet::summer()),
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(14, 0),
                    to: TimeOfDay::new(20, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.24),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::All,
                    from: TimeOfDay::new(22, 0),
                    to: TimeOfDay::new(7, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.04),
                },
            ],
            base: EnergyPrice::per_kilowatt_hour(0.08),
        }))
        .tariff(Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.03),
            EnergyPrice::per_kilowatt_hour(0.012),
        ))
        .tariff(Tariff::dynamic(
            base_strip,
            EnergyPrice::per_kilowatt_hour(0.01),
            EnergyPrice::per_kilowatt_hour(0.08),
        ))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .build()
        .unwrap();
    let year_end = SimTime::from_days(365);
    let kernel = engine.compile(&contract, SimTime::EPOCH, year_end).unwrap();
    let strips: Vec<PriceSeries> = (1..65).map(revision_strip).collect();

    let mut g = c.benchmark_group("patch_vs_recompile");
    g.sample_size(20);
    g.bench_function("recompile_year_kernel", |b| {
        let mut i = 0;
        b.iter(|| {
            let strip = &strips[i % strips.len()];
            i += 1;
            let revised = contract
                .apply(&ContractDelta::price_strip(dynamic_index, strip.clone()))
                .unwrap();
            black_box(engine.compile(&revised, SimTime::EPOCH, year_end).unwrap())
        })
    });
    g.bench_function("patch_with_price_strip", |b| {
        let mut i = 0;
        b.iter(|| {
            let strip = &strips[i % strips.len()];
            i += 1;
            black_box(kernel.with_price_strip(strip).unwrap())
        })
    });
    g.bench_function("patch_set_demand_charge", |b| {
        let mut i = 0;
        b.iter(|| {
            let rate = 6.0 + (i % 8) as f64;
            i += 1;
            black_box(
                kernel
                    .patch(&ContractDelta::SetDemandCharge(Some(
                        DemandCharge::monthly(DemandPrice::per_kilowatt_month(rate)),
                    )))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_fast(c: &mut Criterion) {
    let load = month_load();
    let cal = Calendar::default();
    let engine = BillingEngine::new(cal);
    // Same utility-shaped TOU + demand contract as `exp_billing_kernel`'s
    // fast-path baseline: the energy item exercises the vectorized segment
    // replay, the demand item the branchless lane-max peak scan.
    let contract = Contract::builder("tou+demand")
        .tariff(Tariff::TimeOfUse(TouTariff {
            windows: vec![
                TouWindow {
                    months: Some(MonthSet::summer()),
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(14, 0),
                    to: TimeOfDay::new(20, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.24),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(7, 0),
                    to: TimeOfDay::new(22, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.11),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::All,
                    from: TimeOfDay::new(22, 0),
                    to: TimeOfDay::new(7, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.04),
                },
            ],
            base: EnergyPrice::per_kilowatt_hour(0.08),
        }))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .build()
        .unwrap();
    let exact = engine
        .compile(&contract, load.start(), load.end())
        .unwrap()
        .with_precision(Precision::BitExact);
    let fast = exact.clone().with_precision(Precision::Fast);
    // Tolerance gate before timing: the fast bill must sit within 1e-12
    // relative of the bit-exact bill on every line item.
    let (eb, fb) = (exact.bill(&load).unwrap(), fast.bill(&load).unwrap());
    for (e, f) in eb.items.iter().zip(&fb.items) {
        let (a, b) = (e.amount.as_dollars(), f.amount.as_dollars());
        assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0),
            "fast line item {} outside tolerance",
            e.label
        );
    }

    let mut g = c.benchmark_group("billing_fast_vs_exact");
    g.sample_size(20);
    g.bench_function("bit_exact", |b| {
        b.iter(|| black_box(exact.bill(&load).unwrap().total()))
    });
    g.bench_function("fast", |b| {
        b.iter(|| black_box(fast.bill(&load).unwrap().total()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_billing,
    bench_compiled,
    bench_patch,
    bench_fast
);
criterion_main!(benches);
