//! Streaming bill accrual: fold one sample at a time into a running bill.
//!
//! Every batch path in this crate — interpreted or compiled — is an O(n)
//! replay over a *complete* load series. Utility-scale serving (millions of
//! meters billed continuously) needs the dual: a per-meter state machine
//! that folds one `(timestamp, Power)` sample in O(1) amortized and can
//! close the books at any instant. [`BillAccrual`] is that machine.
//!
//! # Bit-identity invariant
//!
//! `finalize()` after `k` pushes produces **bit for bit** the `Bill` that
//! [`CompiledContract::bill_with_events`] produces for the first-`k`-samples
//! series under [`Precision::BitExact`](crate::billing::Precision) — equal
//! totals, equal line items,
//! equal labels. This holds because every accumulator replicates the batch
//! path's expression shape and summation order:
//!
//! * **Strip tariffs** accumulate `Σ kW·h·price` per sample in arrival
//!   order, pricing through the kernel's segment timeline — replaying a
//!   cached segment map prefix when one matches the stream's geometry
//!   (the PR 4/5 machinery), and falling back to a monotone segment-cursor
//!   advance otherwise. Both produce the same `f64` prices, so the fold is
//!   identical either way.
//! * **Block tariffs** carry the current month's kWh bucket and fold closed
//!   months through `BlockTariff::monthly_cost` chronologically.
//! * **Demand charges** maintain the open month's metering chunk (the
//!   `downsample_mean` chunk anchored at the month slice's snapped start)
//!   and its peak state — a running max, or the top-k candidate set with the
//!   stable-sort tie order. Month boundaries replicate `Series::slice_time`
//!   snap-out, including the one-sample overlap at boundaries that are not
//!   step-aligned: the straddling sample is re-fed to the new month.
//! * **Powerbands** accumulate excursion kWh in sample order; **emergency
//!   windows** carry a running worst load per event window; the **service
//!   fee** is a month-count off the shared boundary index at finalize.
//!
//! Verified by the `accrual_equivalence` property tests at every stream
//! prefix, across all four tariff kinds, wrap-midnight TOU windows, and
//! month-straddling streams.
//!
//! # Mid-stream patches
//!
//! [`BillAccrual::rebind`] moves a live accrual onto a patched kernel
//! (see [`CompiledContract::patch`]) *without replaying history*, which is
//! only sound for deltas whose accrued state stays valid: fee changes,
//! demand-charge price changes (same interval/basis/floor), powerband
//! penalty changes (same bounds), emergency-clause changes, and component
//! removals. Deltas that would re-price history (tariff replacements,
//! corridor moves, adding a demand charge mid-stream) are rejected.
//!
//! [`BillAccrual::rebind_at`] is the *prospective* dual, built for ledger
//! events (see [`ContractLedger`](crate::ledger::ContractLedger)): instead
//! of re-pricing history it closes the books on the current revision's
//! slice at an effective instant and keeps streaming under the new kernel —
//! any delta is allowed, because nothing accrued crosses the boundary.
//! `finalize()` then folds the closed slices with the open one via
//! [`Bill::fold`], bit-identical to
//! [`ContractLedger::bill_as_of`](crate::ledger::ContractLedger::bill_as_of)
//! over the same stream.

use crate::billing::{Bill, LineItem, Precision};
use crate::compiled::{CompiledContract, LoweredTariff, SegmentMap};
use crate::demand_charge::{DemandAssessment, DemandBasis, DemandCharge};
use crate::typology::ContractComponentKind;
use crate::{CoreError, Result};
use hpcgrid_timeseries::intervals::IntervalSet;
use hpcgrid_units::{kernels, Duration, Energy, Money, Power, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Replay state for a cached segment map whose geometry prefixes the stream.
#[derive(Debug, Clone)]
struct MapReplay {
    map: Arc<SegmentMap>,
    /// Sample count the map's geometry covers.
    len: u64,
    /// Current run index.
    run: usize,
}

/// Per-tariff accrual state, parallel to the kernel's tariff slots.
#[derive(Debug, Clone)]
enum TariffAccrual {
    /// Fixed/TOU/dynamic: running dollars + segment cursor (+ map replay).
    Strip {
        dollars: f64,
        seg: usize,
        replay: Option<MapReplay>,
    },
    /// Block: current month's kWh bucket + fold of closed months.
    Block {
        bi: usize,
        cur_kwh: f64,
        have: bool,
        total: Money,
    },
}

/// Running peak state of the open demand month.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum PeakState {
    /// Running max of completed chunk means, in kW.
    Max(Option<f64>),
    /// Top-k candidates as `(chunk_index, kW)`, kept sorted by
    /// (kW descending, chunk_index ascending) — the stable-descending-sort
    /// prefix `top_k_peaks` would produce.
    TopK(Vec<(u64, f64)>),
}

impl PeakState {
    fn new(basis: DemandBasis) -> PeakState {
        match basis {
            DemandBasis::MaxPeak => PeakState::Max(None),
            DemandBasis::TopKAverage(_) => PeakState::TopK(Vec::new()),
        }
    }

    fn observe(&mut self, k: usize, chunk_idx: u64, kw: f64) {
        match self {
            PeakState::Max(m) => *m = Some(m.map_or(kw, |c| c.max(kw))),
            PeakState::TopK(cands) => {
                // Insert after every candidate with a strictly greater or
                // equal demand: equal demands keep arrival (chronological)
                // order, exactly like the batch path's stable sort.
                let pos = cands.partition_point(|(_, c)| *c >= kw);
                if pos < k {
                    cands.insert(pos, (chunk_idx, kw));
                    cands.truncate(k);
                } else if cands.len() < k {
                    cands.push((chunk_idx, kw));
                }
            }
        }
    }

    /// The month's raw billed demand in kW, summed in the batch path's
    /// order. `None` if no chunk completed.
    fn billed_kw(&self) -> Option<f64> {
        match self {
            PeakState::Max(m) => *m,
            PeakState::TopK(cands) => {
                if cands.is_empty() {
                    return None;
                }
                let sum: f64 = cands.iter().map(|(_, kw)| *kw).sum();
                Some(sum / cands.len() as f64)
            }
        }
    }
}

/// Streaming demand-charge state.
#[derive(Debug, Clone)]
struct DemandAccrual {
    /// Samples per metering chunk (1 when the demand interval is no coarser
    /// than the sample step — metering is then the identity).
    factor: u64,
    /// Next month-boundary index to close.
    bi: usize,
    /// Billing-month number of the open month.
    month: u64,
    /// Global sample index where the open month's slice starts.
    month_i0: u64,
    chunk_sum: f64,
    chunk_count: u64,
    /// Completed chunks in the open month (the top-k arrival index).
    chunk_idx: u64,
    peak: PeakState,
    /// Assessments of closed months, in month order.
    closed: Vec<DemandAssessment>,
}

impl DemandAccrual {
    /// Mean of a metering chunk, replicating `downsample_mean`: a factor-1
    /// chunk is the raw sample (the batch path clones, it never divides).
    fn chunk_mean(&self) -> f64 {
        if self.factor == 1 {
            self.chunk_sum
        } else {
            self.chunk_sum / self.chunk_count as f64
        }
    }

    fn feed(&mut self, dc: &DemandCharge, kw: f64) {
        self.chunk_sum += kw;
        self.chunk_count += 1;
        if self.chunk_count == self.factor {
            let mean = self.chunk_mean();
            self.peak.observe(top_k(dc), self.chunk_idx, mean);
            self.chunk_sum = 0.0;
            self.chunk_count = 0;
            self.chunk_idx += 1;
        }
    }

    /// Assessment of the open month without mutating state (used both by
    /// the boundary-close path and the non-consuming `finalize`).
    fn closing_assessment(&self, dc: &DemandCharge) -> Option<DemandAssessment> {
        let mut peak = self.peak.clone();
        if self.chunk_count > 0 {
            // Partial trailing chunk: averaged over the samples present.
            peak.observe(top_k(dc), self.chunk_idx, self.chunk_mean());
        }
        let billed = dc.apply_floor(Power::from_kilowatts(peak.billed_kw()?));
        Some(DemandAssessment {
            month: self.month,
            billed_demand: billed,
            charge: billed * dc.price,
        })
    }
}

fn top_k(dc: &DemandCharge) -> usize {
    match dc.basis {
        DemandBasis::MaxPeak => 1,
        DemandBasis::TopKAverage(k) => k,
    }
}

/// Streaming powerband state: excursion energy in sample order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BandAccrual {
    over_kwh: f64,
    under_kwh: f64,
    violations: u64,
}

/// Streaming state of one emergency event window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WindowAccrual {
    /// Window `[start, end)` in seconds.
    start: u64,
    end: u64,
    /// First member sample index (snap-out: a sample straddling the window
    /// start belongs to it, like `Series::slice_time`).
    first_index: u64,
    /// Running worst load, `None` while no sample fell in the window.
    worst: Option<Power>,
}

/// A streaming bill: one contract meter folding samples into a running
/// bill in O(1) amortized per sample.
///
/// Samples arrive on a fixed grid — `start + i·step` — matching how a
/// [`PowerSeries`](hpcgrid_timeseries::series::PowerSeries) indexes
/// intervals; [`BillAccrual::push`] checks
/// the timestamp and [`BillAccrual::push_next`] skips the check (the fleet
/// tick path). [`BillAccrual::finalize`] closes the books at the current
/// instant and is bit-identical to the batch kernel — see the module docs.
///
/// ```
/// use hpcgrid_core::accrual::BillAccrual;
/// use hpcgrid_core::billing::Precision;
/// use hpcgrid_core::compiled::CompiledContract;
/// use hpcgrid_core::contract::Contract;
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_timeseries::series::Series;
/// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
/// use std::sync::Arc;
///
/// let contract = Contract::builder("flat")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let cal = Calendar::default();
/// // Pin bit-exact: the bit-identity claim below is a `BitExact` statement
/// // (under a `Fast` kernel the accrual stays within its 1e-12 tolerance).
/// let kernel = Arc::new(
///     CompiledContract::compile(&cal, &contract, SimTime::EPOCH, SimTime::from_days(30))?
///         .with_precision(Precision::BitExact),
/// );
///
/// let step = Duration::from_minutes(15.0);
/// let mut meter = BillAccrual::new(Arc::clone(&kernel), SimTime::EPOCH, step)?;
/// let load = Series::constant(SimTime::EPOCH, step, Power::from_megawatts(8.0), 96)?;
/// for (t, &p) in load.iter() {
///     meter.push(t, p)?;
/// }
/// // Bit-identical to the batch path over the same samples.
/// assert_eq!(meter.finalize()?, kernel.bill(&load)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BillAccrual {
    kernel: Arc<CompiledContract>,
    /// First sample start, in seconds.
    start: u64,
    /// Sample step, in seconds.
    step: u64,
    /// Step width in hours — the batch path's `load.step().as_hours()`.
    step_h: f64,
    /// Samples folded so far.
    n: u64,
    /// kW of the most recent sample (re-fed to a new demand month when a
    /// boundary splits the sample — the `slice_time` snap-out overlap).
    last_kw: f64,
    tariffs: Vec<TariffAccrual>,
    demand: Option<DemandAccrual>,
    band: Option<BandAccrual>,
    windows: Vec<WindowAccrual>,
    /// Bills of revision slices closed by [`BillAccrual::rebind_at`], in
    /// time order; `finalize()` folds them with the open slice.
    closed_slices: Vec<Bill>,
    /// Fault-injection latch: the next `push_next` panics. Transient test
    /// state — never serialized, cleared by the panic it causes.
    poison_next: bool,
}

/// Serialized checkpoint of a [`BillAccrual`], from
/// [`BillAccrual::snapshot`]. Self-contained modulo the kernel: restoring
/// requires a kernel with the same [`CompiledContract::fingerprint`] (the
/// snapshot carries it for validation) but none of the compiled timelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccrualSnapshot {
    /// `CompiledContract::fingerprint().0` of the kernel accrued against.
    pub fingerprint: u64,
    start: u64,
    step: u64,
    n: u64,
    last_kw: f64,
    /// Per-strip running dollars / per-block bucket state, in tariff order.
    tariffs: Vec<TariffSnapshot>,
    demand: Option<DemandSnapshot>,
    band: Option<BandAccrual>,
    windows: Vec<WindowAccrual>,
    /// Revision slices closed by [`BillAccrual::rebind_at`] before the
    /// snapshot was taken (empty for a single-revision stream).
    closed_slices: Vec<Bill>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TariffSnapshot {
    /// Running dollars; the segment cursor is re-seeked on restore.
    Strip(f64),
    /// `(current month kWh, bucket open, closed-months fold)`.
    Block(f64, bool, Money),
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct DemandSnapshot {
    chunk_sum: f64,
    chunk_count: u64,
    chunk_idx: u64,
    peak: PeakState,
    closed: Vec<DemandAssessment>,
}

impl BillAccrual {
    /// A fresh accrual against `kernel` for a sample stream starting at
    /// `start` with interval width `step` (no emergency event windows; see
    /// [`BillAccrual::with_events`]).
    ///
    /// Errors if `step` is zero, `start` lies outside the kernel's compile
    /// horizon, or the kernel's demand interval is incompatible with `step`
    /// (coarser but not an integer multiple — the same geometry the batch
    /// path rejects per bill, rejected here once).
    pub fn new(
        kernel: Arc<CompiledContract>,
        start: SimTime,
        step: Duration,
    ) -> Result<BillAccrual> {
        BillAccrual::with_events(kernel, start, step, &IntervalSet::empty())
    }

    /// Like [`BillAccrual::new`], with emergency event windows the stream
    /// will be assessed against (the streaming form of
    /// [`CompiledContract::bill_with_events`]).
    pub fn with_events(
        kernel: Arc<CompiledContract>,
        start: SimTime,
        step: Duration,
        events: &IntervalSet,
    ) -> Result<BillAccrual> {
        if step.is_zero() {
            return Err(CoreError::BadSeries("sample step must be positive".into()));
        }
        let (h_start, h_end) = kernel.horizon();
        if start < h_start || start >= h_end {
            return Err(CoreError::BadSeries(format!(
                "stream start {start} is outside the compiled horizon [{h_start}, {h_end})"
            )));
        }
        let s0 = start.as_secs();
        let step_s = step.as_secs();
        let tariffs = kernel
            .tariffs
            .iter()
            .map(|piece| match &piece.lowered {
                LoweredTariff::Strip(tl) => TariffAccrual::Strip {
                    dollars: 0.0,
                    seg: tl.breaks.partition_point(|b| *b <= s0) - 1,
                    replay: tl.prefix_map(s0, step_s).map(|(map, len)| MapReplay {
                        map,
                        len: len as u64,
                        run: 0,
                    }),
                },
                LoweredTariff::Block(_) => TariffAccrual::Block {
                    bi: kernel.boundary_after(s0),
                    cur_kwh: 0.0,
                    have: false,
                    total: Money::ZERO,
                },
            })
            .collect();
        let demand = match &kernel.demand_charge {
            Some(dc) => {
                dc.validate()?;
                let di = dc.demand_interval.as_secs();
                let factor = if di >= step_s {
                    if !di.is_multiple_of(step_s) {
                        return Err(CoreError::BadSeries(format!(
                            "demand interval {di}s is not an integer multiple of the \
                             sample step {step_s}s"
                        )));
                    }
                    di / step_s
                } else {
                    1
                };
                let bi = kernel.boundary_after(s0);
                Some(DemandAccrual {
                    factor,
                    bi,
                    month: kernel.first_month + bi as u64,
                    month_i0: 0,
                    chunk_sum: 0.0,
                    chunk_count: 0,
                    chunk_idx: 0,
                    peak: PeakState::new(dc.basis),
                    closed: Vec::new(),
                })
            }
            None => None,
        };
        let band = kernel.powerband.map(|_| BandAccrual {
            over_kwh: 0.0,
            under_kwh: 0.0,
            violations: 0,
        });
        // Window membership replicates `slice_time` snap-out against the
        // stream grid: first member index floors the window start, and a
        // sample is in while its start time is below the window end.
        let windows = events
            .intervals()
            .iter()
            .map(|w| {
                let ws = w.start.as_secs();
                WindowAccrual {
                    start: ws,
                    end: w.end.as_secs(),
                    first_index: if ws <= s0 { 0 } else { (ws - s0) / step_s },
                    worst: None,
                }
            })
            .collect();
        Ok(BillAccrual {
            kernel,
            start: s0,
            step: step_s,
            step_h: step.as_hours(),
            n: 0,
            last_kw: 0.0,
            tariffs,
            demand,
            band,
            windows,
            closed_slices: Vec::new(),
            poison_next: false,
        })
    }

    /// Arm a one-shot injected panic on the next [`BillAccrual::push_next`]
    /// — the fleet chaos hook behind
    /// [`MeterFleet::chaos_poison_meter`](crate::fleet::MeterFleet::chaos_poison_meter).
    /// Test-only plumbing; the latch is transient and never serialized.
    #[doc(hidden)]
    pub fn poison_next_push(&mut self) {
        self.poison_next = true;
    }

    /// The kernel this accrual bills against.
    pub fn kernel(&self) -> &Arc<CompiledContract> {
        &self.kernel
    }

    /// Samples folded so far.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Start time of the next expected sample.
    pub fn expected_next(&self) -> SimTime {
        SimTime::from_secs(self.start + self.n * self.step)
    }

    /// Fold one sample, checking its timestamp against the stream grid.
    /// Streams are gap-free: `t` must equal [`BillAccrual::expected_next`].
    pub fn push(&mut self, t: SimTime, power: Power) -> Result<()> {
        let expected = self.expected_next();
        if t != expected {
            return Err(CoreError::BadSeries(format!(
                "sample at {t} breaks the stream grid (expected {expected})"
            )));
        }
        self.push_next(power)
    }

    /// Fold one sample at the next grid instant (the fleet tick path).
    pub fn push_next(&mut self, power: Power) -> Result<()> {
        if self.poison_next {
            self.poison_next = false;
            panic!("injected meter panic (chaos)");
        }
        let t = self.start + self.n * self.step;
        if t + self.step > self.kernel.end.as_secs() {
            return Err(CoreError::BadSeries(format!(
                "sample [{}, {}) runs past the compiled horizon end {}",
                SimTime::from_secs(t),
                SimTime::from_secs(t + self.step),
                self.kernel.end
            )));
        }
        let kw = power.as_kilowatts();
        let i = self.n;
        let starts: &[u64] = &self.kernel.month_starts;

        for (slot, state) in self.kernel.tariffs.iter().zip(self.tariffs.iter_mut()) {
            match state {
                TariffAccrual::Strip {
                    dollars,
                    seg,
                    replay,
                } => {
                    let tl = match &slot.lowered {
                        LoweredTariff::Strip(tl) => tl,
                        LoweredTariff::Block(_) => unreachable!("strip state on block slot"),
                    };
                    let price = match replay {
                        Some(rep) if i < rep.len => {
                            while rep.map.runs[rep.run].0 as u64 <= i {
                                rep.run += 1;
                            }
                            rep.map.runs[rep.run].1
                        }
                        Some(rep) => {
                            // Map exhausted: resume cursor advance from the
                            // map's final segment.
                            *seg = rep.map.last_seg;
                            *replay = None;
                            advance_seg(seg, &tl.breaks, t);
                            tl.prices[*seg]
                        }
                        None => {
                            advance_seg(seg, &tl.breaks, t);
                            tl.prices[*seg]
                        }
                    };
                    // The batch fold's exact expression and order.
                    *dollars += kw * self.step_h * price;
                }
                TariffAccrual::Block {
                    bi,
                    cur_kwh,
                    have,
                    total,
                } => {
                    let b = match &slot.lowered {
                        LoweredTariff::Block(b) => b,
                        LoweredTariff::Strip(_) => unreachable!("block state on strip slot"),
                    };
                    while *bi < starts.len() && starts[*bi] <= t {
                        *bi += 1;
                        if *have {
                            *total += b.monthly_cost(*cur_kwh);
                            *cur_kwh = 0.0;
                            *have = false;
                        }
                    }
                    *cur_kwh += kw * self.step_h;
                    *have = true;
                }
            }
        }

        if let (Some(d), Some(dc)) = (self.demand.as_mut(), self.kernel.demand_charge.as_ref()) {
            while d.bi < starts.len() && starts[d.bi] <= t {
                let b = starts[d.bi];
                if let Some(a) = d.closing_assessment(dc) {
                    d.closed.push(a);
                }
                d.bi += 1;
                d.month += 1;
                d.month_i0 = (b - self.start) / self.step;
                d.chunk_sum = 0.0;
                d.chunk_count = 0;
                d.chunk_idx = 0;
                d.peak = PeakState::new(dc.basis);
                if !(b - self.start).is_multiple_of(self.step) {
                    // The boundary splits the previous sample: slice_time
                    // snap-out puts it in BOTH months, so re-feed it as the
                    // new month's first metering sample.
                    d.feed(dc, self.last_kw);
                }
            }
            d.feed(dc, kw);
        }

        if let (Some(band), Some(pb)) = (self.band.as_mut(), self.kernel.powerband.as_ref()) {
            if power > pb.upper {
                band.over_kwh += (power - pb.upper).as_kilowatts() * self.step_h;
                band.violations += 1;
            } else if let Some(lower) = pb.lower {
                if power < lower {
                    band.under_kwh += (lower - power).as_kilowatts() * self.step_h;
                    band.violations += 1;
                }
            }
        }

        for w in &mut self.windows {
            if i >= w.first_index && t < w.end {
                w.worst = Some(w.worst.map_or(power, |a| a.max(power)));
            }
        }

        self.last_kw = kw;
        self.n += 1;
        Ok(())
    }

    /// Fold a contiguous run of samples at the next grid instants — the
    /// fused form of calling [`BillAccrual::push_next`] once per sample,
    /// built for the fleet's windowed tick path
    /// ([`MeterFleet::advance_window`](crate::fleet::MeterFleet::advance_window)).
    ///
    /// Fusing keeps the segment cursor, map-replay position, and month
    /// cursors hot across the whole run: price/boundary lookups happen once
    /// per *run segment* instead of once per sample, and the inner loops
    /// are tight multiply-adds over the contiguous power slice.
    ///
    /// # Equivalence contract
    ///
    /// Under a [`Precision::BitExact`] kernel the accrued state after
    /// `push_run(powers)` is **bit-identical** to the state after
    /// `powers.len()` sequential `push_next` calls: every accumulator sees
    /// the same per-sample `f64` expressions in the same order — only
    /// cursor bookkeeping is hoisted out of the inner loops. Under a
    /// [`Precision::Fast`] kernel, constant-price runs fold through the
    /// 8-lane pairwise kernels in [`hpcgrid_units::kernels`] instead,
    /// within the fast path's documented 1e-12 relative tolerance.
    ///
    /// Error behaviour is per-sample-identical too: a run crossing the
    /// compile horizon applies the fitting prefix and then returns exactly
    /// the error `push_next` would have returned for the first overrunning
    /// sample. An empty run is a no-op (zero `push_next` calls).
    pub fn push_run(&mut self, powers: &[Power]) -> Result<()> {
        if powers.is_empty() {
            return Ok(());
        }
        if self.poison_next {
            self.poison_next = false;
            panic!("injected meter panic (chaos)");
        }
        let end = self.kernel.end.as_secs();
        let t0 = self.start + self.n * self.step;
        // Sample `j` of the run occupies [t0 + j·step, t0 + (j+1)·step);
        // it fits while that interval ends at or before the horizon end.
        let fit = ((end - t0) / self.step) as usize;
        let run = powers.len().min(fit);
        self.fold_run(&powers[..run]);
        if run < powers.len() {
            let t = self.start + self.n * self.step;
            return Err(CoreError::BadSeries(format!(
                "sample [{}, {}) runs past the compiled horizon end {}",
                SimTime::from_secs(t),
                SimTime::from_secs(t + self.step),
                self.kernel.end
            )));
        }
        Ok(())
    }

    /// The fused fold over a run already validated to fit the horizon.
    ///
    /// Component-outer: each accumulator walks the whole run before the
    /// next one starts. Components never read each other's state (demand's
    /// boundary re-feed needs the *previous sample's* kW, which comes from
    /// the run slice itself or `self.last_kw` for the run's first sample),
    /// so per-component order equals per-sample order — the bit-identity
    /// argument reduces to each inner loop replicating `push_next`'s
    /// expressions, which they do.
    fn fold_run(&mut self, powers: &[Power]) {
        if powers.is_empty() {
            return;
        }
        let len = powers.len() as u64;
        let kws = Power::kilowatts_slice(powers);
        let g0 = self.n;
        let start = self.start;
        let step = self.step;
        let step_h = self.step_h;
        let fast = self.kernel.precision() == Precision::Fast;
        let starts: &[u64] = &self.kernel.month_starts;

        for (slot, state) in self.kernel.tariffs.iter().zip(self.tariffs.iter_mut()) {
            match state {
                TariffAccrual::Strip {
                    dollars,
                    seg,
                    replay,
                } => {
                    let tl = match &slot.lowered {
                        LoweredTariff::Strip(tl) => tl,
                        LoweredTariff::Block(_) => unreachable!("strip state on block slot"),
                    };
                    let mut acc = *dollars;
                    let mut j = 0u64;
                    while j < len {
                        let g = g0 + j;
                        // The price in force at sample `g` and the global
                        // index its constant-price run extends to.
                        let (price, g_end) = if let Some(rep) = replay.as_mut() {
                            if g < rep.len {
                                while rep.map.runs[rep.run].0 as u64 <= g {
                                    rep.run += 1;
                                }
                                let (run_end, price) = rep.map.runs[rep.run];
                                (price, (run_end as u64).min(rep.len))
                            } else {
                                // Map exhausted: resume cursor advance from
                                // the map's final segment (push_next's
                                // exhaustion path), then re-enter the loop.
                                *seg = rep.map.last_seg;
                                *replay = None;
                                continue;
                            }
                        } else {
                            advance_seg(seg, &tl.breaks, start + g * step);
                            let g_end = match tl.breaks.get(*seg + 1) {
                                Some(&b) => (b - start).div_ceil(step),
                                None => u64::MAX,
                            };
                            (tl.prices[*seg], g_end)
                        };
                        let j_end = (g_end - g0).min(len);
                        let chunk = &kws[j as usize..j_end as usize];
                        if fast {
                            acc += kernels::sum_pairwise(chunk) * step_h * price;
                        } else {
                            // push_next's exact expression and order.
                            for &kw in chunk {
                                acc += kw * step_h * price;
                            }
                        }
                        j = j_end;
                    }
                    *dollars = acc;
                }
                TariffAccrual::Block {
                    bi,
                    cur_kwh,
                    have,
                    total,
                } => {
                    let b = match &slot.lowered {
                        LoweredTariff::Block(b) => b,
                        LoweredTariff::Strip(_) => unreachable!("block state on strip slot"),
                    };
                    let mut j = 0u64;
                    while j < len {
                        let t = start + (g0 + j) * step;
                        while *bi < starts.len() && starts[*bi] <= t {
                            *bi += 1;
                            if *have {
                                *total += b.monthly_cost(*cur_kwh);
                                *cur_kwh = 0.0;
                                *have = false;
                            }
                        }
                        let j_end = match starts.get(*bi) {
                            Some(&nb) => ((nb - start).div_ceil(step) - g0).min(len),
                            None => len,
                        };
                        let chunk = &kws[j as usize..j_end as usize];
                        if fast {
                            *cur_kwh += kernels::sum_pairwise(chunk) * step_h;
                        } else {
                            for &kw in chunk {
                                *cur_kwh += kw * step_h;
                            }
                        }
                        *have = true;
                        j = j_end;
                    }
                }
            }
        }

        if let (Some(d), Some(dc)) = (self.demand.as_mut(), self.kernel.demand_charge.as_ref()) {
            let mut j = 0u64;
            while j < len {
                let t = start + (g0 + j) * step;
                // kW of the most recently folded sample, for the snap-out
                // re-feed when a boundary splits it.
                let prev_kw = if j == 0 {
                    self.last_kw
                } else {
                    kws[j as usize - 1]
                };
                while d.bi < starts.len() && starts[d.bi] <= t {
                    let bnd = starts[d.bi];
                    if let Some(a) = d.closing_assessment(dc) {
                        d.closed.push(a);
                    }
                    d.bi += 1;
                    d.month += 1;
                    d.month_i0 = (bnd - start) / step;
                    d.chunk_sum = 0.0;
                    d.chunk_count = 0;
                    d.chunk_idx = 0;
                    d.peak = PeakState::new(dc.basis);
                    if !(bnd - start).is_multiple_of(step) {
                        d.feed(dc, prev_kw);
                    }
                }
                let j_end = match starts.get(d.bi) {
                    Some(&nb) => ((nb - start).div_ceil(step) - g0).min(len),
                    None => len,
                };
                for &kw in &kws[j as usize..j_end as usize] {
                    d.feed(dc, kw);
                }
                j = j_end;
            }
        }

        if let (Some(band), Some(pb)) = (self.band.as_mut(), self.kernel.powerband.as_ref()) {
            let upper = pb.upper;
            let lower = pb.lower;
            for &power in powers {
                if power > upper {
                    band.over_kwh += (power - upper).as_kilowatts() * step_h;
                    band.violations += 1;
                } else if let Some(lo) = lower {
                    if power < lo {
                        band.under_kwh += (lo - power).as_kilowatts() * step_h;
                        band.violations += 1;
                    }
                }
            }
        }

        if !self.windows.is_empty() {
            for w in &mut self.windows {
                // Member samples: i >= first_index and t < window end.
                let lo = w.first_index.max(g0);
                let hi = if w.end <= start {
                    g0
                } else {
                    (w.end - start).div_ceil(step).min(g0 + len)
                };
                if lo < hi {
                    let mut worst = w.worst;
                    for &p in &powers[(lo - g0) as usize..(hi - g0) as usize] {
                        worst = Some(worst.map_or(p, |a| a.max(p)));
                    }
                    w.worst = worst;
                }
            }
        }

        self.last_kw = kws[kws.len() - 1];
        self.n = g0 + len;
    }

    /// Close the books at the current instant. Non-consuming: the stream
    /// can keep accruing afterwards (month-to-date reporting).
    ///
    /// Bit-identical to `CompiledContract::bill_with_events` over the
    /// samples pushed so far, under `Precision::BitExact`. Errors on an
    /// empty stream, exactly like the batch path. After
    /// [`BillAccrual::rebind_at`] the closed revision slices are folded
    /// with the open one via [`Bill::fold`] — bit-identical to the ledger's
    /// as-of bill over the same samples.
    pub fn finalize(&self) -> Result<Bill> {
        if self.n == 0 {
            // A stream with closed slices but nothing in the open one yet
            // (finalize right after a rebind_at) still has books to close.
            return if self.closed_slices.is_empty() {
                Err(CoreError::BadSeries("load series is empty".into()))
            } else {
                Bill::fold(&self.closed_slices)
            };
        }
        let open = self.finalize_open()?;
        if self.closed_slices.is_empty() {
            return Ok(open);
        }
        Bill::fold(self.closed_slices.iter().chain(std::iter::once(&open)))
    }

    /// The open slice's bill: the batch-identical close of everything
    /// pushed since the last [`BillAccrual::rebind_at`] (or since creation).
    fn finalize_open(&self) -> Result<Bill> {
        if self.n == 0 {
            return Err(CoreError::BadSeries("load series is empty".into()));
        }
        let mut items = Vec::new();
        for (i, (slot, state)) in self.kernel.tariffs.iter().zip(&self.tariffs).enumerate() {
            let amount = match state {
                TariffAccrual::Strip { dollars, .. } => Money::from_dollars(*dollars),
                TariffAccrual::Block {
                    cur_kwh,
                    have,
                    total,
                    ..
                } => {
                    let b = match &slot.lowered {
                        LoweredTariff::Block(b) => b,
                        LoweredTariff::Strip(_) => unreachable!("block state on strip slot"),
                    };
                    if *have {
                        *total + b.monthly_cost(*cur_kwh)
                    } else {
                        *total
                    }
                }
            };
            items.push(LineItem {
                label: format!("{} tariff #{}", slot.kind().label(), i + 1),
                kind: Some(slot.kind()),
                amount,
            });
        }
        if let (Some(d), Some(dc)) = (self.demand.as_ref(), self.kernel.demand_charge.as_ref()) {
            // A month boundary strictly inside the final sample interval
            // splits it like `slice_time` snap-out: the straddling sample
            // closes the open month AND seeds a trailing month of its own.
            // Push never saw a sample at/past such a boundary, so close it
            // here, on a scratch copy (finalize must not mutate).
            let mut d = d.clone();
            let end = self.start + self.n * self.step;
            let starts: &[u64] = &self.kernel.month_starts;
            while d.bi < starts.len() && starts[d.bi] < end {
                if let Some(a) = d.closing_assessment(dc) {
                    d.closed.push(a);
                }
                d.bi += 1;
                d.month += 1;
                d.chunk_sum = 0.0;
                d.chunk_count = 0;
                d.chunk_idx = 0;
                d.peak = PeakState::new(dc.basis);
                d.feed(dc, self.last_kw);
            }
            let closing = d.closing_assessment(dc);
            let count = d.closed.len() + usize::from(closing.is_some());
            let amount: Money = d
                .closed
                .iter()
                .chain(closing.iter())
                .map(|a| a.charge)
                .sum();
            items.push(LineItem {
                label: format!("Demand charges ({count} billing months)"),
                kind: Some(ContractComponentKind::DemandCharge),
                amount,
            });
        }
        if let (Some(band), Some(pb)) = (self.band.as_ref(), self.kernel.powerband.as_ref()) {
            let amount = (Energy::from_kilowatt_hours(band.over_kwh)
                + Energy::from_kilowatt_hours(band.under_kwh))
                * pb.penalty;
            items.push(LineItem {
                label: format!("Powerband excursions ({} intervals)", band.violations),
                kind: Some(ContractComponentKind::Powerband),
                amount,
            });
        }
        if let Some(em) = &self.kernel.emergency {
            em.validate()?;
            let mut total = Money::ZERO;
            for w in &self.windows {
                let worst = w.worst.unwrap_or(Power::ZERO);
                if worst > em.limit {
                    total += em.penalty_per_event;
                }
            }
            items.push(LineItem {
                label: format!("Emergency DR penalties ({} events)", self.windows.len()),
                kind: Some(ContractComponentKind::EmergencyDr),
                amount: total,
            });
        }
        if self.kernel.monthly_fee > Money::ZERO {
            let end = self.start + self.n * self.step;
            let months = (self.kernel.boundary_after(end - 1)
                - self.kernel.boundary_after(self.start)) as u64
                + 1;
            items.push(LineItem {
                label: format!("Service fee ({months} months)"),
                kind: None,
                amount: self.kernel.monthly_fee * months as f64,
            });
        }
        Ok(Bill {
            contract: self.kernel.name.clone(),
            items,
        })
    }

    /// Move the accrual onto `kernel` — typically a
    /// [`CompiledContract::patch`] of the current one — and continue
    /// streaming, **without replaying history**.
    ///
    /// After a successful rebind, `finalize()` is bit-identical to billing
    /// the *entire* stream (past and future samples) under the new kernel,
    /// which is only possible when the accrued state stays valid. Allowed:
    /// service-fee changes, demand-charge *price* changes (interval, basis,
    /// and floor unchanged — closed months are re-priced from their stored
    /// billed demand), powerband *penalty* changes (bounds unchanged),
    /// emergency-clause changes (windows are tracked independently of the
    /// clause), and removing a demand charge or powerband. Rejected with
    /// [`CoreError::BadComponent`]: replacing a tariff with a different
    /// fingerprint, adding a demand charge or powerband mid-stream, or
    /// changing metering geometry / corridor bounds — those would re-price
    /// samples this accrual no longer holds. The new kernel must share the
    /// old one's calendar and horizon.
    pub fn rebind(&mut self, kernel: Arc<CompiledContract>) -> Result<()> {
        if kernel.horizon() != self.kernel.horizon() || kernel.calendar() != self.kernel.calendar()
        {
            return Err(CoreError::BadComponent(
                "rebind requires the same calendar and compile horizon".into(),
            ));
        }
        if kernel.tariffs.len() != self.kernel.tariffs.len() {
            return Err(CoreError::BadComponent(format!(
                "rebind cannot change the tariff count ({} -> {})",
                self.kernel.tariffs.len(),
                kernel.tariffs.len()
            )));
        }
        for (i, (old, new)) in self.kernel.tariffs.iter().zip(&kernel.tariffs).enumerate() {
            if old.fingerprint != new.fingerprint {
                return Err(CoreError::BadComponent(format!(
                    "rebind cannot replace tariff #{i} mid-stream: accrued energy \
                     cost cannot be re-priced without the sample history"
                )));
            }
        }
        match (&self.kernel.demand_charge, &kernel.demand_charge) {
            (_, None) => self.demand = None,
            (Some(old), Some(new)) => {
                if old.demand_interval != new.demand_interval
                    || old.basis != new.basis
                    || old.floor != new.floor
                {
                    return Err(CoreError::BadComponent(
                        "rebind supports demand-charge price changes only: interval, \
                         basis, and floor shape the accrued metering state"
                            .into(),
                    ));
                }
                if let Some(d) = self.demand.as_mut() {
                    for a in &mut d.closed {
                        a.charge = a.billed_demand * new.price;
                    }
                }
            }
            (None, Some(_)) => {
                return Err(CoreError::BadComponent(
                    "rebind cannot add a demand charge mid-stream: earlier months \
                     were never metered"
                        .into(),
                ));
            }
        }
        match (&self.kernel.powerband, &kernel.powerband) {
            (_, None) => self.band = None,
            (Some(old), Some(new)) => {
                if old.upper != new.upper || old.lower != new.lower {
                    return Err(CoreError::BadComponent(
                        "rebind supports powerband penalty changes only: moving the \
                         corridor would re-classify accrued excursions"
                            .into(),
                    ));
                }
            }
            (None, Some(_)) => {
                return Err(CoreError::BadComponent(
                    "rebind cannot add a powerband mid-stream: earlier excursions \
                     were never measured"
                        .into(),
                ));
            }
        }
        // Emergency clauses and the service fee apply at finalize; any
        // change (including add/remove) is sound.
        self.kernel = kernel;
        Ok(())
    }

    /// Splice a new revision into the stream *prospectively*: close the
    /// books on the current kernel's slice at `at` (which must be the next
    /// grid instant, [`BillAccrual::expected_next`]) and continue streaming
    /// under `kernel` — the streaming form of a ledger event taking effect
    /// (see [`ContractLedger::bill_as_of`](crate::ledger::ContractLedger::bill_as_of)).
    ///
    /// Unlike [`BillAccrual::rebind`], *any* delta is allowed — tariff
    /// replacements included — because nothing accrued crosses the
    /// boundary: the closed slice is billed under the old kernel, samples
    /// from `at` on are billed under the new one, and `finalize()` folds
    /// the slices via [`Bill::fold`]. The result is bit-identical to batch
    /// billing each slice separately (demand months and service fees
    /// restart at the boundary, exactly like two separate meters).
    ///
    /// The new kernel must share the old one's calendar and compile
    /// horizon; the open slice must be non-empty (an empty slice bills as
    /// nothing and would silently disagree with the ledger's slicing);
    /// streams with emergency event windows are rejected — event penalties
    /// are assessed per window, not per slice, so they cannot be spliced.
    pub fn rebind_at(&mut self, kernel: Arc<CompiledContract>, at: SimTime) -> Result<()> {
        if kernel.horizon() != self.kernel.horizon() || kernel.calendar() != self.kernel.calendar()
        {
            return Err(CoreError::BadComponent(
                "rebind_at requires the same calendar and compile horizon".into(),
            ));
        }
        if !self.windows.is_empty() {
            return Err(CoreError::BadComponent(
                "rebind_at cannot splice a stream with emergency event windows: \
                 penalties are assessed per window, not per revision slice"
                    .into(),
            ));
        }
        let expected = self.expected_next();
        if at != expected {
            return Err(CoreError::BadSeries(format!(
                "rebind_at({at}) must land on the next grid instant {expected}: \
                 a revision takes effect between samples, never inside one"
            )));
        }
        let closed = self.finalize_open()?;
        let mut fresh = BillAccrual::new(kernel, at, Duration::from_secs(self.step))?;
        fresh.closed_slices = std::mem::take(&mut self.closed_slices);
        fresh.closed_slices.push(closed);
        *self = fresh;
        Ok(())
    }

    /// Serialize the accrual's state for checkpointing. The snapshot is a
    /// plain serde struct — pair it with any format; restoring against a
    /// kernel with the same fingerprint resumes the stream bit-exactly
    /// ([`BillAccrual::restore`]).
    pub fn snapshot(&self) -> AccrualSnapshot {
        AccrualSnapshot {
            fingerprint: self.kernel.fingerprint().0,
            start: self.start,
            step: self.step,
            n: self.n,
            last_kw: self.last_kw,
            tariffs: self
                .tariffs
                .iter()
                .map(|t| match t {
                    TariffAccrual::Strip { dollars, .. } => TariffSnapshot::Strip(*dollars),
                    TariffAccrual::Block {
                        cur_kwh,
                        have,
                        total,
                        ..
                    } => TariffSnapshot::Block(*cur_kwh, *have, *total),
                })
                .collect(),
            demand: self.demand.as_ref().map(|d| DemandSnapshot {
                chunk_sum: d.chunk_sum,
                chunk_count: d.chunk_count,
                chunk_idx: d.chunk_idx,
                peak: d.peak.clone(),
                closed: d.closed.clone(),
            }),
            band: self.band.clone(),
            windows: self.windows.clone(),
            closed_slices: self.closed_slices.clone(),
        }
    }

    /// Rebuild an accrual from a snapshot and the kernel it was taken
    /// against (validated by fingerprint). The restored stream continues
    /// bit-identically to the original: cursor positions are re-derived
    /// from the grid, so only the numeric state travels.
    pub fn restore(kernel: Arc<CompiledContract>, snap: &AccrualSnapshot) -> Result<BillAccrual> {
        if kernel.fingerprint().0 != snap.fingerprint {
            return Err(CoreError::BadComponent(format!(
                "snapshot was taken against kernel {:016x}, not {:016x}",
                snap.fingerprint,
                kernel.fingerprint().0
            )));
        }
        let mut acc = BillAccrual::with_events(
            kernel,
            SimTime::from_secs(snap.start),
            Duration::from_secs(snap.step),
            &IntervalSet::empty(),
        )?;
        if snap.tariffs.len() != acc.tariffs.len() {
            return Err(CoreError::BadComponent(
                "snapshot tariff count does not match the kernel".into(),
            ));
        }
        acc.n = snap.n;
        acc.last_kw = snap.last_kw;
        // Seconds of the last pushed sample (grid position of all cursors).
        let t_last = snap.start + snap.n.saturating_sub(1) * snap.step;
        let starts: &[u64] = &acc.kernel.month_starts;
        let caught_up = snap.n > 0;
        let kernel = Arc::clone(&acc.kernel);
        for ((state, s), slot) in acc
            .tariffs
            .iter_mut()
            .zip(&snap.tariffs)
            .zip(&kernel.tariffs)
        {
            match (state, s) {
                (
                    TariffAccrual::Strip {
                        dollars,
                        seg,
                        replay,
                    },
                    TariffSnapshot::Strip(d),
                ) => {
                    *dollars = *d;
                    // Cursor positions re-derive from the grid: re-seek to
                    // the segment of the last pushed sample; push_next then
                    // advances monotonically from there. No map replay on
                    // restore — the cursor path is bit-identical anyway.
                    *replay = None;
                    if caught_up {
                        if let LoweredTariff::Strip(tl) = &slot.lowered {
                            *seg = tl.breaks.partition_point(|b| *b <= t_last) - 1;
                        }
                    }
                }
                (
                    TariffAccrual::Block {
                        bi,
                        cur_kwh,
                        have,
                        total,
                    },
                    TariffSnapshot::Block(c, h, tt),
                ) => {
                    *cur_kwh = *c;
                    *have = *h;
                    *total = *tt;
                    if caught_up {
                        *bi = starts.partition_point(|b| *b <= t_last);
                    }
                }
                _ => {
                    return Err(CoreError::BadComponent(
                        "snapshot tariff kinds do not match the kernel".into(),
                    ));
                }
            }
        }
        match (&mut acc.demand, &snap.demand, &acc.kernel.demand_charge) {
            (Some(d), Some(ds), Some(_)) => {
                d.chunk_sum = ds.chunk_sum;
                d.chunk_count = ds.chunk_count;
                d.chunk_idx = ds.chunk_idx;
                d.peak = ds.peak.clone();
                d.closed = ds.closed.clone();
                if caught_up {
                    d.bi = starts.partition_point(|b| *b <= t_last);
                    d.month = acc.kernel.first_month + d.bi as u64;
                    d.month_i0 = if d.bi > starts.partition_point(|b| *b <= snap.start) {
                        (starts[d.bi - 1] - snap.start) / snap.step
                    } else {
                        0
                    };
                }
            }
            (None, None, None) => {}
            _ => {
                return Err(CoreError::BadComponent(
                    "snapshot demand state does not match the kernel".into(),
                ));
            }
        }
        match (&mut acc.band, &snap.band) {
            (Some(b), Some(bs)) => *b = bs.clone(),
            (None, None) => {}
            _ => {
                return Err(CoreError::BadComponent(
                    "snapshot powerband state does not match the kernel".into(),
                ));
            }
        }
        acc.windows = snap.windows.clone();
        acc.closed_slices = snap.closed_slices.clone();
        Ok(acc)
    }

    /// Approximate heap + inline bytes this accrual holds — the fleet's
    /// bytes-per-meter statistic.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<BillAccrual>();
        bytes += self.tariffs.len() * std::mem::size_of::<TariffAccrual>();
        if let Some(d) = &self.demand {
            bytes += d.closed.capacity() * std::mem::size_of::<DemandAssessment>();
            if let PeakState::TopK(c) = &d.peak {
                bytes += c.capacity() * std::mem::size_of::<(u64, f64)>();
            }
        }
        bytes += self.windows.capacity() * std::mem::size_of::<WindowAccrual>();
        bytes
    }
}

/// Monotone segment-cursor advance: `seg` points at the segment containing
/// the previous sample; move it forward while the next break is at or
/// before `t`.
fn advance_seg(seg: &mut usize, breaks: &[u64], t: u64) {
    while let Some(&b) = breaks.get(*seg + 1) {
        if b <= t {
            *seg += 1;
        } else {
            break;
        }
    }
}
