//! The billing engine: price a metered load series under any contract.
//!
//! The engine turns the typology into money. Each component contributes a
//! line item; the bill exposes the decomposition the paper's economics turn
//! on — in particular the *demand-charge share* of the total, which \[34\]
//! (cited in §2) showed grows with the peak-to-average ratio.

use crate::compiled::CompiledContract;
use crate::contract::Contract;
use crate::typology::ContractComponentKind;
use crate::{CoreError, Result};
use hpcgrid_timeseries::intervals::IntervalSet;
use hpcgrid_timeseries::par::try_par_map;
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_units::{Calendar, Money};
use serde::{Deserialize, Serialize};

/// One line of a bill.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineItem {
    /// Human-readable label.
    pub label: String,
    /// The typology kind that produced this item (`None` for service fees).
    pub kind: Option<ContractComponentKind>,
    /// Amount charged.
    pub amount: Money,
}

/// A computed bill.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bill {
    /// Contract name.
    pub contract: String,
    /// Line items in component order.
    pub items: Vec<LineItem>,
}

impl Bill {
    /// Total amount.
    pub fn total(&self) -> Money {
        self.items.iter().map(|i| i.amount).sum()
    }

    /// Sum of items in the kWh (tariff) domain.
    pub fn energy_cost(&self) -> Money {
        self.sum_branch(crate::typology::TypologyBranch::TariffsKwh)
    }

    /// Sum of items in the kW (demand) domain.
    pub fn demand_cost(&self) -> Money {
        self.sum_branch(crate::typology::TypologyBranch::DemandChargesKw)
    }

    fn sum_branch(&self, branch: crate::typology::TypologyBranch) -> Money {
        self.items
            .iter()
            .filter(|i| i.kind.is_some_and(|k| k.branch() == branch))
            .map(|i| i.amount)
            .sum()
    }

    /// Demand-domain share of the total bill (0 if the total is zero).
    pub fn demand_share(&self) -> f64 {
        let total = self.total().as_dollars();
        if total <= 0.0 {
            return 0.0;
        }
        self.demand_cost().as_dollars() / total
    }

    /// The item for a specific kind, if present.
    pub fn item_for(&self, kind: ContractComponentKind) -> Option<&LineItem> {
        self.items.iter().find(|i| i.kind == Some(kind))
    }

    /// Fold several bills into one composite bill, in iteration order —
    /// the splice rule behind [`AsOfBill::fold`](crate::ledger::AsOfBill)
    /// and the as-of accrual
    /// ([`BillAccrual::rebind_at`](crate::accrual::BillAccrual::rebind_at)).
    ///
    /// Line items with an identical `(label, kind)` pair are summed into
    /// one item at the first occurrence's position; items whose labels
    /// differ (e.g. per-slice demand-month counts) are appended in order,
    /// so nothing is ever collapsed across genuinely different line items.
    /// The contract name is taken from the first bill. Folding a single
    /// bill is the identity. Errors on an empty iterator.
    pub fn fold<'a, I: IntoIterator<Item = &'a Bill>>(bills: I) -> Result<Bill> {
        let mut iter = bills.into_iter();
        let first = iter
            .next()
            .ok_or_else(|| CoreError::BadSeries("cannot fold an empty set of bills".into()))?;
        let mut folded = first.clone();
        for bill in iter {
            for item in &bill.items {
                match folded
                    .items
                    .iter_mut()
                    .find(|i| i.label == item.label && i.kind == item.kind)
                {
                    Some(existing) => existing.amount += item.amount,
                    None => folded.items.push(item.clone()),
                }
            }
        }
        Ok(folded)
    }

    /// Render a human-readable bill.
    pub fn render(&self) -> String {
        let mut out = format!("Bill for contract '{}'\n", self.contract);
        for item in &self.items {
            out.push_str(&format!(
                "  {:<40} {:>15}\n",
                item.label,
                item.amount.to_string()
            ));
        }
        out.push_str(&format!(
            "  {:<40} {:>15}\n",
            "TOTAL",
            self.total().to_string()
        ));
        out
    }
}

/// Numerical fidelity of billing evaluation.
///
/// `BitExact` (the default) replicates the interpreter's floating-point
/// accumulation order exactly, so compiled bills are bit-identical to
/// [`BillingEngine::bill`]. `Fast` opts into the vectorized kernel path
/// (8-lane pairwise summation, branchless lane-max demand scans, pairwise
/// block-tariff bucket sums): totals stay within a relative tolerance of
/// `1e-12` of the bit-exact path for horizons up to a year (demand-charge
/// peaks are *identical* whenever the demand interval is no coarser than the
/// load's step), at ≥1.5× the bit-exact throughput in release builds. See
/// the "precision modes" section of the README and the invariants table in
/// `docs/ARCHITECTURE.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Precision {
    /// Bit-identical to the interpreted path (the default).
    #[default]
    BitExact,
    /// Vectorized pairwise summation within a `1e-12` relative tolerance.
    Fast,
}

impl Precision {
    /// Environment variable consulted by [`Precision::from_env`]
    /// (`HPCGRID_PRECISION=fast` forces the fast path process-wide; the CI
    /// tolerance-regression leg sets it across the core test suite).
    pub const ENV_VAR: &'static str = "HPCGRID_PRECISION";

    /// Stable label used in scenario specs, bench JSON, and the env override.
    pub fn label(self) -> &'static str {
        match self {
            Precision::BitExact => "bit_exact",
            Precision::Fast => "fast",
        }
    }

    /// The precision selected by [`Precision::ENV_VAR`], defaulting to
    /// [`Precision::BitExact`] when the variable is unset or does not parse
    /// (billing must never fail on a misspelled override; the safe default
    /// is the exact path).
    pub fn from_env() -> Precision {
        match std::env::var(Self::ENV_VAR) {
            Ok(v) => v.parse().unwrap_or_default(),
            Err(_) => Precision::BitExact,
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Precision> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fast" => Ok(Precision::Fast),
            "bit_exact" | "bitexact" | "bit-exact" | "exact" => Ok(Precision::BitExact),
            other => Err(CoreError::BadComponent(format!(
                "unknown precision '{other}' (expected 'bit_exact' or 'fast')"
            ))),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The billing engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BillingEngine {
    calendar: Calendar,
    precision: Precision,
}

impl BillingEngine {
    /// An engine billing under `calendar`, at the precision selected by the
    /// `HPCGRID_PRECISION` environment variable ([`Precision::BitExact`]
    /// when unset).
    pub fn new(calendar: Calendar) -> BillingEngine {
        BillingEngine {
            calendar,
            precision: Precision::from_env(),
        }
    }

    /// The same engine with an explicit [`Precision`], overriding the env
    /// default.
    pub fn with_precision(mut self, precision: Precision) -> BillingEngine {
        self.precision = precision;
        self
    }

    /// The precision this engine bills at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The calendar in use.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// Number of billing months touched by the load (for monthly fees).
    fn months_covered(&self, load: &PowerSeries) -> u64 {
        if load.is_empty() {
            return 0;
        }
        let first = self.calendar.billing_month(load.start());
        let last_t = load.end() - hpcgrid_units::Duration::from_secs(1);
        let last = self.calendar.billing_month(last_t);
        last - first + 1
    }

    /// Bill a load under a contract (no emergency events).
    pub fn bill(&self, contract: &Contract, load: &PowerSeries) -> Result<Bill> {
        self.bill_with_events(contract, load, &IntervalSet::empty())
    }

    /// Lower a contract into a [`CompiledContract`] for loads inside
    /// `[start, end)`. Bills computed through it are bit-identical to
    /// [`BillingEngine::bill`]; compilation amortizes after about two bills
    /// per contract, or one bill over a month-scale series.
    pub fn compile(
        &self,
        contract: &Contract,
        start: hpcgrid_units::SimTime,
        end: hpcgrid_units::SimTime,
    ) -> Result<CompiledContract> {
        Ok(
            CompiledContract::compile(&self.calendar, contract, start, end)?
                .with_precision(self.precision),
        )
    }

    /// Bill many loads under one contract (no emergency events): the
    /// contract is compiled once over the union of the load horizons, then
    /// evaluation fans out across threads. Bills are returned in load order
    /// and are bit-identical to billing each load with [`BillingEngine::bill`].
    ///
    /// ```
    /// use hpcgrid_core::billing::BillingEngine;
    /// use hpcgrid_core::contract::Contract;
    /// use hpcgrid_core::tariff::Tariff;
    /// use hpcgrid_timeseries::series::Series;
    /// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
    ///
    /// let contract = Contract::builder("flat")
    ///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.05)))
    ///     .build()?;
    /// let engine = BillingEngine::new(Calendar::default());
    ///
    /// // Three day-long loads at 1, 2, and 3 MW.
    /// let loads: Vec<_> = (1..=3)
    ///     .map(|mw| {
    ///         Series::constant(
    ///             SimTime::from_days(mw),
    ///             Duration::from_hours(1.0),
    ///             Power::from_megawatts(mw as f64),
    ///             24,
    ///         )
    ///     })
    ///     .collect::<Result<_, _>>()?;
    ///
    /// let bills = engine.bill_many(&contract, &loads)?;
    /// for (mw, bill) in (1..=3).zip(&bills) {
    ///     // mw MW · 24 h · 0.05 $/kWh, and identical to the one-load path.
    ///     let expected = mw as f64 * 1_000.0 * 24.0 * 0.05;
    ///     assert!((bill.total().as_dollars() - expected).abs() < 1e-9);
    ///     assert_eq!(bill, &engine.bill(&contract, &loads[mw - 1])?);
    /// }
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn bill_many(&self, contract: &Contract, loads: &[PowerSeries]) -> Result<Vec<Bill>> {
        self.bill_many_with_events(contract, loads, &IntervalSet::empty())
    }

    /// [`BillingEngine::bill_many`] with emergency event windows, assessed
    /// against every load.
    pub fn bill_many_with_events(
        &self,
        contract: &Contract,
        loads: &[PowerSeries],
        events: &IntervalSet,
    ) -> Result<Vec<Bill>> {
        if loads.is_empty() {
            return Ok(Vec::new());
        }
        let mut start = None;
        let mut end = None;
        for load in loads {
            if load.is_empty() {
                return Err(CoreError::BadSeries("load series is empty".into()));
            }
            start = Some(start.map_or(load.start(), |s: hpcgrid_units::SimTime| {
                s.min(load.start())
            }));
            end = Some(end.map_or(load.end(), |e: hpcgrid_units::SimTime| e.max(load.end())));
        }
        let (start, end) = (
            start.expect("non-empty loads"),
            end.expect("non-empty loads"),
        );
        let compiled = CompiledContract::compile(&self.calendar, contract, start, end)?
            .with_precision(self.precision);
        try_par_map(loads, |load| compiled.bill_with_events(load, events))
            .map_err(|e| CoreError::BatchPanic(e.to_string()))?
            .into_iter()
            .collect()
    }

    /// Bill a load under a contract, assessing the emergency clause against
    /// the given event windows.
    pub fn bill_with_events(
        &self,
        contract: &Contract,
        load: &PowerSeries,
        events: &IntervalSet,
    ) -> Result<Bill> {
        if load.is_empty() {
            return Err(CoreError::BadSeries("load series is empty".into()));
        }
        if self.precision == Precision::Fast {
            // The fast kernels live on the compiled representation; a
            // one-load horizon compiles in microseconds and the segment-map
            // cache makes repeat bills of the same geometry cheaper still.
            return self
                .compile(contract, load.start(), load.end())?
                .bill_with_events(load, events);
        }
        let mut items = Vec::new();
        for (i, tariff) in contract.tariffs.iter().enumerate() {
            let amount = tariff.cost(&self.calendar, load)?;
            items.push(LineItem {
                label: format!("{} tariff #{}", tariff.kind().label(), i + 1),
                kind: Some(tariff.kind()),
                amount,
            });
        }
        if let Some(dc) = &contract.demand_charge {
            let assessments = dc.assess(&self.calendar, load)?;
            let amount = assessments.iter().map(|a| a.charge).sum();
            items.push(LineItem {
                label: format!("Demand charges ({} billing months)", assessments.len()),
                kind: Some(ContractComponentKind::DemandCharge),
                amount,
            });
        }
        if let Some(pb) = &contract.powerband {
            let report = pb.evaluate(load)?;
            items.push(LineItem {
                label: format!(
                    "Powerband excursions ({} intervals)",
                    report.violations.len()
                ),
                kind: Some(ContractComponentKind::Powerband),
                amount: report.penalty_cost,
            });
        }
        if let Some(em) = &contract.emergency {
            let assessment = em.assess(load, events)?;
            items.push(LineItem {
                label: format!(
                    "Emergency DR penalties ({} events)",
                    assessment.events.len()
                ),
                kind: Some(ContractComponentKind::EmergencyDr),
                amount: assessment.total_penalty,
            });
        }
        if contract.monthly_fee > Money::ZERO {
            let months = self.months_covered(load);
            items.push(LineItem {
                label: format!("Service fee ({months} months)"),
                kind: None,
                amount: contract.monthly_fee * months as f64,
            });
        }
        Ok(Bill {
            contract: contract.name.clone(),
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand_charge::DemandCharge;
    use crate::powerband::Powerband;
    use crate::tariff::Tariff;
    use hpcgrid_timeseries::series::Series;
    use hpcgrid_units::{DemandPrice, Duration, EnergyPrice, Power, SimTime};

    fn engine() -> BillingEngine {
        BillingEngine::new(Calendar::default())
    }

    fn flat_load(hours: usize, mw: f64) -> PowerSeries {
        Series::constant(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            Power::from_megawatts(mw),
            hours,
        )
        .unwrap()
    }

    fn full_contract() -> Contract {
        Contract::builder("full")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .powerband(Powerband::ceiling(
                Power::from_megawatts(12.0),
                EnergyPrice::per_kilowatt_hour(0.50),
            ))
            .monthly_fee(Money::from_dollars(1_000.0))
            .build()
            .unwrap()
    }

    #[test]
    fn bill_decomposes_into_line_items() {
        let bill = engine()
            .bill(&full_contract(), &flat_load(24, 10.0))
            .unwrap();
        // Energy: 240 MWh × $80/MWh = $19 200.
        let energy = bill
            .item_for(ContractComponentKind::FixedTariff)
            .unwrap()
            .amount;
        assert!((energy.as_dollars() - 19_200.0).abs() < 1e-6);
        // Demand: 10 MW × $12/kW = $120 000.
        let demand = bill
            .item_for(ContractComponentKind::DemandCharge)
            .unwrap()
            .amount;
        assert!((demand.as_dollars() - 120_000.0).abs() < 1e-6);
        // Band: compliant, zero.
        let band = bill
            .item_for(ContractComponentKind::Powerband)
            .unwrap()
            .amount;
        assert_eq!(band, Money::ZERO);
        // Fee: one month.
        let fee = bill.items.iter().find(|i| i.kind.is_none()).unwrap().amount;
        assert_eq!(fee.as_dollars(), 1_000.0);
        // Total adds up.
        assert!((bill.total().as_dollars() - (19_200.0 + 120_000.0 + 1_000.0)).abs() < 1e-6);
    }

    #[test]
    fn demand_share_matches_decomposition() {
        let bill = engine()
            .bill(&full_contract(), &flat_load(24, 10.0))
            .unwrap();
        let expected = 120_000.0 / (19_200.0 + 120_000.0 + 1_000.0);
        assert!((bill.demand_share() - expected).abs() < 1e-9);
        assert_eq!(bill.energy_cost().as_dollars(), 19_200.0);
        assert_eq!(bill.demand_cost().as_dollars(), 120_000.0);
    }

    #[test]
    fn peakier_load_same_energy_costs_more() {
        // The paper's core demand-charge economics: same kWh, higher peak.
        let flat = flat_load(24, 10.0);
        let mut peaky_values = vec![Power::from_megawatts(10.0); 24];
        peaky_values[10] = Power::from_megawatts(20.0);
        peaky_values[11] = Power::ZERO;
        let peaky = Series::new(SimTime::EPOCH, Duration::from_hours(1.0), peaky_values).unwrap();
        assert!(
            (flat.total_energy().as_kilowatt_hours() - peaky.total_energy().as_kilowatt_hours())
                .abs()
                < 1e-9
        );
        let c = Contract::builder("dc-only")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .build()
            .unwrap();
        let e = engine();
        let b_flat = e.bill(&c, &flat).unwrap();
        let b_peaky = e.bill(&c, &peaky).unwrap();
        assert!(b_peaky.total() > b_flat.total());
        assert!(b_peaky.demand_share() > b_flat.demand_share());
    }

    #[test]
    fn multi_month_fee() {
        // 40 days = 2 billing months (Jan + Feb).
        let bill = engine()
            .bill(&full_contract(), &flat_load(40 * 24, 5.0))
            .unwrap();
        let fee = bill.items.iter().find(|i| i.kind.is_none()).unwrap().amount;
        assert_eq!(fee.as_dollars(), 2_000.0);
    }

    #[test]
    fn empty_load_rejected() {
        let empty = PowerSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap();
        assert!(engine().bill(&full_contract(), &empty).is_err());
    }

    #[test]
    fn emergency_events_flow_into_bill() {
        use crate::emergency::EmergencyDrClause;
        use hpcgrid_timeseries::intervals::Interval;
        let c = Contract::builder("with-emergency")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .emergency(EmergencyDrClause::reference(Power::from_megawatts(5.0)))
            .build()
            .unwrap();
        let load = flat_load(24, 10.0); // never sheds
        let events = IntervalSet::from_intervals(vec![Interval::new(
            SimTime::from_hours(10.0),
            SimTime::from_hours(12.0),
        )]);
        let bill = engine().bill_with_events(&c, &load, &events).unwrap();
        let penalty = bill
            .item_for(ContractComponentKind::EmergencyDr)
            .unwrap()
            .amount;
        assert_eq!(penalty.as_dollars(), 50_000.0);
    }

    #[test]
    fn bill_is_additive_over_components() {
        // Billing the same load under (tariff) and (tariff+DC) differs by
        // exactly the DC amount.
        let load = flat_load(24, 10.0);
        let t_only = Contract::builder("t")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .build()
            .unwrap();
        let t_dc = Contract::builder("t+dc")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .build()
            .unwrap();
        let e = engine();
        let b1 = e.bill(&t_only, &load).unwrap();
        let b2 = e.bill(&t_dc, &load).unwrap();
        let dc = b2
            .item_for(ContractComponentKind::DemandCharge)
            .unwrap()
            .amount;
        assert!(((b2.total() - b1.total()).as_dollars() - dc.as_dollars()).abs() < 1e-9);
    }

    #[test]
    fn bill_many_matches_per_load_bills() {
        let e = engine();
        let c = full_contract();
        let loads: Vec<PowerSeries> = (1..=6).map(|i| flat_load(40 * 24, i as f64)).collect();
        let batch = e.bill_many(&c, &loads).unwrap();
        assert_eq!(batch.len(), loads.len());
        for (load, bill) in loads.iter().zip(&batch) {
            assert_eq!(e.bill(&c, load).unwrap(), *bill);
        }
    }

    #[test]
    fn bill_many_empty_batch_and_empty_load() {
        let e = engine();
        let c = full_contract();
        assert!(e.bill_many(&c, &[]).unwrap().is_empty());
        let empty = PowerSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap();
        assert!(e.bill_many(&c, &[flat_load(24, 1.0), empty]).is_err());
    }

    #[test]
    fn bill_many_with_events_matches() {
        use crate::emergency::EmergencyDrClause;
        use hpcgrid_timeseries::intervals::Interval;
        let c = Contract::builder("em")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .emergency(EmergencyDrClause::reference(Power::from_megawatts(5.0)))
            .build()
            .unwrap();
        let events = IntervalSet::from_intervals(vec![Interval::new(
            SimTime::from_hours(10.0),
            SimTime::from_hours(12.0),
        )]);
        let e = engine();
        let loads = vec![flat_load(24, 10.0), flat_load(24, 2.0)];
        let batch = e.bill_many_with_events(&c, &loads, &events).unwrap();
        for (load, bill) in loads.iter().zip(&batch) {
            assert_eq!(e.bill_with_events(&c, load, &events).unwrap(), *bill);
        }
    }

    #[test]
    fn precision_labels_parse_and_default() {
        assert_eq!(Precision::default(), Precision::BitExact);
        assert_eq!("fast".parse::<Precision>().unwrap(), Precision::Fast);
        assert_eq!(" FAST ".parse::<Precision>().unwrap(), Precision::Fast);
        assert_eq!(
            "bit_exact".parse::<Precision>().unwrap(),
            Precision::BitExact
        );
        assert_eq!(
            "Bit-Exact".parse::<Precision>().unwrap(),
            Precision::BitExact
        );
        assert!("turbo".parse::<Precision>().is_err());
        assert_eq!(Precision::Fast.label(), "fast");
        assert_eq!(Precision::BitExact.to_string(), "bit_exact");
    }

    #[test]
    fn engine_precision_knob_round_trips() {
        let e = engine().with_precision(Precision::Fast);
        assert_eq!(e.precision(), Precision::Fast);
        // Fast bills agree with exact bills within the documented relative
        // tolerance (and exactly, for this small bit-exactly-summable load).
        let exact = engine().with_precision(Precision::BitExact);
        let load = flat_load(40 * 24, 7.0);
        let c = full_contract();
        let a = exact.bill(&c, &load).unwrap().total().as_dollars();
        let b = e.bill(&c, &load).unwrap().total().as_dollars();
        assert!((a - b).abs() / a.abs().max(1.0) <= 1e-12, "{a} vs {b}");
    }

    #[test]
    fn fast_engine_compiled_kernel_inherits_precision() {
        let e = engine().with_precision(Precision::Fast);
        let compiled = e
            .compile(&full_contract(), SimTime::EPOCH, SimTime::from_days(30))
            .unwrap();
        assert_eq!(compiled.precision(), Precision::Fast);
    }

    #[test]
    fn render_contains_items_and_total() {
        let bill = engine()
            .bill(&full_contract(), &flat_load(24, 10.0))
            .unwrap();
        let s = bill.render();
        assert!(s.contains("TOTAL"));
        assert!(s.contains("Demand charges"));
        assert!(s.contains("full"));
    }
}
