//! Stable fingerprints of contract components.
//!
//! Incremental recompilation ([`crate::compiled::CompiledContract::patch`])
//! needs to decide whether a replacement component is *the same* component —
//! in which case its cached lowered piece can be reused — without holding the
//! original around for a deep comparison. A [`ComponentFingerprint`] is a
//! 64-bit FNV-1a digest over the component's canonical serialized form
//! (object keys sorted, floats hashed by bit pattern), so equal fingerprints
//! mean the serialized components are identical and therefore lower to
//! identical pieces.
//!
//! Dynamic tariffs get a dedicated fast path: their dominant payload is the
//! price strip (thousands of `f64`s), which is absorbed directly from the
//! raw values instead of materializing a serde value tree, keeping
//! fingerprinting O(strip) with no allocation. The digest is defined by this
//! crate, not by `std::hash` (whose output is explicitly unstable across
//! releases), so fingerprints are usable as cross-process sweep-cache keys —
//! e.g. in `hpcgrid-engine` scenario specs that carry a base-contract hash
//! plus a delta label.

use crate::contract::Contract;
use crate::demand_charge::DemandCharge;
use crate::emergency::EmergencyDrClause;
use crate::powerband::Powerband;
use crate::tariff::Tariff;
use hpcgrid_units::Money;
use serde::{Serialize, Value};
use std::fmt;

/// A stable 64-bit fingerprint of one contract component (or of a whole
/// contract), printable as 16 hex digits.
///
/// Equal fingerprints are treated as "same component" by the incremental
/// recompiler; the collision probability of the 64-bit digest is negligible
/// at sweep scale (~2⁻⁶⁴ per pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentFingerprint(pub u64);

impl ComponentFingerprint {
    /// Hex rendering, usable as a cache-key string.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for ComponentFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001b3;

/// Incremental 64-bit FNV-1a.
#[derive(Debug, Clone)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> ComponentFingerprint {
        ComponentFingerprint(self.0)
    }
}

/// Absorb a serde value in canonical form: map keys sorted, every node
/// tagged, strings and sequences length-prefixed, floats by bit pattern.
fn absorb_value(h: &mut Fnv64, v: &Value) {
    match v {
        Value::Null => h.update(b"n"),
        Value::Bool(b) => h.update(if *b { b"T" } else { b"F" }),
        Value::Int(i) => {
            h.update(b"i");
            h.update(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            h.update(b"u");
            h.update(&u.to_le_bytes());
        }
        Value::Float(f) => {
            h.update(b"f");
            h.update(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            h.update(b"s");
            h.update(&(s.len() as u64).to_le_bytes());
            h.update(s.as_bytes());
        }
        Value::Seq(items) => {
            h.update(b"[");
            h.update(&(items.len() as u64).to_le_bytes());
            for item in items {
                absorb_value(h, item);
            }
        }
        Value::Map(entries) => {
            let mut sorted: Vec<&(String, Value)> = entries.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            h.update(b"{");
            h.update(&(sorted.len() as u64).to_le_bytes());
            for (k, val) in sorted {
                h.update(b"k");
                h.update(&(k.len() as u64).to_le_bytes());
                h.update(k.as_bytes());
                absorb_value(h, val);
            }
        }
    }
}

/// Fingerprint any serializable component through its canonical serialized
/// form.
pub fn of_component<T: Serialize>(component: &T) -> ComponentFingerprint {
    let mut h = Fnv64::new();
    absorb_value(&mut h, &component.to_value());
    h.finish()
}

/// Fingerprint a tariff component.
///
/// Dynamic tariffs are absorbed field-by-field — strip axis as integers,
/// strip values / markup / fallback by `f64` bit pattern — so fingerprinting
/// a market-price revision never allocates a value tree for the strip. All
/// other tariff kinds go through [`of_component`].
pub fn of_tariff(t: &Tariff) -> ComponentFingerprint {
    match t {
        Tariff::Dynamic(d) => {
            let mut h = Fnv64::new();
            h.update(b"Dynamic");
            h.update(&d.prices.start().as_secs().to_le_bytes());
            h.update(&d.prices.step().as_secs().to_le_bytes());
            h.update(&(d.prices.len() as u64).to_le_bytes());
            for p in d.prices.values() {
                h.update(&p.as_dollars_per_kilowatt_hour().to_bits().to_le_bytes());
            }
            h.update(
                &d.markup
                    .as_dollars_per_kilowatt_hour()
                    .to_bits()
                    .to_le_bytes(),
            );
            h.update(
                &d.fallback
                    .as_dollars_per_kilowatt_hour()
                    .to_bits()
                    .to_le_bytes(),
            );
            h.finish()
        }
        other => of_component(other),
    }
}

/// Fingerprint a whole contract: the name plus every component's
/// fingerprint, folded in component order. This is the natural
/// `base_contract` key for `hpcgrid-engine` scenario specs built from a
/// base contract plus a delta.
pub fn of_contract(c: &Contract) -> ComponentFingerprint {
    let fps: Vec<ComponentFingerprint> = c.tariffs.iter().map(of_tariff).collect();
    of_contract_parts(
        &c.name,
        &fps,
        &c.demand_charge,
        &c.powerband,
        &c.emergency,
        c.monthly_fee,
    )
}

/// The contract digest from already-computed tariff fingerprints — the
/// compiled kernel caches per-tariff fingerprints, so its whole-contract
/// fingerprint never re-walks strip payloads.
pub(crate) fn of_contract_parts(
    name: &str,
    tariffs: &[ComponentFingerprint],
    demand_charge: &Option<DemandCharge>,
    powerband: &Option<Powerband>,
    emergency: &Option<EmergencyDrClause>,
    monthly_fee: Money,
) -> ComponentFingerprint {
    let mut h = Fnv64::new();
    h.update(b"contract");
    h.update(&(name.len() as u64).to_le_bytes());
    h.update(name.as_bytes());
    h.update(&(tariffs.len() as u64).to_le_bytes());
    for fp in tariffs {
        h.update(&fp.0.to_le_bytes());
    }
    h.update(&of_component(demand_charge).0.to_le_bytes());
    h.update(&of_component(powerband).0.to_le_bytes());
    h.update(&of_component(emergency).0.to_le_bytes());
    h.update(&monthly_fee.as_dollars().to_bits().to_le_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tariff::DynamicTariff;
    use hpcgrid_timeseries::series::{PriceSeries, Series};
    use hpcgrid_units::{Duration, EnergyPrice, SimTime};

    fn strip(values: &[f64]) -> PriceSeries {
        Series::new(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            values
                .iter()
                .map(|p| EnergyPrice::per_kilowatt_hour(*p))
                .collect(),
        )
        .unwrap()
    }

    fn dynamic(values: &[f64]) -> Tariff {
        Tariff::Dynamic(DynamicTariff {
            prices: strip(values),
            markup: EnergyPrice::per_kilowatt_hour(0.01),
            fallback: EnergyPrice::per_kilowatt_hour(0.09),
        })
    }

    #[test]
    fn equal_components_equal_fingerprints() {
        let a = Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07));
        let b = Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07));
        assert_eq!(of_tariff(&a), of_tariff(&b));
        assert_eq!(
            of_tariff(&dynamic(&[0.1, 0.2])),
            of_tariff(&dynamic(&[0.1, 0.2]))
        );
    }

    #[test]
    fn changed_components_change_fingerprints() {
        let base = dynamic(&[0.1, 0.2, 0.3]);
        assert_ne!(of_tariff(&base), of_tariff(&dynamic(&[0.1, 0.2, 0.31])));
        assert_ne!(
            of_tariff(&Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07))),
            of_tariff(&Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
        );
    }

    #[test]
    fn tariff_kinds_do_not_collide() {
        // A fixed tariff and a 1-sample dynamic strip with the same number
        // must not fingerprint identically.
        let fixed = Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07));
        assert_ne!(of_tariff(&fixed), of_tariff(&dynamic(&[0.07])));
    }

    #[test]
    fn contract_fingerprint_tracks_every_component() {
        use crate::demand_charge::DemandCharge;
        use hpcgrid_units::{DemandPrice, Money};
        let base = Contract::builder("fp")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .monthly_fee(Money::from_dollars(100.0))
            .build()
            .unwrap();
        let same = base.clone();
        assert_eq!(of_contract(&base), of_contract(&same));
        let mut renamed = base.clone();
        renamed.name = "fp2".into();
        assert_ne!(of_contract(&base), of_contract(&renamed));
        let mut refee = base.clone();
        refee.monthly_fee = Money::from_dollars(101.0);
        assert_ne!(of_contract(&base), of_contract(&refee));
        let mut retariff = base;
        retariff.tariffs[0] = Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08));
        assert_ne!(of_contract(&retariff), of_contract(&renamed));
    }
}
