//! Site energy-contract reports: the §4 guidance, mechanized.
//!
//! The discussion section's advice to SCs is rule-shaped: focus on energy
//! efficiency when demand charges dominate; honor powerbands with capping;
//! treat dynamic tariffs as an opportunity only if the scheduler acts on
//! them; consider contingency planning as the landscape evolves. This
//! module runs a site's load and contract through the billing engine and
//! emits that advice with the numbers attached.

use crate::billing::{Bill, BillingEngine};
use crate::contract::Contract;
use crate::typology::ContractComponentKind;
use crate::Result;
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_timeseries::stats::{load_stats, LoadStats};
use hpcgrid_units::Calendar;
use serde::Serialize;

/// A single recommendation with its trigger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Recommendation {
    /// Short identifier (stable across versions, for tooling).
    pub code: &'static str,
    /// Human-readable advice.
    pub text: String,
}

/// The full report for one site.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SiteReport {
    /// Site / contract name.
    pub name: String,
    /// Load statistics.
    pub stats: LoadStats,
    /// The computed bill.
    pub bill: Bill,
    /// Rule-based recommendations (§4).
    pub recommendations: Vec<Recommendation>,
}

/// Generate a report for a load under a contract.
pub fn generate(
    name: impl Into<String>,
    contract: &Contract,
    load: &PowerSeries,
    cal: &Calendar,
) -> Result<SiteReport> {
    let stats = load_stats(load).map_err(|e| crate::CoreError::BadSeries(e.to_string()))?;
    let bill = BillingEngine::new(*cal).bill(contract, load)?;
    let mut recs = Vec::new();

    // §4: "SCs should continue to focus on energy efficiency in order to
    // reduce job costs with respect to demand charges and powerbands."
    let demand_share = bill.demand_share();
    if demand_share > 0.25 {
        recs.push(Recommendation {
            code: "efficiency-first",
            text: format!(
                "kW-domain components are {:.0}% of the bill (peak-to-average \
                 {:.2}); energy-efficiency and peak-management measures have \
                 first-order value here.",
                demand_share * 100.0,
                stats.peak_to_average
            ),
        });
    }

    // Powerband compliance.
    if let Some(band) = &contract.powerband {
        let report = band.evaluate(load)?;
        if !report.compliant() {
            recs.push(Recommendation {
                code: "powerband-capping",
                text: format!(
                    "the load left its powerband in {} intervals (penalty {}); \
                     a facility power cap at {} would remove the ceiling-side \
                     excursions.",
                    report.violations.len(),
                    report.penalty_cost,
                    band.upper
                ),
            });
        }
    }

    // Dynamic tariff present but (by assumption of this static report) not
    // acted upon — the survey's §3.4 observation.
    if contract.has(ContractComponentKind::DynamicTariff) {
        recs.push(Recommendation {
            code: "act-on-dynamic-price",
            text: "the contract carries a dynamically variable tariff; unless \
                   the scheduler shifts deferrable work against the price \
                   signal, the exposure is pure risk with no upside."
                .into(),
        });
    }

    // Emergency clause: contingency planning (the paper's future work).
    if contract.has(ContractComponentKind::EmergencyDr) {
        recs.push(Recommendation {
            code: "contingency-plan",
            text: "a mandatory emergency-DR clause is in force; maintain a \
                   staged contingency plan (shift, shed office load, cap, \
                   generators) and rehearse it against grid-stress scenarios."
                .into(),
        });
    }

    // High ramping: the good-neighbor advice.
    if stats.max_ramp_kw_per_hour > stats.mean.as_kilowatts() {
        recs.push(Recommendation {
            code: "good-neighbor",
            text: format!(
                "load ramps up to {:.0} kW/h (mean level {:.0} kW); announcing \
                 large swings (maintenance, benchmarks) to the ESP avoids \
                 imbalance costs and builds the relationship the paper \
                 recommends.",
                stats.max_ramp_kw_per_hour,
                stats.mean.as_kilowatts()
            ),
        });
    }

    if recs.is_empty() {
        recs.push(Recommendation {
            code: "steady-state",
            text: "no pressing contractual exposure detected; revisit at the \
                   next contract revision as tariff landscapes evolve."
                .into(),
        });
    }

    Ok(SiteReport {
        name: name.into(),
        stats,
        bill,
        recommendations: recs,
    })
}

impl SiteReport {
    /// Render as text.
    pub fn render(&self) -> String {
        let mut out = format!("=== Site report: {} ===\n\n", self.name);
        out.push_str(&format!(
            "load: mean {}, peak {} (P/A {:.2}, load factor {:.2})\n",
            self.stats.mean, self.stats.peak, self.stats.peak_to_average, self.stats.load_factor
        ));
        out.push_str(&format!(
            "ramps: max {:.0} kW/h, mean {:.0} kW/h\n\n",
            self.stats.max_ramp_kw_per_hour, self.stats.mean_ramp_kw_per_hour
        ));
        out.push_str(&self.bill.render());
        out.push_str("\nrecommendations:\n");
        for r in &self.recommendations {
            out.push_str(&format!("  [{}] {}\n", r.code, r.text));
        }
        out
    }

    /// True if a recommendation with `code` is present.
    pub fn has_recommendation(&self, code: &str) -> bool {
        self.recommendations.iter().any(|r| r.code == code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand_charge::DemandCharge;
    use crate::emergency::EmergencyDrClause;
    use crate::powerband::Powerband;
    use crate::tariff::Tariff;
    use hpcgrid_timeseries::series::Series;
    use hpcgrid_units::{DemandPrice, Duration, EnergyPrice, Power, SimTime};

    fn peaky_load() -> PowerSeries {
        Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), 96 * 7, |t| {
            let h = (t.as_secs() % 86_400) / 3_600;
            Power::from_megawatts(if (12..16).contains(&h) { 12.0 } else { 4.0 })
        })
        .unwrap()
    }

    #[test]
    fn demand_heavy_contract_triggers_efficiency_advice() {
        let c = Contract::builder("dc")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.03)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(20.0)))
            .build()
            .unwrap();
        let r = generate("t", &c, &peaky_load(), &Calendar::default()).unwrap();
        assert!(r.has_recommendation("efficiency-first"));
    }

    #[test]
    fn violated_band_triggers_capping_advice() {
        let c = Contract::builder("pb")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .powerband(Powerband::ceiling(
                Power::from_megawatts(10.0),
                EnergyPrice::per_kilowatt_hour(0.5),
            ))
            .build()
            .unwrap();
        let r = generate("t", &c, &peaky_load(), &Calendar::default()).unwrap();
        assert!(r.has_recommendation("powerband-capping"));
    }

    #[test]
    fn dynamic_and_emergency_advice() {
        use hpcgrid_timeseries::series::PriceSeries;
        let strip: PriceSeries = Series::constant(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            EnergyPrice::per_kilowatt_hour(0.05),
            24 * 7,
        )
        .unwrap();
        let c = Contract::builder("dyn")
            .tariff(Tariff::dynamic(
                strip,
                EnergyPrice::ZERO,
                EnergyPrice::per_kilowatt_hour(0.07),
            ))
            .emergency(EmergencyDrClause::reference(Power::from_megawatts(5.0)))
            .build()
            .unwrap();
        let r = generate("t", &c, &peaky_load(), &Calendar::default()).unwrap();
        assert!(r.has_recommendation("act-on-dynamic-price"));
        assert!(r.has_recommendation("contingency-plan"));
    }

    #[test]
    fn calm_flat_site_gets_steady_state() {
        let flat = Series::constant(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            Power::from_megawatts(5.0),
            24 * 7,
        )
        .unwrap();
        let c = Contract::builder("flat")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .build()
            .unwrap();
        let r = generate("t", &c, &flat, &Calendar::default()).unwrap();
        assert!(r.has_recommendation("steady-state"));
        assert_eq!(r.recommendations.len(), 1);
    }

    #[test]
    fn render_includes_everything() {
        let c = Contract::builder("full")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(20.0)))
            .build()
            .unwrap();
        let r = generate("render-test", &c, &peaky_load(), &Calendar::default()).unwrap();
        let s = r.render();
        assert!(s.contains("Site report: render-test"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("recommendations:"));
        assert!(s.contains("efficiency-first"));
    }
}
