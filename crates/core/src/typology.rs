//! The contract typology of Figure 1, as types.
//!
//! The paper's typology has three branches:
//!
//! ```text
//! SC electricity service contract
//! ├── Tariffs (mapped to kWh)
//! │   ├── Fixed
//! │   ├── Time-of-use (variable)
//! │   └── Dynamically variable
//! ├── Demand charges (mapped to kW)
//! │   ├── Peak demand charges
//! │   └── Powerband
//! └── Other
//!     └── Emergency DR
//! ```
//!
//! Each leaf *encourages* a particular demand-side behaviour (paper
//! §3.2.1–§3.2.3): fixed tariffs encourage energy efficiency but not
//! demand-side management; TOU tariffs encourage static DSM; dynamic tariffs
//! encourage DR proper; demand charges and powerbands encourage DSM but are
//! not real-time DR; emergency DR is mandatory incentive-based DR.

use serde::{Deserialize, Serialize};

/// The three branches of the typology diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypologyBranch {
    /// Components priced per kWh.
    TariffsKwh,
    /// Components priced on peak kW.
    DemandChargesKw,
    /// Components outside both domains.
    Other,
}

impl TypologyBranch {
    /// Human-readable label as used in Figure 1.
    pub fn label(self) -> &'static str {
        match self {
            TypologyBranch::TariffsKwh => "Tariffs (kWh-domain)",
            TypologyBranch::DemandChargesKw => "Demand charges (kW-domain)",
            TypologyBranch::Other => "Other",
        }
    }
}

/// The leaves of the typology: every contract-component kind the survey
/// identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum ContractComponentKind {
    /// Fixed price per kWh for the contract period.
    FixedTariff,
    /// Time-of-use tariff: price varies over contractually known periods.
    TimeOfUseTariff,
    /// Dynamically variable tariff: price set by real-time communication.
    DynamicTariff,
    /// Demand charge on billing-period peak consumption.
    DemandCharge,
    /// Powerband: upper (and optionally lower) consumption bounds with
    /// continuous sampling.
    Powerband,
    /// Mandatory emergency demand-response clause.
    EmergencyDr,
}

/// The demand-side behaviours a component encourages (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encourages {
    /// Rewards using less energy overall.
    pub energy_efficiency: bool,
    /// Rewards shaping load against a *static*, known-in-advance structure.
    pub static_dsm: bool,
    /// Rewards responding to *real-time* signals (DR proper).
    pub dynamic_dr: bool,
}

impl ContractComponentKind {
    /// All kinds, in Figure 1 / Table 2 order.
    pub const ALL: [ContractComponentKind; 6] = [
        ContractComponentKind::DemandCharge,
        ContractComponentKind::Powerband,
        ContractComponentKind::FixedTariff,
        ContractComponentKind::TimeOfUseTariff,
        ContractComponentKind::DynamicTariff,
        ContractComponentKind::EmergencyDr,
    ];

    /// The branch this kind belongs to.
    pub fn branch(self) -> TypologyBranch {
        match self {
            ContractComponentKind::FixedTariff
            | ContractComponentKind::TimeOfUseTariff
            | ContractComponentKind::DynamicTariff => TypologyBranch::TariffsKwh,
            ContractComponentKind::DemandCharge | ContractComponentKind::Powerband => {
                TypologyBranch::DemandChargesKw
            }
            ContractComponentKind::EmergencyDr => TypologyBranch::Other,
        }
    }

    /// Label as used in Table 2 / Figure 1.
    pub fn label(self) -> &'static str {
        match self {
            ContractComponentKind::FixedTariff => "Fixed",
            ContractComponentKind::TimeOfUseTariff => "Variable (time-of-use)",
            ContractComponentKind::DynamicTariff => "Dynamic",
            ContractComponentKind::DemandCharge => "Demand charges",
            ContractComponentKind::Powerband => "Powerband",
            ContractComponentKind::EmergencyDr => "Emergency DR",
        }
    }

    /// The behaviours this component encourages (paper §3.2.1–§3.2.3).
    pub fn encourages(self) -> Encourages {
        match self {
            ContractComponentKind::FixedTariff => Encourages {
                energy_efficiency: true,
                static_dsm: false,
                dynamic_dr: false,
            },
            ContractComponentKind::TimeOfUseTariff => Encourages {
                energy_efficiency: true,
                static_dsm: true,
                dynamic_dr: false,
            },
            ContractComponentKind::DynamicTariff => Encourages {
                energy_efficiency: true,
                static_dsm: true,
                dynamic_dr: true,
            },
            ContractComponentKind::DemandCharge | ContractComponentKind::Powerband => Encourages {
                energy_efficiency: false,
                static_dsm: true,
                dynamic_dr: false,
            },
            ContractComponentKind::EmergencyDr => Encourages {
                energy_efficiency: false,
                static_dsm: false,
                dynamic_dr: true,
            },
        }
    }
}

/// The full typology tree (Figure 1), renderable and iterable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Typology;

impl Typology {
    /// The branches in diagram order.
    pub fn branches() -> [TypologyBranch; 3] {
        [
            TypologyBranch::TariffsKwh,
            TypologyBranch::DemandChargesKw,
            TypologyBranch::Other,
        ]
    }

    /// The leaves under a branch, in diagram order.
    pub fn leaves(branch: TypologyBranch) -> Vec<ContractComponentKind> {
        ContractComponentKind::ALL
            .iter()
            .copied()
            .filter(|k| k.branch() == branch)
            .collect()
    }

    /// Render the typology tree as ASCII (the reproduction of Figure 1).
    pub fn render() -> String {
        let mut out = String::from("SC electricity service contract\n");
        let branches = Self::branches();
        for (bi, branch) in branches.iter().enumerate() {
            let last_branch = bi + 1 == branches.len();
            let bprefix = if last_branch {
                "└── "
            } else {
                "├── "
            };
            out.push_str(bprefix);
            out.push_str(branch.label());
            out.push('\n');
            let leaves = Self::leaves(*branch);
            for (li, leaf) in leaves.iter().enumerate() {
                let last_leaf = li + 1 == leaves.len();
                out.push_str(if last_branch { "    " } else { "│   " });
                out.push_str(if last_leaf {
                    "└── "
                } else {
                    "├── "
                });
                out.push_str(leaf.label());
                let enc = leaf.encourages();
                let mut tags: Vec<&str> = Vec::new();
                if enc.energy_efficiency {
                    tags.push("energy efficiency");
                }
                if enc.static_dsm {
                    tags.push("static DSM");
                }
                if enc.dynamic_dr {
                    tags.push("dynamic DR");
                }
                out.push_str(&format!("  [encourages: {}]", tags.join(", ")));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_exactly_one_branch() {
        let mut total = 0;
        for branch in Typology::branches() {
            total += Typology::leaves(branch).len();
        }
        assert_eq!(total, ContractComponentKind::ALL.len());
    }

    #[test]
    fn branch_assignment_matches_figure1() {
        use ContractComponentKind::*;
        assert_eq!(FixedTariff.branch(), TypologyBranch::TariffsKwh);
        assert_eq!(TimeOfUseTariff.branch(), TypologyBranch::TariffsKwh);
        assert_eq!(DynamicTariff.branch(), TypologyBranch::TariffsKwh);
        assert_eq!(DemandCharge.branch(), TypologyBranch::DemandChargesKw);
        assert_eq!(Powerband.branch(), TypologyBranch::DemandChargesKw);
        assert_eq!(EmergencyDr.branch(), TypologyBranch::Other);
    }

    #[test]
    fn encouragement_matrix_matches_paper() {
        use ContractComponentKind::*;
        // Fixed: efficiency only ("do not provide an incentive for DSM").
        let f = FixedTariff.encourages();
        assert!(f.energy_efficiency && !f.static_dsm && !f.dynamic_dr);
        // TOU: static DSM.
        let t = TimeOfUseTariff.encourages();
        assert!(t.static_dsm && !t.dynamic_dr);
        // Dynamic: DR proper.
        assert!(DynamicTariff.encourages().dynamic_dr);
        // Demand charges & powerband: "encourage demand-side management,
        // but are not DR (real-time) programs".
        for k in [DemandCharge, Powerband] {
            let e = k.encourages();
            assert!(e.static_dsm && !e.dynamic_dr);
        }
        // Emergency DR is an incentive-based DR program.
        assert!(EmergencyDr.encourages().dynamic_dr);
    }

    #[test]
    fn render_contains_all_labels() {
        let s = Typology::render();
        for k in ContractComponentKind::ALL {
            assert!(s.contains(k.label()), "missing {}", k.label());
        }
        for b in Typology::branches() {
            assert!(s.contains(b.label()), "missing {}", b.label());
        }
        // Tree shape: 3 branches + 6 leaves + title = 10 lines.
        assert_eq!(s.lines().count(), 10);
    }

    #[test]
    fn kind_order_matches_table2_columns() {
        use ContractComponentKind::*;
        assert_eq!(
            ContractComponentKind::ALL,
            [
                DemandCharge,
                Powerband,
                FixedTariff,
                TimeOfUseTariff,
                DynamicTariff,
                EmergencyDr
            ]
        );
    }
}
