//! Event-sourced contract ledger: append-only revision streams with as-of
//! billing.
//!
//! The paper's central observation is that center–ESP contracts are *living*
//! relationships: tariffs, demand charges, and powerbands get renegotiated
//! mid-term. Everything below [`ContractLedger`] treats a
//! [`Contract`] as a frozen value; the ledger makes the revision history
//! itself the source of truth, following the entity-event pattern:
//!
//! * each contract is an **append-only event stream** — one
//!   [`EventPayload::Created`] event followed by
//!   [`EventPayload::Delta`] events, applied through the existing
//!   [`Contract::apply`];
//! * every event carries an **idempotency key** (re-appending a key the
//!   stream has seen is a no-op returning the original revision, so
//!   at-least-once writers converge on one history), a **monotonically
//!   increasing revision number**, and an **effective date** (non-decreasing
//!   along the stream — amendments take effect prospectively);
//! * **hydration** ([`ContractLedger::hydrate_at`]) replays an event prefix
//!   into the contract in force at that revision;
//! * **compiled kernels are cached per `(ComponentFingerprint, horizon)`**
//!   ([`ContractLedger::kernel_at`]): hydrating revision N+1 when revision N
//!   is cached is one [`CompiledContract::patch`], not a recompile, and two
//!   streams whose revisions converge on the same contract share one kernel;
//! * billing is **as-of aware** ([`ContractLedger::bill_as_of`]): a horizon
//!   containing effective dates is sliced at each of them, every slice is
//!   billed under the revision in force at its start, and the per-slice
//!   bills fold into one [`AsOfBill`].
//!
//! # Invariants
//!
//! Replaying any event prefix — under any idempotent-retry reordering of
//! duplicate appends — hydrates to a bit-identical contract, and billing
//! through [`ContractLedger::bill_as_of`] is bit-identical to slicing the
//! load at the effective dates by hand and batch-billing each slice with its
//! own hydrated kernel (the `ledger_properties` suite proves both; invariant
//! #7 in `docs/ARCHITECTURE.md`). See `docs/LEDGER.md` for the lifecycle
//! guide and the "which API do I want" table.

use crate::billing::Bill;
use crate::compiled::CompiledContract;
use crate::contract::{Contract, ContractDelta};
use crate::fingerprint;
use crate::kernels::KernelCache;
use crate::{CoreError, Result};
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_units::{Calendar, Money, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to one contract's event stream inside a [`ContractLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContractId(u64);

impl ContractId {
    /// The raw stream index (stable for the lifetime of the ledger).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ContractId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "contract#{}", self.0)
    }
}

/// What one ledger event did to the contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventPayload {
    /// The stream's first event: the contract as originally negotiated.
    Created(Contract),
    /// A renegotiation, applied through [`Contract::apply`].
    Delta(ContractDelta),
}

impl EventPayload {
    /// Stable human label (the delta's [`ContractDelta::label`], or
    /// `created`).
    pub fn label(&self) -> String {
        match self {
            EventPayload::Created(_) => "created".into(),
            EventPayload::Delta(d) => d.label(),
        }
    }
}

/// One event in a contract's append-only stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEvent {
    /// Monotone revision number: `0` for the created event, then `1, 2, …`.
    pub revision: u64,
    /// Caller-chosen retry key; appending a key the stream has already seen
    /// is a no-op.
    pub idempotency_key: String,
    /// When the revision takes effect. Non-decreasing along the stream.
    pub effective: SimTime,
    /// The creation or delta this event records.
    pub payload: EventPayload,
}

/// Result of [`ContractLedger::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppendOutcome {
    /// The revision holding this idempotency key's event.
    pub revision: u64,
    /// `false` if the key had been appended before (idempotent retry — the
    /// stream is unchanged and `revision` is the original event's).
    pub applied: bool,
}

/// The span of an as-of bill billed under one revision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillSlice {
    /// The revision in force over `[from, to)`.
    pub revision: u64,
    /// Slice start (inclusive).
    pub from: SimTime,
    /// Slice end (exclusive).
    pub to: SimTime,
    /// The slice billed batch-wise under revision `revision`'s kernel.
    pub bill: Bill,
}

/// An as-of bill: one [`BillSlice`] per revision in force across the billed
/// horizon, in time order. Produced by [`ContractLedger::bill_as_of`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsOfBill {
    /// Per-revision slices covering the load, in time order (at least one).
    pub slices: Vec<BillSlice>,
}

impl AsOfBill {
    /// Fold the per-slice bills into one composite bill (see [`Bill::fold`]
    /// for the line-item merge rule). A single-slice as-of bill folds to
    /// that slice's bill unchanged.
    pub fn fold(&self) -> Bill {
        Bill::fold(self.slices.iter().map(|s| &s.bill))
            .expect("an AsOfBill always holds at least one slice")
    }

    /// Total across every slice.
    pub fn total(&self) -> Money {
        self.slices.iter().map(|s| s.bill.total()).sum()
    }

    /// The revisions billed, in slice order.
    pub fn revisions(&self) -> Vec<u64> {
        self.slices.iter().map(|s| s.revision).collect()
    }
}

/// One contract's append-only stream plus its derived caches.
#[derive(Debug, Clone)]
struct Stream {
    events: Vec<LedgerEvent>,
    /// Idempotency key → revision holding it.
    keys: HashMap<String, u64>,
    /// The hydrated head contract (replay of the full stream, kept
    /// incrementally — bit-identical to `hydrate_at(head)` because both run
    /// the same `Contract::apply` calls in the same order).
    head: Contract,
    /// `fingerprint::of_contract` of the hydrated contract per revision —
    /// the kernel-cache key, so hydration never recompiles a contract any
    /// revision of any stream has already compiled.
    fps: Vec<u64>,
}

/// An append-only ledger of contract revision streams with patch-cached
/// kernels and as-of billing, over one calendar and compile horizon.
///
/// ```
/// use hpcgrid_core::contract::{Contract, ContractDelta};
/// use hpcgrid_core::ledger::ContractLedger;
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_units::{Calendar, EnergyPrice, Money, SimTime};
///
/// let contract = Contract::builder("esp-2026")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let mut ledger = ContractLedger::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(60));
///
/// // `create` is idempotent on its key, like every append.
/// let id = ledger.create(contract.clone(), "negotiated-2026", SimTime::EPOCH)?;
/// assert_eq!(ledger.create(contract, "negotiated-2026", SimTime::EPOCH)?, id);
/// assert_eq!(ledger.head(id)?, 0);
///
/// // A renegotiation 30 days in becomes revision 1.
/// let out = ledger.append(
///     id,
///     ContractDelta::SetMonthlyFee(Money::from_dollars(1_500.0)),
///     "fee-amendment",
///     SimTime::from_days(30),
/// )?;
/// assert!(out.applied);
/// assert_eq!(ledger.head(id)?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ContractLedger {
    kernels: KernelCache,
    streams: Vec<Stream>,
    /// Created-event idempotency keys (ledger-scoped) → stream.
    created_keys: HashMap<String, ContractId>,
}

impl ContractLedger {
    /// An empty ledger compiling kernels under `calendar` for loads inside
    /// `[start, end)`.
    pub fn new(calendar: Calendar, start: SimTime, end: SimTime) -> ContractLedger {
        ContractLedger {
            kernels: KernelCache::new(calendar, start, end),
            streams: Vec::new(),
            created_keys: HashMap::new(),
        }
    }

    /// The calendar every kernel is compiled under.
    pub fn calendar(&self) -> &Calendar {
        self.kernels.calendar()
    }

    /// The compile horizon `[start, end)` shared by every cached kernel.
    pub fn horizon(&self) -> (SimTime, SimTime) {
        self.kernels.horizon()
    }

    /// Number of contract streams.
    pub fn contracts(&self) -> usize {
        self.streams.len()
    }

    /// The shared kernel cache (one kernel per distinct
    /// `(ComponentFingerprint, horizon)` across *all* streams) — its
    /// hit/miss counters are the hydrate-vs-recompile observability used by
    /// the `exp_ledger_hydrate` baseline.
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    fn stream(&self, id: ContractId) -> Result<&Stream> {
        self.streams
            .get(id.0 as usize)
            .ok_or_else(|| CoreError::Ledger(format!("unknown {id}")))
    }

    /// Open a new stream with its `Created` event at revision 0.
    ///
    /// Idempotent on `key` (ledger-scoped for created events): re-creating
    /// with a seen key returns the original [`ContractId`] and leaves the
    /// ledger unchanged. `effective` is the contract's start of force —
    /// billing before it is an error.
    pub fn create(
        &mut self,
        contract: Contract,
        key: &str,
        effective: SimTime,
    ) -> Result<ContractId> {
        if let Some(&id) = self.created_keys.get(key) {
            return Ok(id);
        }
        let id = ContractId(self.streams.len() as u64);
        let fp = fingerprint::of_contract(&contract).0;
        let mut keys = HashMap::new();
        keys.insert(key.to_string(), 0);
        self.streams.push(Stream {
            events: vec![LedgerEvent {
                revision: 0,
                idempotency_key: key.to_string(),
                effective,
                payload: EventPayload::Created(contract.clone()),
            }],
            keys,
            head: contract,
            fps: vec![fp],
        });
        self.created_keys.insert(key.to_string(), id);
        Ok(id)
    }

    /// Append a renegotiation to a stream, returning the revision it holds.
    ///
    /// Validation happens at append time: the delta must apply cleanly to
    /// the current head (via [`Contract::apply`]) and `effective` must not
    /// precede the previous event's effective date (amendments take effect
    /// prospectively; retroactive re-pricing is out of scope). A key the
    /// stream has already seen makes the append a no-op
    /// ([`AppendOutcome::applied`] `false`) — at-least-once retries,
    /// arbitrarily interleaved, converge on one history.
    ///
    /// ```
    /// use hpcgrid_core::contract::{Contract, ContractDelta};
    /// use hpcgrid_core::ledger::ContractLedger;
    /// use hpcgrid_core::tariff::Tariff;
    /// use hpcgrid_units::{Calendar, EnergyPrice, Money, SimTime};
    ///
    /// let contract = Contract::builder("esp")
    ///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
    ///     .build()?;
    /// let mut ledger = ContractLedger::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(60));
    /// let id = ledger.create(contract, "created", SimTime::EPOCH)?;
    ///
    /// let delta = ContractDelta::SetMonthlyFee(Money::from_dollars(900.0));
    /// let first = ledger.append(id, delta.clone(), "fee-bump", SimTime::from_days(10))?;
    /// assert!((first.revision, first.applied) == (1, true));
    ///
    /// // The retry is a no-op: same revision back, stream unchanged.
    /// let retry = ledger.append(id, delta, "fee-bump", SimTime::from_days(10))?;
    /// assert!((retry.revision, retry.applied) == (1, false));
    /// assert_eq!(ledger.events(id)?.len(), 2);
    ///
    /// // Effective dates must be non-decreasing.
    /// let back = ContractDelta::SetMonthlyFee(Money::from_dollars(100.0));
    /// assert!(ledger.append(id, back, "backdated", SimTime::from_days(5)).is_err());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn append(
        &mut self,
        id: ContractId,
        delta: ContractDelta,
        key: &str,
        effective: SimTime,
    ) -> Result<AppendOutcome> {
        self.stream(id)?;
        let stream = &mut self.streams[id.0 as usize];
        if let Some(&revision) = stream.keys.get(key) {
            return Ok(AppendOutcome {
                revision,
                applied: false,
            });
        }
        let last = stream
            .events
            .last()
            .expect("a stream always holds its created event");
        if effective < last.effective {
            return Err(CoreError::Ledger(format!(
                "effective date {effective} precedes the stream's latest event \
                 ({}) — ledger amendments take effect prospectively",
                last.effective
            )));
        }
        let head = stream.head.apply(&delta)?;
        let revision = stream.events.len() as u64;
        stream.events.push(LedgerEvent {
            revision,
            idempotency_key: key.to_string(),
            effective,
            payload: EventPayload::Delta(delta),
        });
        stream.keys.insert(key.to_string(), revision);
        stream.fps.push(fingerprint::of_contract(&head).0);
        stream.head = head;
        Ok(AppendOutcome {
            revision,
            applied: true,
        })
    }

    /// The stream's head revision number.
    pub fn head(&self, id: ContractId) -> Result<u64> {
        Ok(self.stream(id)?.events.len() as u64 - 1)
    }

    /// The full event stream, in revision order.
    pub fn events(&self, id: ContractId) -> Result<&[LedgerEvent]> {
        Ok(&self.stream(id)?.events)
    }

    /// The hydrated head contract (without replaying — the ledger keeps it
    /// incrementally; bit-identical to `hydrate_at(head)`).
    pub fn head_contract(&self, id: ContractId) -> Result<&Contract> {
        Ok(&self.stream(id)?.head)
    }

    /// The revision in force at instant `t`: the last revision whose
    /// effective date is at or before `t`. Errors if `t` precedes the
    /// contract's creation.
    pub fn revision_at(&self, id: ContractId, t: SimTime) -> Result<u64> {
        let stream = self.stream(id)?;
        let n = stream.events.partition_point(|e| e.effective <= t);
        if n == 0 {
            return Err(CoreError::Ledger(format!(
                "{id} is not yet in force at {t} (created effective {})",
                stream.events[0].effective
            )));
        }
        Ok(n as u64 - 1)
    }

    /// Hydrate the contract in force at `revision` by replaying the event
    /// prefix through [`Contract::apply`].
    ///
    /// ```
    /// use hpcgrid_core::contract::{Contract, ContractDelta};
    /// use hpcgrid_core::ledger::ContractLedger;
    /// use hpcgrid_core::tariff::Tariff;
    /// use hpcgrid_units::{Calendar, EnergyPrice, Money, SimTime};
    ///
    /// let contract = Contract::builder("esp")
    ///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
    ///     .build()?;
    /// let mut ledger = ContractLedger::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(60));
    /// let id = ledger.create(contract, "created", SimTime::EPOCH)?;
    /// ledger.append(
    ///     id,
    ///     ContractDelta::SetMonthlyFee(Money::from_dollars(750.0)),
    ///     "fee",
    ///     SimTime::from_days(30),
    /// )?;
    ///
    /// // Revision 0 is the original; revision 1 carries the fee.
    /// assert_eq!(ledger.hydrate_at(id, 0)?.monthly_fee, Money::ZERO);
    /// assert_eq!(ledger.hydrate_at(id, 1)?.monthly_fee, Money::from_dollars(750.0));
    /// // Replaying the full prefix reproduces the incrementally-kept head.
    /// assert_eq!(&ledger.hydrate_at(id, 1)?, ledger.head_contract(id)?);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn hydrate_at(&self, id: ContractId, revision: u64) -> Result<Contract> {
        let stream = self.stream(id)?;
        let events = stream.events.get(..=revision as usize).ok_or_else(|| {
            CoreError::Ledger(format!(
                "{id} has no revision {revision} (head is {})",
                stream.events.len() - 1
            ))
        })?;
        let mut contract = match &events[0].payload {
            EventPayload::Created(c) => c.clone(),
            EventPayload::Delta(_) => unreachable!("revision 0 is always a created event"),
        };
        for event in &events[1..] {
            match &event.payload {
                EventPayload::Delta(d) => contract = contract.apply(d)?,
                EventPayload::Created(_) => {
                    unreachable!("created events only appear at revision 0")
                }
            }
        }
        Ok(contract)
    }

    /// The compiled kernel for `revision`, cached per
    /// `(ComponentFingerprint, horizon)` across every stream.
    ///
    /// A cached revision returns its shared `Arc` directly. Otherwise the
    /// nearest cached earlier revision is **patched forward** through the
    /// intervening deltas ([`CompiledContract::patch`] — bit-identical to a
    /// fresh compile, several times faster); only a stream none of whose
    /// revisions has ever been compiled pays for a full compilation.
    /// Intermediate kernels produced while patching are cached too.
    pub fn kernel_at(&mut self, id: ContractId, revision: u64) -> Result<Arc<CompiledContract>> {
        self.stream(id)?;
        let stream = &self.streams[id.0 as usize];
        let rev = revision as usize;
        if rev >= stream.events.len() {
            return Err(CoreError::Ledger(format!(
                "{id} has no revision {revision} (head is {})",
                stream.events.len() - 1
            )));
        }
        if let Some(kernel) = self.kernels.get(stream.fps[rev]) {
            return Ok(kernel);
        }
        // Nearest cached ancestor, to patch forward from.
        let base = (0..rev)
            .rev()
            .find_map(|r| self.kernels.get(stream.fps[r]).map(|kernel| (r, kernel)));
        match base {
            Some((r, base_kernel)) => {
                let mut kernel = Arc::clone(&base_kernel);
                for event in &stream.events[r + 1..=rev] {
                    let patched = match &event.payload {
                        EventPayload::Delta(d) => kernel.patch(d)?,
                        EventPayload::Created(_) => {
                            unreachable!("created events only appear at revision 0")
                        }
                    };
                    kernel = self.kernels.get_or_insert(Arc::new(patched))?;
                }
                Ok(kernel)
            }
            None => {
                let contract = self.hydrate_at(id, revision)?;
                self.kernels.get_or_compile(&contract)
            }
        }
    }

    /// Bill `load` **as of the ledger**: slice it at every effective date
    /// falling strictly inside its span, bill each slice batch-wise under
    /// the revision in force at the slice's start, and return the slices in
    /// time order.
    ///
    /// Each slice bill is bit-identical to hydrating that revision's kernel
    /// and billing the slice by hand — a mid-year renegotiation bills
    /// exactly like two separate batch runs (`docs/LEDGER.md` spells out
    /// the month-boundary consequences: demand months and service fees
    /// restart at each slice boundary, just as they would if the slices
    /// were metered separately). Effective dates must fall on the load's
    /// sample grid.
    ///
    /// ```
    /// use hpcgrid_core::contract::{Contract, ContractDelta};
    /// use hpcgrid_core::ledger::ContractLedger;
    /// use hpcgrid_core::tariff::Tariff;
    /// use hpcgrid_timeseries::series::Series;
    /// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
    ///
    /// let contract = Contract::builder("esp")
    ///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.05)))
    ///     .build()?;
    /// let mut ledger = ContractLedger::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(4));
    /// let id = ledger.create(contract, "created", SimTime::EPOCH)?;
    /// // The rate doubles, effective at the start of day 2.
    /// let double = Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.10));
    /// ledger.append(
    ///     id,
    ///     ContractDelta::ReplaceTariff { index: 0, tariff: double },
    ///     "rate-doubles",
    ///     SimTime::from_days(2),
    /// )?;
    ///
    /// // Four days at a steady 1 MW: two days at each rate.
    /// let load = Series::constant(
    ///     SimTime::EPOCH,
    ///     Duration::from_hours(1.0),
    ///     Power::from_megawatts(1.0),
    ///     96,
    /// )?;
    /// let asof = ledger.bill_as_of(id, &load)?;
    /// assert_eq!(asof.revisions(), vec![0, 1]);
    /// // 48 MWh · $0.05/kWh + 48 MWh · $0.10/kWh.
    /// assert_eq!(asof.total().as_dollars(), 48_000.0 * 0.05 + 48_000.0 * 0.10);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn bill_as_of(&mut self, id: ContractId, load: &PowerSeries) -> Result<AsOfBill> {
        if load.is_empty() {
            return Err(CoreError::BadSeries("load series is empty".into()));
        }
        let (start, end) = (load.start(), load.end());
        let step = load.step().as_secs();
        let first_rev = self.revision_at(id, start)?;
        // Cut points: distinct effective dates strictly inside the load's
        // span. Events at or before `start` are folded into `first_rev`;
        // events at or past `end` have no force over this load.
        let mut cuts: Vec<SimTime> = Vec::new();
        for event in &self.stream(id)?.events[first_rev as usize + 1..] {
            if event.effective >= end {
                break;
            }
            if cuts.last() != Some(&event.effective) {
                cuts.push(event.effective);
            }
        }
        for cut in &cuts {
            if !(cut.as_secs() - start.as_secs()).is_multiple_of(step) {
                return Err(CoreError::BadSeries(format!(
                    "effective date {cut} does not fall on the load's sample \
                     grid (start {start}, step {step}s) — as-of slices must \
                     split the series between samples"
                )));
            }
        }
        let mut bounds = Vec::with_capacity(cuts.len() + 2);
        bounds.push(start);
        bounds.extend(cuts);
        bounds.push(end);
        let mut slices = Vec::with_capacity(bounds.len() - 1);
        for pair in bounds.windows(2) {
            let (from, to) = (pair[0], pair[1]);
            let revision = self.revision_at(id, from)?;
            let kernel = self.kernel_at(id, revision)?;
            let bill = kernel.bill(&load.slice_time(from, to))?;
            slices.push(BillSlice {
                revision,
                from,
                to,
                bill,
            });
        }
        Ok(AsOfBill { slices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tariff::Tariff;
    use hpcgrid_timeseries::series::Series;
    use hpcgrid_units::{Duration, EnergyPrice, Power};

    fn flat(rate: f64) -> Contract {
        Contract::builder("ledger-test")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(rate)))
            .build()
            .unwrap()
    }

    fn ledger() -> ContractLedger {
        ContractLedger::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(60))
    }

    fn load(days: u64) -> PowerSeries {
        Series::constant(
            SimTime::EPOCH,
            Duration::from_minutes(15.0),
            Power::from_megawatts(5.0),
            (days * 96) as usize,
        )
        .unwrap()
    }

    #[test]
    fn create_is_idempotent_ledger_wide() {
        let mut l = ledger();
        let a = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        let b = l.create(flat(0.09), "k", SimTime::EPOCH).unwrap();
        assert_eq!(a, b);
        assert_eq!(l.contracts(), 1);
        // The retry did not overwrite the original contract.
        assert_eq!(
            l.head_contract(a).unwrap().tariffs[0],
            flat(0.07).tariffs[0]
        );
    }

    #[test]
    fn append_validates_via_contract_apply() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        let bad = ContractDelta::SetMonthlyFee(Money::from_dollars(-5.0));
        assert!(l.append(id, bad, "bad-fee", SimTime::from_days(1)).is_err());
        // The failed append left no event behind.
        assert_eq!(l.head(id).unwrap(), 0);
    }

    #[test]
    fn effective_dates_must_be_non_decreasing() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::from_days(2)).unwrap();
        let fee = ContractDelta::SetMonthlyFee(Money::from_dollars(10.0));
        let err = l.append(id, fee, "backdated", SimTime::EPOCH).unwrap_err();
        assert!(err.to_string().contains("prospectively"), "{err}");
        // Equal effective dates are fine (two amendments signed together).
        let fee2 = ContractDelta::SetMonthlyFee(Money::from_dollars(20.0));
        assert!(l
            .append(id, fee2, "same-day", SimTime::from_days(2))
            .is_ok());
    }

    #[test]
    fn unknown_ids_and_revisions_are_ledger_errors() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        assert!(matches!(
            l.hydrate_at(ContractId(9), 0),
            Err(CoreError::Ledger(_))
        ));
        assert!(matches!(l.hydrate_at(id, 1), Err(CoreError::Ledger(_))));
        assert!(matches!(l.kernel_at(id, 7), Err(CoreError::Ledger(_))));
        assert!(matches!(l.revision_at(id, SimTime::EPOCH), Ok(0)));
    }

    #[test]
    fn revision_at_tracks_effective_dates() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        for (i, day) in [10u64, 10, 20].iter().enumerate() {
            l.append(
                id,
                ContractDelta::SetMonthlyFee(Money::from_dollars((i + 1) as f64)),
                &format!("fee-{i}"),
                SimTime::from_days(*day),
            )
            .unwrap();
        }
        assert_eq!(l.revision_at(id, SimTime::EPOCH).unwrap(), 0);
        assert_eq!(l.revision_at(id, SimTime::from_days(9)).unwrap(), 0);
        // Two events share day 10: the later one wins at its instant.
        assert_eq!(l.revision_at(id, SimTime::from_days(10)).unwrap(), 2);
        assert_eq!(l.revision_at(id, SimTime::from_days(25)).unwrap(), 3);
        let early =
            ContractLedger::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(60));
        drop(early);
        let mut l2 = ledger();
        let late = l2.create(flat(0.07), "k", SimTime::from_days(5)).unwrap();
        assert!(l2.revision_at(late, SimTime::EPOCH).is_err());
    }

    #[test]
    fn kernels_are_shared_across_streams_by_fingerprint() {
        let mut l = ledger();
        let a = l.create(flat(0.07), "a", SimTime::EPOCH).unwrap();
        let b = l.create(flat(0.07), "b", SimTime::EPOCH).unwrap();
        let ka = l.kernel_at(a, 0).unwrap();
        let kb = l.kernel_at(b, 0).unwrap();
        assert!(Arc::ptr_eq(&ka, &kb), "identical contracts share a kernel");
        assert_eq!(l.kernel_cache().len(), 1);
    }

    #[test]
    fn hydration_at_next_revision_is_a_patch_not_a_recompile() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        let _k0 = l.kernel_at(id, 0).unwrap();
        let misses_before = l.kernel_cache().misses();
        l.append(
            id,
            ContractDelta::SetMonthlyFee(Money::from_dollars(500.0)),
            "fee",
            SimTime::from_days(30),
        )
        .unwrap();
        let k1 = l.kernel_at(id, 1).unwrap();
        // One admission (the patched kernel), zero fresh compiles: the
        // patched kernel arrived via get_or_insert, and re-asking is a pure
        // cache hit returning the same Arc.
        assert_eq!(l.kernel_cache().misses(), misses_before + 1);
        let k1_again = l.kernel_at(id, 1).unwrap();
        assert!(Arc::ptr_eq(&k1, &k1_again));
        // The patched kernel bills exactly like a fresh compile.
        let fresh = CompiledContract::compile(
            &Calendar::default(),
            &l.hydrate_at(id, 1).unwrap(),
            SimTime::EPOCH,
            SimTime::from_days(60),
        )
        .unwrap();
        let lo = load(45);
        assert_eq!(k1.bill(&lo).unwrap(), fresh.bill(&lo).unwrap());
    }

    #[test]
    fn bill_as_of_without_events_is_one_plain_slice() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        let lo = load(10);
        let asof = l.bill_as_of(id, &lo).unwrap();
        assert_eq!(asof.slices.len(), 1);
        let direct = l.kernel_at(id, 0).unwrap().bill(&lo).unwrap();
        assert_eq!(asof.slices[0].bill, direct);
        assert_eq!(asof.fold(), direct, "single-slice fold is the identity");
    }

    #[test]
    fn bill_as_of_rejects_off_grid_effective_dates() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        l.append(
            id,
            ContractDelta::SetMonthlyFee(Money::from_dollars(500.0)),
            "fee",
            SimTime::from_secs(100), // not on the 15-minute grid
        )
        .unwrap();
        let err = l.bill_as_of(id, &load(10)).unwrap_err();
        assert!(err.to_string().contains("sample grid"), "{err}");
    }

    #[test]
    fn events_at_or_past_load_end_do_not_slice() {
        let mut l = ledger();
        let id = l.create(flat(0.07), "k", SimTime::EPOCH).unwrap();
        l.append(
            id,
            ContractDelta::SetMonthlyFee(Money::from_dollars(500.0)),
            "fee",
            SimTime::from_days(10),
        )
        .unwrap();
        let asof = l.bill_as_of(id, &load(10)).unwrap();
        assert_eq!(asof.slices.len(), 1, "effective == load end: no cut");
        assert_eq!(asof.slices[0].revision, 0);
    }
}
