//! Emergency-DR clauses: the "Other" branch of the typology.
//!
//! Paper §3.2.3: some contracts contain *mandatory* emergency-response
//! elements — "a specific type of incentive-based DR program which imposes a
//! reduction in consumption or a consumption up to a certain limit in order
//! to preserve grid reliability... as opposed to commercial DR programs,
//! these are mandatory and imposed upon the SCs."
//!
//! A clause is evaluated against the load the site actually ran during the
//! ESP's emergency windows: staying under the emergency limit complies;
//! exceeding it incurs a per-event penalty.

use crate::{CoreError, Result};
use hpcgrid_timeseries::intervals::IntervalSet;
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_units::{Duration, Money, Power, SimTime};
use serde::{Deserialize, Serialize};

/// A mandatory emergency-DR clause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmergencyDrClause {
    /// Consumption limit the site must stay under during an emergency event.
    pub limit: Power,
    /// Penalty per non-compliant event.
    pub penalty_per_event: Money,
    /// Maximum events the ESP may call per contract year (informational;
    /// checked when evaluating a generated event set).
    pub max_events_per_year: u32,
    /// Advance notice the ESP must give.
    pub notice: Duration,
}

/// Compliance result of one emergency event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventCompliance {
    /// Event window start.
    pub start: SimTime,
    /// Worst observed load during the event.
    pub worst_load: Power,
    /// Whether the site stayed under the limit.
    pub compliant: bool,
    /// Penalty assessed (zero if compliant).
    pub penalty: Money,
}

/// The clause's assessment over a load series and a set of event windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmergencyAssessment {
    /// Per-event outcomes.
    pub events: Vec<EventCompliance>,
    /// Total penalties.
    pub total_penalty: Money,
}

impl EmergencyDrClause {
    /// A stylized clause: stay under `limit`, $50k per violated event, at
    /// most 10 events/year, 30 minutes notice.
    pub fn reference(limit: Power) -> EmergencyDrClause {
        EmergencyDrClause {
            limit,
            penalty_per_event: Money::from_dollars(50_000.0),
            max_events_per_year: 10,
            notice: Duration::from_minutes(30.0),
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.limit < Power::ZERO {
            return Err(CoreError::BadComponent(
                "emergency limit must be non-negative".into(),
            ));
        }
        if self.penalty_per_event < Money::ZERO {
            return Err(CoreError::BadComponent(
                "emergency penalty must be non-negative".into(),
            ));
        }
        Ok(())
    }

    /// Assess compliance of `load` during `events` windows.
    pub fn assess(&self, load: &PowerSeries, events: &IntervalSet) -> Result<EmergencyAssessment> {
        self.validate()?;
        let mut out = Vec::new();
        let mut total = Money::ZERO;
        for window in events.intervals() {
            let slice = load.slice_time(window.start, window.end);
            let worst = slice.peak().unwrap_or(Power::ZERO);
            let compliant = worst <= self.limit;
            let penalty = if compliant {
                Money::ZERO
            } else {
                self.penalty_per_event
            };
            total += penalty;
            out.push(EventCompliance {
                start: window.start,
                worst_load: worst,
                compliant,
                penalty,
            });
        }
        Ok(EmergencyAssessment {
            events: out,
            total_penalty: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcgrid_timeseries::intervals::Interval;
    use hpcgrid_timeseries::series::Series;

    fn load(values_mw: Vec<f64>) -> PowerSeries {
        Series::new(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            values_mw.into_iter().map(Power::from_megawatts).collect(),
        )
        .unwrap()
    }

    fn events(windows: Vec<(u64, u64)>) -> IntervalSet {
        IntervalSet::from_intervals(
            windows
                .into_iter()
                .map(|(a, b)| {
                    Interval::new(SimTime::from_hours(a as f64), SimTime::from_hours(b as f64))
                })
                .collect(),
        )
    }

    #[test]
    fn compliant_event_no_penalty() {
        let clause = EmergencyDrClause::reference(Power::from_megawatts(5.0));
        // Event during hours 2–4; site dropped to 4 MW.
        let l = load(vec![10.0, 10.0, 4.0, 4.0, 10.0]);
        let a = clause.assess(&l, &events(vec![(2, 4)])).unwrap();
        assert_eq!(a.events.len(), 1);
        assert!(a.events[0].compliant);
        assert_eq!(a.total_penalty, Money::ZERO);
    }

    #[test]
    fn violation_pays_per_event() {
        let clause = EmergencyDrClause::reference(Power::from_megawatts(5.0));
        let l = load(vec![10.0, 10.0, 9.0, 4.0, 10.0, 12.0, 3.0]);
        // Two events: first violated (9 MW), second violated (12 MW at hour 5).
        let a = clause.assess(&l, &events(vec![(2, 4), (5, 6)])).unwrap();
        assert_eq!(a.events.len(), 2);
        assert!(!a.events[0].compliant);
        assert_eq!(a.events[0].worst_load.as_megawatts(), 9.0);
        assert!(!a.events[1].compliant);
        assert_eq!(a.total_penalty.as_dollars(), 100_000.0);
    }

    #[test]
    fn no_events_no_penalty() {
        let clause = EmergencyDrClause::reference(Power::from_megawatts(5.0));
        let a = clause
            .assess(&load(vec![10.0]), &IntervalSet::empty())
            .unwrap();
        assert!(a.events.is_empty());
        assert_eq!(a.total_penalty, Money::ZERO);
    }

    #[test]
    fn event_outside_load_counts_compliant() {
        // No data during the event → worst load 0 → compliant (site was off).
        let clause = EmergencyDrClause::reference(Power::from_megawatts(5.0));
        let a = clause
            .assess(&load(vec![10.0]), &events(vec![(100, 101)]))
            .unwrap();
        assert!(a.events[0].compliant);
    }

    #[test]
    fn validation() {
        let mut c = EmergencyDrClause::reference(Power::from_megawatts(5.0));
        c.limit = Power::from_kilowatts(-1.0);
        assert!(c.validate().is_err());
        let mut c2 = EmergencyDrClause::reference(Power::from_megawatts(5.0));
        c2.penalty_per_event = Money::from_dollars(-5.0);
        assert!(c2.validate().is_err());
    }
}
