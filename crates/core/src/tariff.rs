//! Energy tariffs: the kWh-domain branch of the typology.
//!
//! Three leaves (paper §3.2.1):
//!
//! * **fixed** — one price for the whole contract period;
//! * **time-of-use** — price varies over *contractually known* periods
//!   (day/night, weekday/weekend, seasons);
//! * **dynamically variable** — price set by real-time communication
//!   (here: a wholesale price strip from `hpcgrid-grid`, plus a retail
//!   markup).
//!
//! Two surveyed sites had both a fixed tariff *and* a variable component
//! ("a variable service-charge is applied on top of their fixed rate
//! tariff") — contracts therefore hold a *list* of tariff components whose
//! costs add.

use crate::{CoreError, Result};
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{
    Calendar, Duration, EnergyPrice, Money, MonthSet, SimTime, TimeOfDay, Weekday,
};
use serde::{Deserialize, Serialize};

/// Which days a TOU window applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DayFilter {
    /// Every day.
    #[default]
    All,
    /// Monday–Friday.
    WeekdaysOnly,
    /// Saturday–Sunday.
    WeekendsOnly,
}

impl DayFilter {
    /// Does `w` match the filter?
    pub fn matches(self, w: Weekday) -> bool {
        match self {
            DayFilter::All => true,
            DayFilter::WeekdaysOnly => !w.is_weekend(),
            DayFilter::WeekendsOnly => w.is_weekend(),
        }
    }
}

/// One time-of-use pricing window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TouWindow {
    /// Months the window applies to (`None` = all year).
    pub months: Option<MonthSet>,
    /// Day filter.
    pub days: DayFilter,
    /// Window start (inclusive).
    pub from: TimeOfDay,
    /// Window end (exclusive). If `to <= from` the window wraps midnight.
    pub to: TimeOfDay,
    /// Price inside the window.
    pub price: EnergyPrice,
}

impl TouWindow {
    /// Does the window cover civil time `t` under `cal`?
    pub fn covers(&self, cal: &Calendar, t: SimTime) -> bool {
        if let Some(months) = self.months {
            if !months.contains(cal.month(t)) {
                return false;
            }
        }
        if !self.days.matches(cal.weekday(t)) {
            return false;
        }
        let tod = cal.time_of_day(t).seconds_into_day();
        let from = self.from.seconds_into_day();
        let to = self.to.seconds_into_day();
        if from < to {
            (from..to).contains(&tod)
        } else {
            // Wraps midnight (e.g. 22:00–06:00).
            tod >= from || tod < to
        }
    }
}

/// A time-of-use tariff: ordered windows with a base (default) price.
/// The first matching window wins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TouTariff {
    /// Windows in priority order.
    pub windows: Vec<TouWindow>,
    /// Price when no window matches.
    pub base: EnergyPrice,
}

impl TouTariff {
    /// A classic day/night tariff: `day_price` 08:00–20:00 on weekdays,
    /// `night_price` otherwise.
    pub fn day_night(day_price: EnergyPrice, night_price: EnergyPrice) -> TouTariff {
        TouTariff {
            windows: vec![TouWindow {
                months: None,
                days: DayFilter::WeekdaysOnly,
                from: TimeOfDay::new(8, 0),
                to: TimeOfDay::new(20, 0),
                price: day_price,
            }],
            base: night_price,
        }
    }

    /// A summer-peak tariff: `peak` in June–September 12:00–18:00 weekdays,
    /// `base` otherwise.
    pub fn summer_peak(peak: EnergyPrice, base: EnergyPrice) -> TouTariff {
        TouTariff {
            windows: vec![TouWindow {
                months: Some(MonthSet::summer()),
                days: DayFilter::WeekdaysOnly,
                from: TimeOfDay::new(12, 0),
                to: TimeOfDay::new(18, 0),
                price: peak,
            }],
            base,
        }
    }

    /// The price in force at `t`.
    pub fn price_at(&self, cal: &Calendar, t: SimTime) -> EnergyPrice {
        self.windows
            .iter()
            .find(|w| w.covers(cal, t))
            .map_or(self.base, |w| w.price)
    }
}

/// A dynamically variable tariff: an externally supplied price strip (e.g.
/// wholesale market prices from `hpcgrid-grid`) with a retail markup, and a
/// fallback price outside the strip's coverage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicTariff {
    /// The real-time price strip.
    pub prices: PriceSeries,
    /// Additive retail markup on every interval.
    pub markup: EnergyPrice,
    /// Price applied outside the strip's time range.
    pub fallback: EnergyPrice,
}

impl DynamicTariff {
    /// The price in force at `t`.
    pub fn price_at(&self, t: SimTime) -> EnergyPrice {
        match self.prices.index_at(t) {
            Some(i) => self.prices.values()[i] + self.markup,
            None => self.fallback,
        }
    }
}

/// One step of a block (tiered) tariff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockStep {
    /// Upper bound of the block in kWh per billing month (`None` for the
    /// final, unbounded block).
    pub up_to_kwh: Option<f64>,
    /// Price inside the block.
    pub price: EnergyPrice,
}

/// A block (tiered/declining-block) tariff: the marginal price depends on
/// the *cumulative volume* consumed in the billing month, not on the time
/// of day. Common in US industrial rates; in the paper's typology it is a
/// variant of the **fixed** leaf — the schedule is fixed throughout the
/// contract period and carries no time-of-use or real-time signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockTariff {
    /// Blocks in ascending threshold order; the last must be unbounded.
    pub blocks: Vec<BlockStep>,
}

impl BlockTariff {
    /// Validate the block structure.
    pub fn validate(&self) -> Result<()> {
        if self.blocks.is_empty() {
            return Err(CoreError::BadComponent("block tariff needs blocks".into()));
        }
        let mut last = 0.0f64;
        for (i, b) in self.blocks.iter().enumerate() {
            match b.up_to_kwh {
                Some(limit) => {
                    if i + 1 == self.blocks.len() {
                        return Err(CoreError::BadComponent(
                            "final block must be unbounded".into(),
                        ));
                    }
                    if limit <= last {
                        return Err(CoreError::BadComponent(
                            "block thresholds must be strictly increasing".into(),
                        ));
                    }
                    last = limit;
                }
                None => {
                    if i + 1 != self.blocks.len() {
                        return Err(CoreError::BadComponent(
                            "only the final block may be unbounded".into(),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Cost of consuming `kwh` within one billing month (marginal blocks).
    pub fn monthly_cost(&self, kwh: f64) -> Money {
        let mut remaining = kwh.max(0.0);
        let mut prev_limit = 0.0f64;
        let mut total = 0.0f64;
        for b in &self.blocks {
            let width = match b.up_to_kwh {
                Some(limit) => limit - prev_limit,
                None => f64::INFINITY,
            };
            let take = remaining.min(width);
            total += take * b.price.as_dollars_per_kilowatt_hour();
            remaining -= take;
            if let Some(limit) = b.up_to_kwh {
                prev_limit = limit;
            }
            if remaining <= 0.0 {
                break;
            }
        }
        Money::from_dollars(total)
    }
}

/// An energy tariff component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Tariff {
    /// Fixed price per kWh.
    Fixed(EnergyPrice),
    /// Block (tiered) pricing — volume-dependent but fixed in time, so it
    /// classifies under the typology's fixed leaf.
    Block(BlockTariff),
    /// Time-of-use pricing.
    TimeOfUse(TouTariff),
    /// Dynamically variable pricing.
    Dynamic(DynamicTariff),
}

impl Tariff {
    /// Convenience constructor for a fixed tariff.
    pub fn fixed(price: EnergyPrice) -> Tariff {
        Tariff::Fixed(price)
    }

    /// Convenience constructor for a day/night TOU tariff.
    pub fn day_night(day: EnergyPrice, night: EnergyPrice) -> Tariff {
        Tariff::TimeOfUse(TouTariff::day_night(day, night))
    }

    /// Convenience constructor for a dynamic tariff over a price strip.
    pub fn dynamic(prices: PriceSeries, markup: EnergyPrice, fallback: EnergyPrice) -> Tariff {
        Tariff::Dynamic(DynamicTariff {
            prices,
            markup,
            fallback,
        })
    }

    /// The typology leaf this tariff is.
    pub fn kind(&self) -> crate::typology::ContractComponentKind {
        match self {
            Tariff::Fixed(_) | Tariff::Block(_) => {
                crate::typology::ContractComponentKind::FixedTariff
            }
            Tariff::TimeOfUse(_) => crate::typology::ContractComponentKind::TimeOfUseTariff,
            Tariff::Dynamic(_) => crate::typology::ContractComponentKind::DynamicTariff,
        }
    }

    /// The price in force at `t`. For a block tariff — whose marginal price
    /// depends on cumulative monthly volume, not the instant — this is the
    /// opening-block price; use [`Tariff::cost`] for exact billing.
    pub fn price_at(&self, cal: &Calendar, t: SimTime) -> EnergyPrice {
        match self {
            Tariff::Fixed(p) => *p,
            Tariff::Block(b) => b.blocks.first().map_or(EnergyPrice::ZERO, |s| s.price),
            Tariff::TimeOfUse(tou) => tou.price_at(cal, t),
            Tariff::Dynamic(d) => d.price_at(t),
        }
    }

    /// Materialize the tariff as a price strip on an arbitrary axis. Prices
    /// are sampled at interval starts.
    pub fn price_series(
        &self,
        cal: &Calendar,
        start: SimTime,
        step: Duration,
        n: usize,
    ) -> Result<PriceSeries> {
        Series::from_fn(start, step, n, |t| self.price_at(cal, t))
            .map_err(|e| CoreError::BadSeries(e.to_string()))
    }

    /// Energy cost of a load series under this tariff. Time-based tariffs
    /// price each interval at its start time; block tariffs accumulate
    /// volume per billing month and price through the marginal blocks.
    pub fn cost(&self, cal: &Calendar, load: &PowerSeries) -> Result<Money> {
        if load.is_empty() {
            return Ok(Money::ZERO);
        }
        if let Tariff::Block(b) = self {
            b.validate()?;
            let step_h = load.step().as_hours();
            let mut month_kwh: std::collections::BTreeMap<u64, f64> =
                std::collections::BTreeMap::new();
            for (t, p) in load.iter() {
                *month_kwh.entry(cal.billing_month(t)).or_insert(0.0) += p.as_kilowatts() * step_h;
            }
            return Ok(month_kwh
                .values()
                .map(|kwh| b.monthly_cost(*kwh))
                .fold(Money::ZERO, |a, m| a + m));
        }
        let prices = self.price_series(cal, load.start(), load.step(), load.len())?;
        load.cost_against(&prices)
            .map_err(|e| CoreError::BadSeries(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcgrid_units::{Month, Power};

    fn cal() -> Calendar {
        Calendar::default()
    }

    fn flat_load(hours: usize, mw: f64) -> PowerSeries {
        Series::constant(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            Power::from_megawatts(mw),
            hours,
        )
        .unwrap()
    }

    #[test]
    fn fixed_tariff_cost() {
        let t = Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.10));
        // 1 MW for 10 h at $0.10/kWh = $1000.
        let cost = t.cost(&cal(), &flat_load(10, 1.0)).unwrap();
        assert!((cost.as_dollars() - 1_000.0).abs() < 1e-6);
        assert_eq!(
            t.kind(),
            crate::typology::ContractComponentKind::FixedTariff
        );
    }

    #[test]
    fn day_night_windows() {
        let t = TouTariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.20),
            EnergyPrice::per_kilowatt_hour(0.05),
        );
        let c = cal();
        // Monday 10:00 → day price; Monday 22:00 → night; Saturday 10:00 → night.
        let mon_10 = SimTime::from_hours(10.0);
        let mon_22 = SimTime::from_hours(22.0);
        let sat_10 = SimTime::from_days(5) + Duration::from_hours(10.0);
        assert_eq!(t.price_at(&c, mon_10).as_dollars_per_kilowatt_hour(), 0.20);
        assert_eq!(t.price_at(&c, mon_22).as_dollars_per_kilowatt_hour(), 0.05);
        assert_eq!(t.price_at(&c, sat_10).as_dollars_per_kilowatt_hour(), 0.05);
        // Boundaries: 08:00 in, 20:00 out.
        assert_eq!(
            t.price_at(&c, SimTime::from_hours(8.0))
                .as_dollars_per_kilowatt_hour(),
            0.20
        );
        assert_eq!(
            t.price_at(&c, SimTime::from_hours(20.0))
                .as_dollars_per_kilowatt_hour(),
            0.05
        );
    }

    #[test]
    fn midnight_wrapping_window() {
        let tou = TouTariff {
            windows: vec![TouWindow {
                months: None,
                days: DayFilter::All,
                from: TimeOfDay::new(22, 0),
                to: TimeOfDay::new(6, 0),
                price: EnergyPrice::per_kilowatt_hour(0.03),
            }],
            base: EnergyPrice::per_kilowatt_hour(0.10),
        };
        let c = cal();
        assert_eq!(
            tou.price_at(&c, SimTime::from_hours(23.0))
                .as_dollars_per_kilowatt_hour(),
            0.03
        );
        assert_eq!(
            tou.price_at(&c, SimTime::from_hours(3.0))
                .as_dollars_per_kilowatt_hour(),
            0.03
        );
        assert_eq!(
            tou.price_at(&c, SimTime::from_hours(12.0))
                .as_dollars_per_kilowatt_hour(),
            0.10
        );
    }

    #[test]
    fn summer_peak_applies_only_in_summer() {
        let t = TouTariff::summer_peak(
            EnergyPrice::per_kilowatt_hour(0.30),
            EnergyPrice::per_kilowatt_hour(0.08),
        );
        let c = cal();
        // July 1 (day 181) is a... day 181 % 7 = 6 → Sunday. Use July 2 (Monday).
        let july_weekday_2pm = SimTime::from_days(182) + Duration::from_hours(14.0);
        assert_eq!(c.month(july_weekday_2pm), Month::July);
        assert!(!c.weekday(july_weekday_2pm).is_weekend());
        assert_eq!(
            t.price_at(&c, july_weekday_2pm)
                .as_dollars_per_kilowatt_hour(),
            0.30
        );
        // January 2 pm weekday → base.
        let jan_2pm = SimTime::from_hours(14.0);
        assert_eq!(t.price_at(&c, jan_2pm).as_dollars_per_kilowatt_hour(), 0.08);
    }

    #[test]
    fn tou_cost_integrates_windows() {
        // Day/night: 0.20 day (08:00–20:00 weekdays), 0.05 night.
        let t = Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.20),
            EnergyPrice::per_kilowatt_hour(0.05),
        );
        // Monday 24 h at 1 MW: 12 h day × 200 + 12 h night × 50 = 3000.
        let cost = t.cost(&cal(), &flat_load(24, 1.0)).unwrap();
        assert!((cost.as_dollars() - 3_000.0).abs() < 1e-6);
    }

    #[test]
    fn dynamic_tariff_tracks_strip() {
        let strip = PriceSeries::new(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            vec![
                EnergyPrice::per_kilowatt_hour(0.02),
                EnergyPrice::per_kilowatt_hour(0.50),
            ],
        )
        .unwrap();
        let t = Tariff::dynamic(
            strip,
            EnergyPrice::per_kilowatt_hour(0.01),
            EnergyPrice::per_kilowatt_hour(0.10),
        );
        let c = cal();
        assert!(
            (t.price_at(&c, SimTime::EPOCH)
                .as_dollars_per_kilowatt_hour()
                - 0.03)
                .abs()
                < 1e-12
        );
        assert!(
            (t.price_at(&c, SimTime::from_hours(1.5))
                .as_dollars_per_kilowatt_hour()
                - 0.51)
                .abs()
                < 1e-12
        );
        // Outside the strip: fallback.
        assert!(
            (t.price_at(&c, SimTime::from_hours(5.0))
                .as_dollars_per_kilowatt_hour()
                - 0.10)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn empty_load_costs_zero() {
        let t = Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.10));
        let empty = PowerSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap();
        assert_eq!(t.cost(&cal(), &empty).unwrap(), Money::ZERO);
    }

    #[test]
    fn price_series_materializes() {
        let t = Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.2),
            EnergyPrice::per_kilowatt_hour(0.1),
        );
        let strip = t
            .price_series(&cal(), SimTime::EPOCH, Duration::from_hours(1.0), 24)
            .unwrap();
        assert_eq!(strip.len(), 24);
        assert_eq!(strip.values()[12].as_dollars_per_kilowatt_hour(), 0.2);
        assert_eq!(strip.values()[2].as_dollars_per_kilowatt_hour(), 0.1);
    }

    #[test]
    fn block_tariff_validation() {
        let ok = BlockTariff {
            blocks: vec![
                BlockStep {
                    up_to_kwh: Some(1_000.0),
                    price: EnergyPrice::per_kilowatt_hour(0.12),
                },
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::per_kilowatt_hour(0.06),
                },
            ],
        };
        assert!(ok.validate().is_ok());
        let empty = BlockTariff { blocks: vec![] };
        assert!(empty.validate().is_err());
        let bounded_last = BlockTariff {
            blocks: vec![BlockStep {
                up_to_kwh: Some(10.0),
                price: EnergyPrice::ZERO,
            }],
        };
        assert!(bounded_last.validate().is_err());
        let non_increasing = BlockTariff {
            blocks: vec![
                BlockStep {
                    up_to_kwh: Some(100.0),
                    price: EnergyPrice::ZERO,
                },
                BlockStep {
                    up_to_kwh: Some(100.0),
                    price: EnergyPrice::ZERO,
                },
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::ZERO,
                },
            ],
        };
        assert!(non_increasing.validate().is_err());
        let middle_unbounded = BlockTariff {
            blocks: vec![
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::ZERO,
                },
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::ZERO,
                },
            ],
        };
        assert!(middle_unbounded.validate().is_err());
    }

    #[test]
    fn block_monthly_cost_marginal() {
        // 0.12 $/kWh for the first 1 000 kWh, 0.06 after (declining block).
        let b = BlockTariff {
            blocks: vec![
                BlockStep {
                    up_to_kwh: Some(1_000.0),
                    price: EnergyPrice::per_kilowatt_hour(0.12),
                },
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::per_kilowatt_hour(0.06),
                },
            ],
        };
        assert!((b.monthly_cost(500.0).as_dollars() - 60.0).abs() < 1e-9);
        assert!((b.monthly_cost(1_000.0).as_dollars() - 120.0).abs() < 1e-9);
        assert!((b.monthly_cost(2_000.0).as_dollars() - 180.0).abs() < 1e-9);
        assert_eq!(b.monthly_cost(0.0), Money::ZERO);
        assert_eq!(b.monthly_cost(-5.0), Money::ZERO);
    }

    #[test]
    fn block_tariff_cost_accumulates_per_month() {
        let b = BlockTariff {
            blocks: vec![
                BlockStep {
                    up_to_kwh: Some(1_000_000.0),
                    price: EnergyPrice::per_kilowatt_hour(0.12),
                },
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::per_kilowatt_hour(0.06),
                },
            ],
        };
        let t = Tariff::Block(b.clone());
        // 40 days of 2 MW: Jan gets 31d × 48 MWh = 1 488 MWh; Feb 9d × 48.
        let load = flat_load(40 * 24, 2.0);
        let cost = t.cost(&cal(), &load).unwrap();
        let jan = b.monthly_cost(31.0 * 48.0 * 1_000.0);
        let feb = b.monthly_cost(9.0 * 48.0 * 1_000.0);
        assert!((cost.as_dollars() - (jan + feb).as_dollars()).abs() < 1e-6);
        // Declining block: the marginal month is cheaper than the opening
        // price would suggest.
        let naive = load.total_energy().as_kilowatt_hours() * 0.12;
        assert!(cost.as_dollars() < naive);
        // Classification: still the typology's fixed leaf.
        assert_eq!(
            t.kind(),
            crate::typology::ContractComponentKind::FixedTariff
        );
    }

    #[test]
    fn kinds_map_to_typology() {
        use crate::typology::ContractComponentKind::*;
        assert_eq!(
            Tariff::day_night(EnergyPrice::ZERO, EnergyPrice::ZERO).kind(),
            TimeOfUseTariff
        );
        let strip = PriceSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap();
        assert_eq!(
            Tariff::dynamic(strip, EnergyPrice::ZERO, EnergyPrice::ZERO).kind(),
            DynamicTariff
        );
    }
}
