//! Qualitative coding of free-text survey answers.
//!
//! The survey used *open-ended* questions precisely because "ESP contracts
//! are all unique" (§3); the analysis then coded the prose answers into the
//! typology. This module implements that coding step as a transparent rule
//! lexicon: phrase patterns vote for or against each component, negation
//! phrases ("no demand charges") override assertions, and every decision is
//! traceable to the matched evidence — the audit trail a qualitative-methods
//! reviewer asks for.
//!
//! The lexicon is deliberately simple (no NLP dependencies); its job is to
//! make the published coding *reproducible from text*, not to parse
//! arbitrary English. [`code_answer`] returns matched evidence so a human
//! coder can review every assignment.

use crate::survey::corpus::{SiteId, SiteResponse};
use crate::survey::rnp::Rnp;
use crate::typology::ContractComponentKind;
use serde::Serialize;

/// One piece of matched evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Evidence {
    /// The component concerned.
    pub kind: ContractComponentKind,
    /// The phrase that matched.
    pub phrase: String,
    /// Whether the phrase asserts (true) or negates (false) the component.
    pub asserts: bool,
}

/// The coding of one free-text answer.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct AnswerCoding {
    /// Components asserted by the text (net of negations).
    pub present: Vec<ContractComponentKind>,
    /// All matched evidence, in match order.
    pub evidence: Vec<Evidence>,
}

impl AnswerCoding {
    /// Whether a component was coded present.
    pub fn has(&self, kind: ContractComponentKind) -> bool {
        self.present.contains(&kind)
    }
}

/// Assertion phrases per component (lower-case matching).
fn assertion_lexicon() -> Vec<(ContractComponentKind, &'static str)> {
    use ContractComponentKind::*;
    vec![
        (FixedTariff, "fixed price"),
        (FixedTariff, "fixed rate"),
        (FixedTariff, "fixed kwh tariff"),
        (FixedTariff, "flat rate"),
        (FixedTariff, "same price all year"),
        (TimeOfUseTariff, "time-of-use"),
        (TimeOfUseTariff, "time of use"),
        (TimeOfUseTariff, "day/night"),
        (TimeOfUseTariff, "day and night rates"),
        (TimeOfUseTariff, "seasonal pricing"),
        (TimeOfUseTariff, "peak hours cost more"),
        (DynamicTariff, "real-time price"),
        (DynamicTariff, "real-time market"),
        (DynamicTariff, "spot price"),
        (DynamicTariff, "spot market"),
        (DynamicTariff, "hourly market price"),
        (DynamicTariff, "dynamically variable"),
        (DemandCharge, "demand charge"),
        (DemandCharge, "demand charges"),
        (DemandCharge, "peak demand charge"),
        (DemandCharge, "billed on our peak"),
        (DemandCharge, "capacity charge"),
        (Powerband, "power band"),
        (Powerband, "powerband"),
        (Powerband, "consumption corridor"),
        (Powerband, "agreed band"),
        (Powerband, "upper and lower limit"),
        (EmergencyDr, "emergency"),
        (EmergencyDr, "grid emergencies"),
        (EmergencyDr, "mandatory curtailment"),
        (EmergencyDr, "interruptible"),
    ]
}

/// Negation prefixes: if one of these immediately precedes (within
/// `NEG_WINDOW` characters of) an assertion phrase, the phrase negates.
const NEGATIONS: [&str; 6] = ["no ", "not ", "without ", "removed", "never", "do not have"];
const NEG_WINDOW: usize = 48;

/// Code one free-text answer (e.g. to Q2 "pricing structure" or Q3
/// "obligations") into typology components.
pub fn code_answer(text: &str) -> AnswerCoding {
    let lower = text.to_lowercase();
    let mut coding = AnswerCoding::default();
    use std::collections::BTreeMap;
    let mut votes: BTreeMap<ContractComponentKind, i32> = BTreeMap::new();
    // Longest phrases first, so "demand charges" claims its span before the
    // substring "demand charge" can double-count it.
    let mut lexicon = assertion_lexicon();
    lexicon.sort_by_key(|(_, p)| std::cmp::Reverse(p.len()));
    let mut claimed: BTreeMap<ContractComponentKind, Vec<(usize, usize)>> = BTreeMap::new();
    for (kind, phrase) in lexicon {
        let mut from = 0;
        while let Some(pos) = lower[from..].find(phrase) {
            let abs = from + pos;
            let end = abs + phrase.len();
            from = end;
            let spans = claimed.entry(kind).or_default();
            if spans.iter().any(|(s, e)| abs < *e && end > *s) {
                continue; // span already matched by a longer phrase
            }
            spans.push((abs, end));
            let mut window_start = abs.saturating_sub(NEG_WINDOW);
            while !lower.is_char_boundary(window_start) {
                window_start -= 1;
            }
            let window = &lower[window_start..abs];
            // A sentence boundary resets negation scope.
            let window = window.rsplit(['.', ';']).next().unwrap_or(window);
            let negated = NEGATIONS.iter().any(|n| window.contains(n));
            coding.evidence.push(Evidence {
                kind,
                phrase: phrase.to_string(),
                asserts: !negated,
            });
            *votes.entry(kind).or_insert(0) += if negated { -1 } else { 1 };
        }
    }
    coding.present = votes
        .into_iter()
        .filter(|(_, v)| *v > 0)
        .map(|(k, _)| k)
        .collect();
    coding
}

/// Code the Q1 answer (negotiation responsibility) into an RNP.
pub fn code_rnp(text: &str) -> Option<Rnp> {
    let lower = text.to_lowercase();
    // Most specific first: external multi-site bodies, then internal
    // campus/university organizations, then the center itself.
    if [
        "department of energy",
        "doe",
        "ministry",
        "national procurement",
        "external organization",
        "parent agency",
    ]
    .iter()
    .any(|p| lower.contains(p))
    {
        return Some(Rnp::ExternalOrganization);
    }
    if [
        "university",
        "campus",
        "facilities department",
        "institute",
        "internal organization",
        "utility division",
    ]
    .iter()
    .any(|p| lower.contains(p))
    {
        return Some(Rnp::InternalOrganization);
    }
    if [
        "we negotiate",
        "the center negotiates",
        "ourselves",
        "our own staff",
        "the hpc facility itself",
    ]
    .iter()
    .any(|p| lower.contains(p))
    {
        return Some(Rnp::SupercomputingCenter);
    }
    None
}

/// Code a full interview (Q1 + Q2/Q3 text) into a Table 2 row.
pub fn code_interview(
    site: SiteId,
    q1_answer: &str,
    contract_answers: &str,
) -> Option<SiteResponse> {
    let rnp = code_rnp(q1_answer)?;
    let coding = code_answer(contract_answers);
    Some(SiteResponse {
        site,
        demand_charges: coding.has(ContractComponentKind::DemandCharge),
        powerband: coding.has(ContractComponentKind::Powerband),
        fixed: coding.has(ContractComponentKind::FixedTariff),
        variable: coding.has(ContractComponentKind::TimeOfUseTariff),
        dynamic: coding.has(ContractComponentKind::DynamicTariff),
        emergency_dr: coding.has(ContractComponentKind::EmergencyDr),
        rnp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ContractComponentKind::*;

    #[test]
    fn codes_simple_assertions() {
        let c = code_answer(
            "We pay a fixed price per kWh, and there is a demand charge based \
             on our monthly peak.",
        );
        assert!(c.has(FixedTariff));
        assert!(c.has(DemandCharge));
        assert!(!c.has(Powerband));
        assert!(!c.has(DynamicTariff));
        assert!(c.evidence.len() >= 2);
    }

    #[test]
    fn negation_flips_a_component() {
        let c = code_answer(
            "Our new contract has no demand charges; we pay a fixed rate and \
             agreed to a power band with our provider.",
        );
        assert!(!c.has(DemandCharge), "negated demand charge coded present");
        assert!(c.has(FixedTariff));
        assert!(c.has(Powerband));
        // The negated match is still in the evidence trail.
        assert!(c
            .evidence
            .iter()
            .any(|e| e.kind == DemandCharge && !e.asserts));
    }

    #[test]
    fn sentence_boundary_limits_negation() {
        let c = code_answer("There is no powerband. Demand charges apply every month.");
        assert!(!c.has(Powerband));
        assert!(
            c.has(DemandCharge),
            "negation must not leak past the period"
        );
    }

    #[test]
    fn codes_dynamic_and_emergency() {
        let c = code_answer(
            "Part of our consumption is billed at the hourly market price \
             (spot market), and during grid emergencies we are obliged to \
             curtail to a set limit.",
        );
        assert!(c.has(DynamicTariff));
        assert!(c.has(EmergencyDr));
    }

    #[test]
    fn rnp_coding() {
        assert_eq!(
            code_rnp("The Department of Energy negotiates for all our labs."),
            Some(Rnp::ExternalOrganization)
        );
        assert_eq!(
            code_rnp("The university facilities department handles the contract."),
            Some(Rnp::InternalOrganization)
        );
        assert_eq!(
            code_rnp("We negotiate directly with the utility ourselves."),
            Some(Rnp::SupercomputingCenter)
        );
        assert_eq!(code_rnp("It is complicated."), None);
    }

    #[test]
    fn full_interview_recovers_a_table2_row() {
        // Site 7's row: demand charges + powerband + dynamic + emergency,
        // internal RNP.
        let row = code_interview(
            SiteId(7),
            "Contract negotiation is handled by our institute's utility division.",
            "Pricing follows the real-time market. We have a contractually \
             agreed band — consumption outside the upper and lower limit is \
             penalized — plus demand charges on monthly peaks. In grid \
             emergencies we must curtail when called.",
        )
        .expect("codable interview");
        assert_eq!(row.rnp, Rnp::InternalOrganization);
        assert!(row.demand_charges && row.powerband && row.dynamic && row.emergency_dr);
        assert!(!row.fixed && !row.variable);
        // Identical to the published Site 7 row.
        let published = crate::survey::corpus::SurveyCorpus::published();
        assert_eq!(&row, &published.responses()[6]);
    }

    #[test]
    fn uncodable_rnp_yields_none() {
        assert!(code_interview(SiteId(1), "unclear", "fixed price").is_none());
    }

    #[test]
    fn multibyte_text_near_window_boundary() {
        // Regression: the negation window must not split a multi-byte char.
        let c = code_answer(
            "our energy is settled at the hourly market price — a real-time \
             price pass-through — and we pay demand charges on peaks.",
        );
        assert!(c.has(DynamicTariff));
        assert!(c.has(DemandCharge));
    }

    #[test]
    fn repeated_phrases_accumulate_votes() {
        // One negation vs two assertions: assertions win.
        let c = code_answer(
            "We removed demand charges in 2014. They reintroduced a demand \
             charge in 2016, and the demand charge has grown since.",
        );
        assert!(c.has(DemandCharge));
    }
}
