//! The survey: instrument, corpus, coding, and analysis.
//!
//! The paper's data is a qualitative survey of ten SC sites ("HPC power
//! contracts and grid integration", 2016). This module encodes:
//!
//! * the **instrument** — the six questions of §3.1 with their stated
//!   motivations;
//! * the **corpus** — Table 1 (sites and countries) and Table 2 (per-site
//!   contract-component matrix and responsible negotiating party), plus the
//!   aggregate prose facts of §3.3–§3.4;
//! * the **coding** step — deriving a Table 2 row from a typed [`crate::contract::Contract`],
//!   so the published matrix is *regenerated* from contract objects rather
//!   than transcribed;
//! * the **analysis** — component counts, text-vs-table consistency checks
//!   (the paper's own prose and table disagree in four cells), RNP
//!   distribution, and the US-vs-EU permutation analysis behind the "no
//!   geographic trends" finding.

pub mod analysis;
pub mod coding;
pub mod corpus;
pub mod instrument;
pub mod power_analysis;
pub mod qualitative;
pub mod rnp;

pub use corpus::{SiteResponse, SurveyCorpus};
pub use rnp::Rnp;
