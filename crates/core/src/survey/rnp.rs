//! Responsible negotiating parties (paper §3.3).

use serde::{Deserialize, Serialize};

/// The actor with main responsibility for negotiating the electricity
/// procurement contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum Rnp {
    /// The supercomputing center itself negotiates (1 of 10 sites; a
    /// geographically isolated data-center site).
    SupercomputingCenter,
    /// An internal organization of the same multi-function site — a
    /// university or government organization (6 of 10 sites).
    InternalOrganization,
    /// An external organization responsible for more than one site, possibly
    /// spanning regions and legal entities (3 of 10 sites; for two of them
    /// the U.S. Department of Energy).
    ExternalOrganization,
}

impl Rnp {
    /// All variants.
    pub const ALL: [Rnp; 3] = [
        Rnp::SupercomputingCenter,
        Rnp::InternalOrganization,
        Rnp::ExternalOrganization,
    ];

    /// Label as used in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            Rnp::SupercomputingCenter => "SC",
            Rnp::InternalOrganization => "Internal",
            Rnp::ExternalOrganization => "External",
        }
    }

    /// The paper's qualitative ranking of how much operational domain
    /// knowledge the negotiating party has about the SC (higher = more):
    /// the SC itself knows most, an internal org "may have some insight",
    /// an external org has "minimal" knowledge.
    pub fn domain_knowledge_rank(self) -> u8 {
        match self {
            Rnp::SupercomputingCenter => 2,
            Rnp::InternalOrganization => 1,
            Rnp::ExternalOrganization => 0,
        }
    }
}

impl std::fmt::Display for Rnp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table2() {
        assert_eq!(Rnp::SupercomputingCenter.label(), "SC");
        assert_eq!(Rnp::InternalOrganization.label(), "Internal");
        assert_eq!(Rnp::ExternalOrganization.label(), "External");
    }

    #[test]
    fn knowledge_ranking_is_strict() {
        assert!(
            Rnp::SupercomputingCenter.domain_knowledge_rank()
                > Rnp::InternalOrganization.domain_knowledge_rank()
        );
        assert!(
            Rnp::InternalOrganization.domain_knowledge_rank()
                > Rnp::ExternalOrganization.domain_knowledge_rank()
        );
    }
}
