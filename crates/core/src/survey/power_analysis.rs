//! Statistical power analysis for the geographic-trend question.
//!
//! E9 showed the published 10-site sample can barely reach nominal
//! significance under *any* assignment. The natural follow-up — useful to
//! anyone designing the next EE HPC WG survey — is: **how many sites would
//! a survey need** before a real US/EU difference of a given size becomes
//! detectable? This module computes exact (enumerated) power for Fisher's
//! exact test on two independent binomial samples.

use crate::survey::analysis::{choose, fisher_two_sided};
use serde::{Deserialize, Serialize};

/// Binomial PMF.
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    choose(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// Exact power of the two-sided Fisher test at level `alpha` to detect a
/// difference between prevalence `p_a` (sample of `n_a`) and `p_b`
/// (sample of `n_b`): the probability, over both binomials, that the
/// conditional test rejects.
pub fn exact_power(p_a: f64, n_a: u64, p_b: f64, n_b: u64, alpha: f64) -> f64 {
    let mut power = 0.0;
    for k_a in 0..=n_a {
        let pa = binomial_pmf(n_a, k_a, p_a);
        if pa == 0.0 {
            continue;
        }
        for k_b in 0..=n_b {
            let pb = binomial_pmf(n_b, k_b, p_b);
            if pb == 0.0 {
                continue;
            }
            let p_value = fisher_two_sided(n_a + n_b, k_a + k_b, n_a, k_a);
            if p_value <= alpha {
                power += pa * pb;
            }
        }
    }
    power.min(1.0)
}

/// Result of a sample-size search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSizeResult {
    /// Per-region sample size found.
    pub n_per_region: u64,
    /// Power achieved at that size.
    pub power: f64,
}

/// Smallest equal per-region sample size whose exact power reaches
/// `target_power` at level `alpha`, searching up to `max_n`. `None` if even
/// `max_n` is insufficient (e.g. when `p_a == p_b`).
pub fn required_sample_size(
    p_a: f64,
    p_b: f64,
    alpha: f64,
    target_power: f64,
    max_n: u64,
) -> Option<SampleSizeResult> {
    for n in 2..=max_n {
        let power = exact_power(p_a, n, p_b, n, alpha);
        if power >= target_power {
            return Some(SampleSizeResult {
                n_per_region: n,
                power,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=10).map(|k| binomial_pmf(10, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(binomial_pmf(5, 7, 0.5), 0.0);
    }

    #[test]
    fn power_at_the_papers_sample_is_negligible() {
        // Even a huge true difference (80 % vs 20 %) is nearly undetectable
        // with 4 US and 6 EU sites.
        let power = exact_power(0.8, 4, 0.2, 6, 0.05);
        assert!(power < 0.45, "power at n=10 was {power}");
    }

    #[test]
    fn power_grows_with_sample_size() {
        let p_small = exact_power(0.8, 5, 0.2, 5, 0.05);
        let p_mid = exact_power(0.8, 15, 0.2, 15, 0.05);
        let p_large = exact_power(0.8, 30, 0.2, 30, 0.05);
        assert!(p_small < p_mid && p_mid < p_large);
        assert!(p_large > 0.99);
    }

    #[test]
    fn power_grows_with_effect_size() {
        let weak = exact_power(0.6, 15, 0.4, 15, 0.05);
        let strong = exact_power(0.9, 15, 0.1, 15, 0.05);
        assert!(strong > weak);
    }

    #[test]
    fn no_effect_never_reaches_power() {
        // Identical prevalences: the test's rejection rate stays ≈ alpha.
        let p = exact_power(0.5, 20, 0.5, 20, 0.05);
        assert!(p < 0.06, "type-I-rate-as-power was {p}");
        assert!(required_sample_size(0.5, 0.5, 0.05, 0.8, 40).is_none());
    }

    #[test]
    fn required_sample_size_for_large_effect() {
        let r = required_sample_size(0.8, 0.2, 0.05, 0.8, 60).expect("detectable");
        assert!(r.power >= 0.8);
        // A survey would need well over the paper's 10 sites.
        assert!(r.n_per_region > 5, "n = {}", r.n_per_region);
        assert!(r.n_per_region <= 25, "n = {}", r.n_per_region);
        // And the found n is minimal: one less fails.
        let prev = exact_power(0.8, r.n_per_region - 1, 0.2, r.n_per_region - 1, 0.05);
        assert!(prev < 0.8);
    }
}
