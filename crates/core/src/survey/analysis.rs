//! Survey analysis: counts, consistency checks, and the geographic-trend
//! question.
//!
//! Three analyses back the paper's findings:
//!
//! 1. **Component counts** (§3.2.4) — how many sites have each typology
//!    component.
//! 2. **Text-vs-table consistency** — the paper's prose counts and the
//!    printed Table 2 disagree in four cells; rather than silently adopting
//!    one, [`text_vs_table`] reports every discrepancy.
//! 3. **Geographic trends** (§3) — the paper found "not a difference between
//!    SCs in Europe and the United States". Table 2 does not publish the
//!    row→country mapping, so [`geo_trend_feasibility`] asks the sharper
//!    question the data *can* answer: with 4 US and 6 EU sites, could *any*
//!    assignment of rows to regions make a component's US/EU split
//!    statistically significant? (Exact hypergeometric tails.) The answer:
//!    only the single most extreme split of a component can dip to
//!    p ≈ 1/30; every realistic split is far from significance. The
//!    paper's null finding is close to what the sample size guarantees.

use crate::survey::corpus::{ProseFacts, SurveyCorpus};
use crate::survey::rnp::Rnp;
use crate::typology::ContractComponentKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Count of sites having each component kind.
pub fn component_counts(corpus: &SurveyCorpus) -> BTreeMap<ContractComponentKind, usize> {
    let mut map = BTreeMap::new();
    for kind in ContractComponentKind::ALL {
        let n = corpus.responses().iter().filter(|r| r.has(kind)).count();
        map.insert(kind, n);
    }
    map
}

/// RNP distribution (§3.3).
pub fn rnp_distribution(corpus: &SurveyCorpus) -> BTreeMap<Rnp, usize> {
    let mut map = BTreeMap::new();
    for rnp in Rnp::ALL {
        map.insert(
            rnp,
            corpus.responses().iter().filter(|r| r.rnp == rnp).count(),
        );
    }
    map
}

/// A 2×2 co-occurrence table between two components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossTab {
    /// Sites with both components.
    pub both: usize,
    /// Sites with only the first.
    pub only_a: usize,
    /// Sites with only the second.
    pub only_b: usize,
    /// Sites with neither.
    pub neither: usize,
}

/// Cross-tabulate two component kinds.
pub fn cross_tab(
    corpus: &SurveyCorpus,
    a: ContractComponentKind,
    b: ContractComponentKind,
) -> CrossTab {
    let mut t = CrossTab {
        both: 0,
        only_a: 0,
        only_b: 0,
        neither: 0,
    };
    for r in corpus.responses() {
        match (r.has(a), r.has(b)) {
            (true, true) => t.both += 1,
            (true, false) => t.only_a += 1,
            (false, true) => t.only_b += 1,
            (false, false) => t.neither += 1,
        }
    }
    t
}

/// One text-vs-table discrepancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Discrepancy {
    /// The component concerned.
    pub kind: ContractComponentKind,
    /// Count of check marks in the printed Table 2.
    pub table_count: usize,
    /// Count stated in the paper's prose (§3.2.4).
    pub text_count: usize,
}

/// Compare the printed Table 2 against the §3.2.4 prose counts; returns one
/// entry per component, discrepant or not (callers filter).
pub fn text_vs_table(corpus: &SurveyCorpus, facts: &ProseFacts) -> Vec<Discrepancy> {
    let counts = component_counts(corpus);
    let text = |kind: ContractComponentKind| match kind {
        ContractComponentKind::FixedTariff => facts.fixed_count_text,
        ContractComponentKind::TimeOfUseTariff => facts.tou_count_text,
        ContractComponentKind::DynamicTariff => facts.dynamic_count_text,
        ContractComponentKind::DemandCharge => facts.demand_charge_count_text,
        ContractComponentKind::Powerband => facts.powerband_count_text,
        ContractComponentKind::EmergencyDr => facts.emergency_count_text,
    };
    ContractComponentKind::ALL
        .iter()
        .map(|&kind| Discrepancy {
            kind,
            table_count: counts[&kind],
            text_count: text(kind),
        })
        .collect()
}

/// Only the rows where table and text disagree.
pub fn discrepancies(corpus: &SurveyCorpus, facts: &ProseFacts) -> Vec<Discrepancy> {
    text_vs_table(corpus, facts)
        .into_iter()
        .filter(|d| d.table_count != d.text_count)
        .collect()
}

// ---------------------------------------------------------------------------
// Exact hypergeometric machinery for the geographic-trend question.
// ---------------------------------------------------------------------------

/// Binomial coefficient as f64 (exact for the small arguments used here).
pub fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Hypergeometric PMF: probability that `k` of the `draws` sampled sites
/// (the US group) have the component, when `succ` of `pop` sites have it.
pub fn hypergeom_pmf(pop: u64, succ: u64, draws: u64, k: u64) -> f64 {
    if k > succ || draws > pop || k > draws || succ.saturating_sub(k) > pop - draws {
        return 0.0;
    }
    choose(succ, k) * choose(pop - succ, draws - k) / choose(pop, draws)
}

/// Two-sided exact p-value for observing `k` component-positive sites in the
/// US group: the total probability of outcomes at most as likely as `k`
/// (Fisher's exact convention).
pub fn fisher_two_sided(pop: u64, succ: u64, draws: u64, k: u64) -> f64 {
    let p_obs = hypergeom_pmf(pop, succ, draws, k);
    let mut total = 0.0;
    let lo = succ.saturating_sub(pop - draws);
    let hi = succ.min(draws);
    for j in lo..=hi {
        let pj = hypergeom_pmf(pop, succ, draws, j);
        if pj <= p_obs * (1.0 + 1e-9) {
            total += pj;
        }
    }
    total.min(1.0)
}

/// For one component: the smallest two-sided p-value any row→region
/// assignment could achieve, given only the marginal counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoFeasibility {
    /// Component.
    pub kind: ContractComponentKind,
    /// Sites having the component (out of `pop`).
    pub present: usize,
    /// Total sites.
    pub pop: usize,
    /// US-group size.
    pub us: usize,
    /// Minimum achievable two-sided p-value over all assignments.
    pub min_p_two_sided: f64,
    /// Whether any assignment could reach p < 0.05.
    pub significance_possible: bool,
}

/// Evaluate [`GeoFeasibility`] for every component of the corpus, with
/// `us_sites` of the rows belonging to the United States (4 in the paper).
pub fn geo_trend_feasibility(corpus: &SurveyCorpus, us_sites: usize) -> Vec<GeoFeasibility> {
    let pop = corpus.len() as u64;
    let draws = us_sites as u64;
    component_counts(corpus)
        .into_iter()
        .map(|(kind, present)| {
            let succ = present as u64;
            let lo = succ.saturating_sub(pop - draws);
            let hi = succ.min(draws);
            let mut min_p = 1.0f64;
            for k in lo..=hi {
                min_p = min_p.min(fisher_two_sided(pop, succ, draws, k));
            }
            GeoFeasibility {
                kind,
                present,
                pop: pop as usize,
                us: us_sites,
                min_p_two_sided: min_p,
                significance_possible: min_p < 0.05,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> SurveyCorpus {
        SurveyCorpus::published()
    }

    #[test]
    fn counts_match_printed_table() {
        let c = component_counts(&corpus());
        assert_eq!(c[&ContractComponentKind::DemandCharge], 7);
        assert_eq!(c[&ContractComponentKind::Powerband], 5);
        assert_eq!(c[&ContractComponentKind::FixedTariff], 7);
        assert_eq!(c[&ContractComponentKind::TimeOfUseTariff], 2);
        assert_eq!(c[&ContractComponentKind::DynamicTariff], 3);
        assert_eq!(c[&ContractComponentKind::EmergencyDr], 2);
    }

    #[test]
    fn rnp_distribution_counts() {
        let d = rnp_distribution(&corpus());
        assert_eq!(d[&Rnp::SupercomputingCenter], 1);
        assert_eq!(d[&Rnp::InternalOrganization], 6);
        assert_eq!(d[&Rnp::ExternalOrganization], 3);
    }

    #[test]
    fn cross_tab_demand_charge_vs_powerband() {
        let t = cross_tab(
            &corpus(),
            ContractComponentKind::DemandCharge,
            ContractComponentKind::Powerband,
        );
        // Sites with both: 2, 5, 7, 9 → 4. DC only: 1, 3, 4 → 3.
        // PB only: 6 → 1. Neither: 8, 10 → 2.
        assert_eq!(t.both, 4);
        assert_eq!(t.only_a, 3);
        assert_eq!(t.only_b, 1);
        assert_eq!(t.neither, 2);
        assert_eq!(t.both + t.only_a + t.only_b + t.neither, 10);
    }

    #[test]
    fn paper_discrepancies_detected() {
        let d = discrepancies(&corpus(), &ProseFacts::published());
        // Four cells disagree between prose and table: demand charges
        // (7 vs 8), fixed (7 vs 8), TOU (2 vs 3), dynamic (3 vs 2).
        assert_eq!(d.len(), 4);
        let get = |kind| d.iter().find(|x| x.kind == kind).unwrap();
        let dc = get(ContractComponentKind::DemandCharge);
        assert_eq!((dc.table_count, dc.text_count), (7, 8));
        let f = get(ContractComponentKind::FixedTariff);
        assert_eq!((f.table_count, f.text_count), (7, 8));
        let v = get(ContractComponentKind::TimeOfUseTariff);
        assert_eq!((v.table_count, v.text_count), (2, 3));
        let dy = get(ContractComponentKind::DynamicTariff);
        assert_eq!((dy.table_count, dy.text_count), (3, 2));
        // Powerband and emergency agree.
        assert!(!d.iter().any(|x| x.kind == ContractComponentKind::Powerband
            || x.kind == ContractComponentKind::EmergencyDr));
    }

    #[test]
    fn choose_small_values() {
        assert_eq!(choose(10, 4), 210.0);
        assert_eq!(choose(5, 0), 1.0);
        assert_eq!(choose(5, 5), 1.0);
        assert_eq!(choose(4, 7), 0.0);
    }

    #[test]
    fn hypergeom_pmf_sums_to_one() {
        let (pop, succ, draws) = (10u64, 5u64, 4u64);
        let total: f64 = (0..=4).map(|k| hypergeom_pmf(pop, succ, draws, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fisher_two_sided_properties() {
        // Most extreme split for a 5-of-10 component: all 4 US sites have
        // it. Both symmetric tails (k=4 and k=0) have pmf 5/210, so the
        // two-sided p is 10/210 ≈ 0.0476.
        let p_extreme = fisher_two_sided(10, 5, 4, 4);
        let p_balanced = fisher_two_sided(10, 5, 4, 2);
        assert!(p_extreme < p_balanced);
        assert!(p_balanced > 0.5);
        assert!((p_extreme - 10.0 / 210.0).abs() < 1e-9);
    }

    #[test]
    fn geo_significance_floor_is_one_thirtieth() {
        // The sharper form of the "no geographic trends" finding: with 4 US
        // and 6 EU sites, even the most extreme assignment of any component
        // can only reach p = 7/210 = 1/30, and balanced splits (which is
        // what the paper observed) are nowhere near significance.
        let feas = geo_trend_feasibility(&corpus(), 4);
        let get = |kind| {
            feas.iter()
                .find(|g| g.kind == kind)
                .copied()
                .unwrap()
                .min_p_two_sided
        };
        let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
        // present=7 (demand charges, fixed): min p = 7/210.
        assert!(close(get(ContractComponentKind::DemandCharge), 7.0 / 210.0));
        assert!(close(get(ContractComponentKind::FixedTariff), 7.0 / 210.0));
        // present=5 (powerband): min p = 10/210.
        assert!(close(get(ContractComponentKind::Powerband), 10.0 / 210.0));
        // present=3 (dynamic): min p = 7/210.
        assert!(close(
            get(ContractComponentKind::DynamicTariff),
            7.0 / 210.0
        ));
        // present=2 (TOU, emergency): min p = 28/210 — cannot be significant.
        assert!(close(
            get(ContractComponentKind::TimeOfUseTariff),
            28.0 / 210.0
        ));
        assert!(close(get(ContractComponentKind::EmergencyDr), 28.0 / 210.0));
        // Global floor: nothing below 1/30.
        for g in &feas {
            assert!(g.min_p_two_sided >= 1.0 / 30.0 - 1e-9);
        }
        // A balanced split of a 5-of-10 component (2 US / 3 EU) is far from
        // significant.
        assert!(fisher_two_sided(10, 5, 4, 2) > 0.5);
    }

    #[test]
    fn significance_possible_with_larger_samples() {
        // Sanity: the same machinery does find significance achievable when
        // the sample is larger (e.g. 40 sites, 16 US, component at 20).
        let min_p = fisher_two_sided(40, 20, 16, 16);
        assert!(min_p < 0.05, "large-sample extreme split p = {min_p}");
    }
}
