//! The encoded survey corpus: Tables 1 and 2, and the aggregate prose facts.
//!
//! Table 2 is encoded *exactly as printed*, check-mark for check-mark. The
//! paper's own prose (§3.2.4) gives slightly different counts for four
//! components; both encodings are kept and the discrepancy is surfaced by
//! [`crate::survey::analysis::text_vs_table`], not silently "fixed".
//!
//! Per-site facts the paper publishes only in aggregate (e.g. "six of the
//! ten SCs communicate swings in load") are stored as aggregate constants in
//! [`ProseFacts`]; no synthetic per-site assignment is invented for them.

use crate::contract::Contract;
use crate::demand_charge::DemandCharge;
use crate::emergency::EmergencyDrClause;
use crate::powerband::Powerband;
use crate::survey::rnp::Rnp;
use crate::tariff::{Tariff, TouTariff};
use crate::typology::ContractComponentKind;
use hpcgrid_timeseries::series::{PriceSeries, Series};
use hpcgrid_units::{DemandPrice, Duration, EnergyPrice, Money, Power, SimTime};
use serde::{Deserialize, Serialize};

/// Anonymous site identifier, 1–10 as in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SiteId(pub u8);

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Site {}", self.0)
    }
}

/// One row of Table 2: a site's contract components and its RNP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteResponse {
    /// Anonymous site id.
    pub site: SiteId,
    /// Demand-charges column.
    pub demand_charges: bool,
    /// Powerband column.
    pub powerband: bool,
    /// Fixed-tariff column.
    pub fixed: bool,
    /// Variable (time-of-use) tariff column.
    pub variable: bool,
    /// Dynamic-tariff column.
    pub dynamic: bool,
    /// Emergency-DR column.
    pub emergency_dr: bool,
    /// Responsible negotiating party column.
    pub rnp: Rnp,
}

impl SiteResponse {
    /// Whether the row has the given component kind checked.
    pub fn has(&self, kind: ContractComponentKind) -> bool {
        match kind {
            ContractComponentKind::DemandCharge => self.demand_charges,
            ContractComponentKind::Powerband => self.powerband,
            ContractComponentKind::FixedTariff => self.fixed,
            ContractComponentKind::TimeOfUseTariff => self.variable,
            ContractComponentKind::DynamicTariff => self.dynamic,
            ContractComponentKind::EmergencyDr => self.emergency_dr,
        }
    }

    /// A synthetic but *typology-consistent* contract for this site: it
    /// contains exactly the component kinds the row checks. Prices are
    /// stylized (they are the one thing the survey deliberately did not
    /// collect: "We do not need information on the actual price").
    /// Power-domain components are sized for a flagship ~10 MW site; use
    /// [`SiteResponse::reference_contract_scaled`] to fit another load.
    pub fn reference_contract(&self) -> Contract {
        self.reference_contract_scaled(Power::from_megawatts(10.0))
    }

    /// Like [`SiteResponse::reference_contract`], but with the kW-domain
    /// components (powerband, emergency limit) sized around `nominal` load.
    pub fn reference_contract_scaled(&self, nominal: Power) -> Contract {
        let mut b = Contract::builder(format!("{}", self.site));
        if self.fixed {
            b = b.tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)));
        }
        if self.variable {
            // A variable service charge on top (how the two fixed+variable
            // sites described their contracts).
            b = b.tariff(Tariff::TimeOfUse(TouTariff::day_night(
                EnergyPrice::per_kilowatt_hour(0.02),
                EnergyPrice::ZERO,
            )));
        }
        if self.dynamic {
            // A one-year hourly strip placeholder: flat here; experiments
            // substitute real market strips.
            let strip: PriceSeries = Series::constant(
                SimTime::EPOCH,
                Duration::from_hours(1.0),
                EnergyPrice::per_kilowatt_hour(0.05),
                24 * 365,
            )
            .expect("valid strip");
            b = b.tariff(Tariff::dynamic(
                strip,
                EnergyPrice::per_kilowatt_hour(0.01),
                EnergyPrice::per_kilowatt_hour(0.07),
            ));
        }
        if self.demand_charges {
            b = b.demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)));
        }
        if self.powerband {
            b = b.powerband(Powerband::symmetric(
                nominal,
                nominal * 0.2,
                EnergyPrice::per_kilowatt_hour(0.35),
            ));
        }
        if self.emergency_dr {
            b = b.emergency(EmergencyDrClause::reference(nominal * 0.5));
        }
        // Rows with no tariff checked (Site 4/7/8 have only dynamic; Site 4
        // row in the printed table has dynamic ✓ so every row does have a
        // tariff) — but guard anyway with a fixed fallback.
        let contract = b.monthly_fee(Money::from_dollars(500.0)).build();
        match contract {
            Ok(c) => c,
            Err(crate::CoreError::NoTariff) => Contract::builder(format!("{}", self.site))
                .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
                .monthly_fee(Money::from_dollars(500.0))
                .build()
                .expect("fallback contract is valid"),
            Err(e) => unreachable!("reference contracts are valid: {e}"),
        }
    }
}

/// A named interview site from Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterviewSite {
    /// Site name as printed.
    pub name: &'static str,
    /// Country as printed.
    pub country: &'static str,
}

/// Aggregate facts the paper states in prose (with section references).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProseFacts {
    /// §3.2.4: "Eight of the ten sites had a fixed kWh tariff".
    pub fixed_count_text: usize,
    /// §3.2.4: time-of-use "seen in three out of the ten sites".
    pub tou_count_text: usize,
    /// §3.2.4: "two SCs have at least some aspect ... dynamically variable".
    pub dynamic_count_text: usize,
    /// §3.2.4: "five out of the ten sites are subject to a powerband".
    pub powerband_count_text: usize,
    /// §3.2.4: "Eight of the ten sites surveyed had a demand charge".
    pub demand_charge_count_text: usize,
    /// §3.2.4: "two sites mention that they offer mandatory services".
    pub emergency_count_text: usize,
    /// §3.4: "Six of the ten SCs communicate swings in load to their ESPs."
    pub communicates_swings_count: usize,
    /// §3.4: "3 sites are on a time-based dynamic tariff, they do not
    /// employ any DR strategies".
    pub dynamic_tariff_sites_without_dr: usize,
    /// §3.3: external-RNP sites with the U.S. DOE as the external actor.
    pub doe_external_count: usize,
    /// §3: invitations sent.
    pub invited: usize,
    /// §3: invited share of Top50 gov/academic sites in EU+US.
    pub invited_share_of_top50: f64,
    /// §3: "the response rate to the survey was approximately 50 %".
    pub stated_response_rate: f64,
    /// Abstract/§3: sites that completed the survey (Table 1 lists ten).
    pub completed: usize,
}

impl ProseFacts {
    /// The published values.
    pub fn published() -> ProseFacts {
        ProseFacts {
            fixed_count_text: 8,
            tou_count_text: 3,
            dynamic_count_text: 2,
            powerband_count_text: 5,
            demand_charge_count_text: 8,
            emergency_count_text: 2,
            communicates_swings_count: 6,
            dynamic_tariff_sites_without_dr: 3,
            doe_external_count: 2,
            invited: 10,
            invited_share_of_top50: 0.30,
            stated_response_rate: 0.50,
            completed: 10,
        }
    }
}

/// The full encoded corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveyCorpus {
    responses: Vec<SiteResponse>,
}

impl SurveyCorpus {
    /// The corpus exactly as printed in Table 2.
    pub fn published() -> SurveyCorpus {
        use Rnp::*;
        let row = |site: u8, dc: bool, pb: bool, f: bool, v: bool, d: bool, e: bool, rnp: Rnp| {
            SiteResponse {
                site: SiteId(site),
                demand_charges: dc,
                powerband: pb,
                fixed: f,
                variable: v,
                dynamic: d,
                emergency_dr: e,
                rnp,
            }
        };
        SurveyCorpus {
            responses: vec![
                row(
                    1,
                    true,
                    false,
                    true,
                    true,
                    false,
                    false,
                    ExternalOrganization,
                ),
                row(
                    2,
                    true,
                    true,
                    true,
                    false,
                    false,
                    false,
                    InternalOrganization,
                ),
                row(
                    3,
                    true,
                    false,
                    true,
                    false,
                    false,
                    true,
                    InternalOrganization,
                ),
                row(
                    4,
                    true,
                    false,
                    false,
                    false,
                    true,
                    false,
                    InternalOrganization,
                ),
                row(
                    5,
                    true,
                    true,
                    true,
                    false,
                    false,
                    false,
                    InternalOrganization,
                ),
                row(
                    6,
                    false,
                    true,
                    true,
                    false,
                    false,
                    false,
                    SupercomputingCenter,
                ),
                row(
                    7,
                    true,
                    true,
                    false,
                    false,
                    true,
                    true,
                    InternalOrganization,
                ),
                row(
                    8,
                    false,
                    false,
                    false,
                    false,
                    true,
                    false,
                    InternalOrganization,
                ),
                row(
                    9,
                    true,
                    true,
                    true,
                    true,
                    false,
                    false,
                    ExternalOrganization,
                ),
                row(
                    10,
                    false,
                    false,
                    true,
                    false,
                    false,
                    false,
                    ExternalOrganization,
                ),
            ],
        }
    }

    /// The rows, in site order.
    pub fn responses(&self) -> &[SiteResponse] {
        &self.responses
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// True if empty (never for the published corpus).
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// Build a corpus from arbitrary rows (for synthetic-scale testing).
    pub fn from_rows(rows: Vec<SiteResponse>) -> SurveyCorpus {
        SurveyCorpus { responses: rows }
    }

    /// A synthetic corpus of `n` sites whose component prevalences match
    /// the published corpus (for scale-testing the analysis pipeline and
    /// validating the power-analysis module empirically). Deterministic per
    /// seed.
    pub fn synthetic(seed: u64, n: usize) -> SurveyCorpus {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_9905);
        let published = SurveyCorpus::published();
        let prevalence = |kind: ContractComponentKind| {
            published.responses().iter().filter(|r| r.has(kind)).count() as f64
                / published.len() as f64
        };
        let p_dc = prevalence(ContractComponentKind::DemandCharge);
        let p_pb = prevalence(ContractComponentKind::Powerband);
        let p_f = prevalence(ContractComponentKind::FixedTariff);
        let p_v = prevalence(ContractComponentKind::TimeOfUseTariff);
        let p_d = prevalence(ContractComponentKind::DynamicTariff);
        let p_e = prevalence(ContractComponentKind::EmergencyDr);
        let rows = (0..n)
            .map(|i| {
                let mut row = SiteResponse {
                    site: SiteId((i + 1).min(u8::MAX as usize) as u8),
                    demand_charges: rng.gen_bool(p_dc),
                    powerband: rng.gen_bool(p_pb),
                    fixed: rng.gen_bool(p_f),
                    variable: rng.gen_bool(p_v),
                    dynamic: rng.gen_bool(p_d),
                    emergency_dr: rng.gen_bool(p_e),
                    rnp: match rng.gen_range(0..10) {
                        0 => Rnp::SupercomputingCenter,
                        1..=6 => Rnp::InternalOrganization,
                        _ => Rnp::ExternalOrganization,
                    },
                };
                // Every real row has at least one tariff; enforce the same.
                if !(row.fixed || row.variable || row.dynamic) {
                    row.fixed = true;
                }
                row
            })
            .collect();
        SurveyCorpus::from_rows(rows)
    }

    /// Table 1 as printed: the ten interview sites and countries.
    pub fn interview_sites() -> [InterviewSite; 10] {
        [
            InterviewSite {
                name: "European Centre for Medium-range Weather Forecasts",
                country: "England",
            },
            InterviewSite {
                name: "GSI Helmholtz Center",
                country: "Germany",
            },
            InterviewSite {
                name: "Jülich Supercomputing Centre",
                country: "Germany",
            },
            InterviewSite {
                name: "High Performance Computing Center Stuttgart",
                country: "Germany",
            },
            InterviewSite {
                name: "Leibniz Supercomputing Centre",
                country: "Germany",
            },
            InterviewSite {
                name: "Swiss National Supercomputing Centre",
                country: "Switzerland",
            },
            InterviewSite {
                name: "Los Alamos National Laboratory",
                country: "United States",
            },
            InterviewSite {
                name: "National Center for Supercomputing Applications",
                country: "United States",
            },
            InterviewSite {
                name: "Oak Ridge National Laboratory",
                country: "United States",
            },
            InterviewSite {
                name: "Lawrence Livermore National Laboratory",
                country: "United States",
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_ten_rows_in_order() {
        let c = SurveyCorpus::published();
        assert_eq!(c.len(), 10);
        for (i, r) in c.responses().iter().enumerate() {
            assert_eq!(r.site, SiteId(i as u8 + 1));
        }
    }

    #[test]
    fn table2_column_counts_as_printed() {
        let c = SurveyCorpus::published();
        let count = |f: fn(&SiteResponse) -> bool| c.responses().iter().filter(|r| f(r)).count();
        assert_eq!(count(|r| r.demand_charges), 7);
        assert_eq!(count(|r| r.powerband), 5);
        assert_eq!(count(|r| r.fixed), 7);
        assert_eq!(count(|r| r.variable), 2);
        assert_eq!(count(|r| r.dynamic), 3);
        assert_eq!(count(|r| r.emergency_dr), 2);
    }

    #[test]
    fn rnp_distribution_matches_section_3_3() {
        let c = SurveyCorpus::published();
        let count = |rnp: Rnp| c.responses().iter().filter(|r| r.rnp == rnp).count();
        assert_eq!(count(Rnp::SupercomputingCenter), 1);
        assert_eq!(count(Rnp::InternalOrganization), 6);
        assert_eq!(count(Rnp::ExternalOrganization), 3);
    }

    #[test]
    fn specific_rows_match_printed_table() {
        let c = SurveyCorpus::published();
        let r7 = &c.responses()[6];
        assert!(r7.demand_charges && r7.powerband && r7.dynamic && r7.emergency_dr);
        assert!(!r7.fixed && !r7.variable);
        assert_eq!(r7.rnp, Rnp::InternalOrganization);
        let r6 = &c.responses()[5];
        assert!(!r6.demand_charges && r6.powerband && r6.fixed);
        assert_eq!(r6.rnp, Rnp::SupercomputingCenter);
        let r10 = &c.responses()[9];
        assert!(r10.fixed && !r10.demand_charges && !r10.powerband);
        assert_eq!(r10.rnp, Rnp::ExternalOrganization);
    }

    #[test]
    fn interview_sites_match_table1() {
        let sites = SurveyCorpus::interview_sites();
        assert_eq!(sites.len(), 10);
        let us = sites
            .iter()
            .filter(|s| s.country == "United States")
            .count();
        let de = sites.iter().filter(|s| s.country == "Germany").count();
        assert_eq!(us, 4);
        assert_eq!(de, 4);
        assert_eq!(
            sites.iter().filter(|s| s.country == "England").count()
                + sites.iter().filter(|s| s.country == "Switzerland").count(),
            2
        );
    }

    #[test]
    fn reference_contracts_classify_back_to_rows() {
        // Corpus rows → synthetic contracts → typology classification must
        // reproduce the printed matrix exactly.
        let c = SurveyCorpus::published();
        for r in c.responses() {
            let contract = r.reference_contract();
            let kinds = contract.component_kinds();
            for kind in ContractComponentKind::ALL {
                // Site 8 and similar rows with no tariff column checked get
                // the fixed-tariff fallback; only the dynamic-only rows with
                // no checked tariff would diverge. Printed Table 2 always
                // checks at least one tariff per row, so equality holds.
                assert_eq!(
                    kinds.contains(&kind),
                    r.has(kind),
                    "site {} kind {:?}",
                    r.site,
                    kind
                );
            }
        }
    }

    #[test]
    fn synthetic_corpus_matches_prevalences_roughly() {
        let c = SurveyCorpus::synthetic(1, 2_000);
        assert_eq!(c.len(), 2_000);
        let frac =
            |kind| c.responses().iter().filter(|r| r.has(kind)).count() as f64 / c.len() as f64;
        assert!((frac(ContractComponentKind::DemandCharge) - 0.7).abs() < 0.05);
        assert!((frac(ContractComponentKind::Powerband) - 0.5).abs() < 0.05);
        // Every synthetic row has a tariff.
        assert!(c
            .responses()
            .iter()
            .all(|r| r.fixed || r.variable || r.dynamic));
        // Deterministic per seed.
        assert_eq!(
            SurveyCorpus::synthetic(2, 50),
            SurveyCorpus::synthetic(2, 50)
        );
        assert_ne!(
            SurveyCorpus::synthetic(2, 50),
            SurveyCorpus::synthetic(3, 50)
        );
    }

    #[test]
    fn prose_facts_published_values() {
        let p = ProseFacts::published();
        assert_eq!(p.fixed_count_text, 8);
        assert_eq!(p.demand_charge_count_text, 8);
        assert_eq!(p.communicates_swings_count, 6);
        assert_eq!(p.invited, 10);
        assert_eq!(p.completed, 10);
        assert!((p.stated_response_rate - 0.5).abs() < 1e-12);
    }
}
