//! Qualitative coding: from contracts to Table 2 rows.
//!
//! The paper's workflow was: open-ended answers → a common nomenclature
//! (the typology) → the synthesis matrix of Table 2. With contracts as
//! typed objects, the coding step is mechanical: classify the contract,
//! attach the RNP answer, emit a row. This module implements that step and
//! the rendering of the full matrix.

use crate::contract::Contract;
use crate::survey::corpus::{SiteId, SiteResponse, SurveyCorpus};
use crate::survey::rnp::Rnp;
use crate::typology::ContractComponentKind;

/// Code a contract (plus the Q1 RNP answer) into a Table 2 row.
pub fn code_contract(site: SiteId, contract: &Contract, rnp: Rnp) -> SiteResponse {
    let kinds = contract.component_kinds();
    SiteResponse {
        site,
        demand_charges: kinds.contains(&ContractComponentKind::DemandCharge),
        powerband: kinds.contains(&ContractComponentKind::Powerband),
        fixed: kinds.contains(&ContractComponentKind::FixedTariff),
        variable: kinds.contains(&ContractComponentKind::TimeOfUseTariff),
        dynamic: kinds.contains(&ContractComponentKind::DynamicTariff),
        emergency_dr: kinds.contains(&ContractComponentKind::EmergencyDr),
        rnp,
    }
}

/// Regenerate the whole corpus by round-tripping every row through its
/// reference contract and the coder. Equality with the published corpus is
/// the coding-consistency check (tested below and in experiment T2).
pub fn recode_corpus(corpus: &SurveyCorpus) -> SurveyCorpus {
    SurveyCorpus::from_rows(
        corpus
            .responses()
            .iter()
            .map(|r| code_contract(r.site, &r.reference_contract(), r.rnp))
            .collect(),
    )
}

/// Render the corpus as the Table 2 check-mark matrix.
pub fn render_table2(corpus: &SurveyCorpus) -> String {
    let mut out = String::new();
    out.push_str(
        "         | Demand Charges | Powerband | Fixed | Variable | Dynamic | Emergency DR | RNP\n",
    );
    out.push_str(
        "---------+----------------+-----------+-------+----------+---------+--------------+---------\n",
    );
    let mark = |b: bool| if b { "✓" } else { " " };
    for r in corpus.responses() {
        out.push_str(&format!(
            " Site {:>2} | {:^14} | {:^9} | {:^5} | {:^8} | {:^7} | {:^12} | {}\n",
            r.site.0,
            mark(r.demand_charges),
            mark(r.powerband),
            mark(r.fixed),
            mark(r.variable),
            mark(r.dynamic),
            mark(r.emergency_dr),
            r.rnp.label(),
        ));
    }
    out
}

/// Per-component inter-rater agreement between two coders' matrices:
/// Cohen's kappa over the ten yes/no judgements for `kind`.
///
/// Qualitative studies report kappa to show the coding is reproducible; our
/// mechanical coder trivially achieves κ = 1 against the published matrix
/// (tested below), and the function lets users validate *their own* manual
/// codings against the classifier.
pub fn cohens_kappa(
    a: &SurveyCorpus,
    b: &SurveyCorpus,
    kind: ContractComponentKind,
) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    let n = a.len() as f64;
    let (mut both_yes, mut both_no, mut a_yes, mut b_yes) = (0.0, 0.0, 0.0, 0.0);
    for (ra, rb) in a.responses().iter().zip(b.responses()) {
        let (ya, yb) = (ra.has(kind), rb.has(kind));
        if ya {
            a_yes += 1.0;
        }
        if yb {
            b_yes += 1.0;
        }
        match (ya, yb) {
            (true, true) => both_yes += 1.0,
            (false, false) => both_no += 1.0,
            _ => {}
        }
    }
    let observed = (both_yes + both_no) / n;
    let expected = (a_yes / n) * (b_yes / n) + (1.0 - a_yes / n) * (1.0 - b_yes / n);
    if (1.0 - expected).abs() < 1e-12 {
        // Degenerate marginals (all-yes or all-no on both sides): agreement
        // is complete by construction.
        return Some(if (observed - 1.0).abs() < 1e-12 {
            1.0
        } else {
            0.0
        });
    }
    Some((observed - expected) / (1.0 - expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tariff::Tariff;
    use hpcgrid_units::EnergyPrice;

    #[test]
    fn coding_round_trip_reproduces_table2() {
        let published = SurveyCorpus::published();
        let recoded = recode_corpus(&published);
        assert_eq!(published, recoded);
    }

    #[test]
    fn code_simple_contract() {
        let c = Contract::builder("x")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.1)))
            .build()
            .unwrap();
        let row = code_contract(SiteId(1), &c, Rnp::SupercomputingCenter);
        assert!(row.fixed);
        assert!(!row.demand_charges && !row.powerband && !row.variable);
        assert!(!row.dynamic && !row.emergency_dr);
        assert_eq!(row.rnp, Rnp::SupercomputingCenter);
    }

    #[test]
    fn kappa_perfect_agreement() {
        let published = SurveyCorpus::published();
        let recoded = recode_corpus(&published);
        for kind in ContractComponentKind::ALL {
            let k = cohens_kappa(&published, &recoded, kind).unwrap();
            assert!((k - 1.0).abs() < 1e-12, "{kind:?} kappa {k}");
        }
    }

    #[test]
    fn kappa_detects_disagreement() {
        let a = SurveyCorpus::published();
        // Flip every demand-charge judgement: agreement below chance.
        let flipped = SurveyCorpus::from_rows(
            a.responses()
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.demand_charges = !r.demand_charges;
                    r
                })
                .collect(),
        );
        let k = cohens_kappa(&a, &flipped, ContractComponentKind::DemandCharge).unwrap();
        assert!(k < 0.0, "flipped coding must score below chance, got {k}");
        // Untouched components still agree perfectly.
        let k2 = cohens_kappa(&a, &flipped, ContractComponentKind::Powerband).unwrap();
        assert!((k2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_requires_matched_corpora() {
        let a = SurveyCorpus::published();
        let b = SurveyCorpus::from_rows(a.responses()[..5].to_vec());
        assert!(cohens_kappa(&a, &b, ContractComponentKind::FixedTariff).is_none());
        let empty = SurveyCorpus::from_rows(vec![]);
        assert!(cohens_kappa(&empty, &empty, ContractComponentKind::FixedTariff).is_none());
    }

    #[test]
    fn table2_render_shape() {
        let s = render_table2(&SurveyCorpus::published());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 12); // header + separator + 10 rows
        assert!(lines[0].contains("Demand Charges"));
        assert!(lines[0].contains("RNP"));
        // Site 7 row has 4 check marks.
        let site7 = lines.iter().find(|l| l.contains("Site  7")).unwrap();
        assert_eq!(site7.matches('✓').count(), 4);
        // Site 10 row has exactly 1.
        let site10 = lines.iter().find(|l| l.contains("Site 10")).unwrap();
        assert_eq!(site10.matches('✓').count(), 1);
    }
}
