//! The survey instrument: the six open-ended questions of §3.1.
//!
//! The paper chose open-ended over multiple-choice questions "out of the
//! concern that ESP contracts are all unique". Each question is encoded
//! with its published motivation so downstream tools (and the experiment
//! binaries) can print the instrument verbatim.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One survey question.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Question {
    /// Question number (1–6).
    pub number: u8,
    /// Short name used in §3.1 subsection titles.
    pub short_name: &'static str,
    /// The question text (abridged to its operative sentence).
    pub text: &'static str,
    /// The stated motivation.
    pub motivation: &'static str,
}

/// The full instrument.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SurveyInstrument {
    /// The questions in order.
    pub questions: Vec<Question>,
}

impl SurveyInstrument {
    /// The instrument as published ("HPC power contracts and grid
    /// integration", 2016).
    pub fn standard() -> SurveyInstrument {
        SurveyInstrument {
            questions: vec![
                Question {
                    number: 1,
                    short_name: "Contract Negotiation Responsibility",
                    text: "In your institution, who is responsible for negotiating the \
                           contract between your HPC facility and your ESP? What role do \
                           you play, if any, in this contract negotiation?",
                    motivation: "The more the SC participates in the negotiation, the \
                                 greater the likelihood that the contract is tailored to \
                                 its needs and abilities.",
                },
                Question {
                    number: 2,
                    short_name: "Details on Pricing Structure",
                    text: "Could you elaborate on the details of the pricing structure of \
                           your electricity? What are the basic pricing components?",
                    motivation: "Knowing what sort of tariffs exist among SCs helps \
                                 understand the degree to which SCs already participate in \
                                 DR-like programs.",
                },
                Question {
                    number: 3,
                    short_name: "Obligations Towards the ESP",
                    text: "Do you have any obligations towards your ESP, e.g. a \
                           contractually agreed power band or requirement to deliver power \
                           profiles? What is your incentive towards committing to these \
                           obligations?",
                    motivation: "Obligations range from none to very tightly coupled; they \
                                 are static and 'pre-smart-grid' (no real-time \
                                 communication).",
                },
                Question {
                    number: 4,
                    short_name: "Services Provided to ESP",
                    text: "Do you offer any kind of services for your ESP (two-way \
                           communication, e.g. load capping, powering up backup \
                           generators)? What is your incentive for offering these \
                           services?",
                    motivation: "Extends the concept of obligation to opt-in services the \
                                 SC actively offers.",
                },
                Question {
                    number: 5,
                    short_name: "Future Relationship with your ESP",
                    text: "How do you envision your future relationship with your \
                           electricity provider? Tighter (e.g. selling local generation \
                           capacity) or looser (e.g. self-sufficiency)?",
                    motivation: "Combined with the current relationship, describes SC \
                                 readiness for the grid transition.",
                },
                Question {
                    number: 6,
                    short_name: "DR Potential",
                    text: "Imagine your ESP offered a voluntary DR program. Is there load \
                           you could shift or reduce for a time-span without negatively \
                           impacting operations, how much, and what incentive would you \
                           expect — including for shifts with tangible user impact?",
                    motivation: "Understand how responsive SCs are to DR and what \
                                 incentives or barrier removals would change behavior.",
                },
            ],
        }
    }

    /// Number of questions.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// True if empty (never for the standard instrument).
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// Render the instrument as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for q in &self.questions {
            out.push_str(&format!("Q{}. {} — {}\n", q.number, q.short_name, q.text));
        }
        out
    }
}

/// Simulate a survey campaign: `invited` sites each respond independently
/// with probability `response_rate`. Returns the responding site indices.
/// Used to sanity-check the paper's stated "approximately 50 %" response
/// rate against the listed ten respondents (see EXPERIMENTS.md, C5).
pub fn simulate_campaign(seed: u64, invited: usize, response_rate: f64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..invited)
        .filter(|_| rng.gen_bool(response_rate.clamp(0.0, 1.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_questions_in_order() {
        let i = SurveyInstrument::standard();
        assert_eq!(i.len(), 6);
        for (idx, q) in i.questions.iter().enumerate() {
            assert_eq!(q.number as usize, idx + 1);
            assert!(!q.text.is_empty());
            assert!(!q.motivation.is_empty());
        }
    }

    #[test]
    fn question_names_match_section_titles() {
        let i = SurveyInstrument::standard();
        assert_eq!(
            i.questions[0].short_name,
            "Contract Negotiation Responsibility"
        );
        assert_eq!(i.questions[1].short_name, "Details on Pricing Structure");
        assert_eq!(i.questions[2].short_name, "Obligations Towards the ESP");
        assert_eq!(i.questions[3].short_name, "Services Provided to ESP");
        assert_eq!(
            i.questions[4].short_name,
            "Future Relationship with your ESP"
        );
        assert_eq!(i.questions[5].short_name, "DR Potential");
    }

    #[test]
    fn render_lists_all_questions() {
        let s = SurveyInstrument::standard().render();
        for n in 1..=6 {
            assert!(s.contains(&format!("Q{n}.")));
        }
    }

    #[test]
    fn campaign_simulation_is_seeded_and_bounded() {
        let a = simulate_campaign(7, 20, 0.5);
        let b = simulate_campaign(7, 20, 0.5);
        assert_eq!(a, b);
        assert!(a.len() <= 20);
        assert!(simulate_campaign(1, 10, 0.0).is_empty());
        assert_eq!(simulate_campaign(1, 10, 1.0).len(), 10);
    }

    #[test]
    fn campaign_rate_roughly_respected() {
        let mut total = 0;
        for seed in 0..200 {
            total += simulate_campaign(seed, 10, 0.5).len();
        }
        let mean = total as f64 / 200.0;
        assert!((mean - 5.0).abs() < 0.5, "mean {mean}");
    }
}
