//! Contract comparison and negotiation what-ifs.
//!
//! §4: sites with procurement influence "could have extended options to
//! influence the design of their power procurement contracts", and CSCS
//! shows shopping contract *structures* pays. This module ranks candidate
//! contracts on a site's own metered load and quantifies two negotiation
//! levers: removing kW-domain components, and flattening the load itself.

use crate::billing::{Bill, BillingEngine};
use crate::contract::Contract;
use crate::{CoreError, Result};
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_units::{Calendar, Money};
use serde::Serialize;

/// One contract's evaluation in a comparison.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComparisonEntry {
    /// Contract name.
    pub name: String,
    /// Total bill on the reference load.
    pub total: Money,
    /// kW-domain share of that bill.
    pub demand_share: f64,
    /// The full bill (line items).
    pub bill: Bill,
}

/// A ranked comparison of candidate contracts on one load.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComparisonReport {
    /// Entries sorted cheapest first.
    pub entries: Vec<ComparisonEntry>,
}

impl ComparisonReport {
    /// The cheapest candidate.
    pub fn best(&self) -> &ComparisonEntry {
        self.entries.first().expect("non-empty by construction")
    }

    /// The most expensive candidate.
    pub fn worst(&self) -> &ComparisonEntry {
        self.entries.last().expect("non-empty by construction")
    }

    /// Spread between worst and best — what contract shopping is worth on
    /// this load.
    pub fn shopping_value(&self) -> Money {
        self.worst().total - self.best().total
    }

    /// Saving of the best candidate versus the named current contract.
    pub fn switching_value(&self, current: &str) -> Option<Money> {
        self.entries
            .iter()
            .find(|e| e.name == current)
            .map(|e| e.total - self.best().total)
    }

    /// Render as a ranked table.
    pub fn render(&self) -> String {
        let mut out = String::from("contract comparison (cheapest first):\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "  {}. {:<24} {:>14}  (kW-domain {:.0}%)\n",
                i + 1,
                e.name,
                e.total.to_string(),
                e.demand_share * 100.0
            ));
        }
        out
    }
}

/// Rank candidate contracts on a load. Errors if `contracts` is empty or
/// the load cannot be billed.
pub fn compare(
    contracts: &[Contract],
    load: &PowerSeries,
    cal: &Calendar,
) -> Result<ComparisonReport> {
    if contracts.is_empty() {
        return Err(CoreError::BadComponent(
            "comparison needs at least one contract".into(),
        ));
    }
    let engine = BillingEngine::new(*cal);
    let mut entries = Vec::with_capacity(contracts.len());
    for c in contracts {
        let bill = engine.bill(c, load)?;
        entries.push(ComparisonEntry {
            name: c.name.clone(),
            total: bill.total(),
            demand_share: bill.demand_share(),
            bill,
        });
    }
    entries.sort_by(|a, b| a.total.partial_cmp(&b.total).expect("finite totals"));
    Ok(ComparisonReport { entries })
}

/// The value of perfectly flattening the load (same energy, delivered at
/// constant power) under a contract — the upper bound on what peak
/// management can ever save, and the number to weigh against demand-charge
/// negotiation.
pub fn flattening_value(contract: &Contract, load: &PowerSeries, cal: &Calendar) -> Result<Money> {
    let engine = BillingEngine::new(*cal);
    let actual = engine.bill(contract, load)?.total();
    let mean = load
        .mean_power()
        .map_err(|e| CoreError::BadSeries(e.to_string()))?;
    let flat = load.map(|_| mean);
    let flattened = engine.bill(contract, &flat)?.total();
    Ok(actual - flattened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand_charge::DemandCharge;
    use crate::tariff::Tariff;
    use hpcgrid_timeseries::series::Series;
    use hpcgrid_units::{DemandPrice, Duration, EnergyPrice, Power, SimTime};

    fn peaky_load() -> PowerSeries {
        Series::from_fn(SimTime::EPOCH, Duration::from_minutes(15.0), 96 * 30, |t| {
            let h = (t.as_secs() % 86_400) / 3_600;
            Power::from_megawatts(if (12..16).contains(&h) { 10.0 } else { 4.0 })
        })
        .unwrap()
    }

    fn candidates() -> Vec<Contract> {
        vec![
            Contract::builder("flat-rate")
                .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.085)))
                .build()
                .unwrap(),
            Contract::builder("dc-heavy")
                .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.05)))
                .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(18.0)))
                .build()
                .unwrap(),
            Contract::builder("tou")
                .tariff(Tariff::day_night(
                    EnergyPrice::per_kilowatt_hour(0.11),
                    EnergyPrice::per_kilowatt_hour(0.05),
                ))
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let r = compare(&candidates(), &peaky_load(), &Calendar::default()).unwrap();
        assert_eq!(r.entries.len(), 3);
        for w in r.entries.windows(2) {
            assert!(w[0].total <= w[1].total);
        }
        assert!(r.shopping_value() >= Money::ZERO);
        assert_eq!(r.best().total, r.entries[0].total);
    }

    #[test]
    fn switching_value_vs_named_contract() {
        let r = compare(&candidates(), &peaky_load(), &Calendar::default()).unwrap();
        let v = r.switching_value("dc-heavy").unwrap();
        assert!(v >= Money::ZERO);
        assert_eq!(
            r.switching_value(r.best().name.as_str()).unwrap(),
            Money::ZERO
        );
        assert!(r.switching_value("nonexistent").is_none());
    }

    #[test]
    fn flattening_value_positive_under_demand_charges_zero_without() {
        let cal = Calendar::default();
        let load = peaky_load();
        let dc = &candidates()[1];
        let flat_rate = &candidates()[0];
        let v_dc = flattening_value(dc, &load, &cal).unwrap();
        let v_flat = flattening_value(flat_rate, &load, &cal).unwrap();
        assert!(
            v_dc > Money::ZERO,
            "flattening must help under a demand charge"
        );
        // Same energy at a fixed tariff: flattening changes nothing.
        assert!(v_flat.abs() < Money::from_dollars(1e-6));
        // The flattening bound is the demand-charge delta between peak and
        // mean demand.
        let expected =
            (Power::from_megawatts(10.0) - load.mean_power().unwrap()).as_kilowatts() * 18.0;
        assert!(
            (v_dc.as_dollars() - expected).abs() < 1.0,
            "{v_dc} vs {expected}"
        );
    }

    #[test]
    fn empty_comparison_rejected() {
        assert!(compare(&[], &peaky_load(), &Calendar::default()).is_err());
    }

    #[test]
    fn render_lists_ranked_names() {
        let r = compare(&candidates(), &peaky_load(), &Calendar::default()).unwrap();
        let s = r.render();
        assert!(s.contains("1. "));
        assert!(s.contains("flat-rate") && s.contains("dc-heavy") && s.contains("tou"));
    }
}
