//! Shared compiled-kernel cache: one compile per distinct contract.
//!
//! Compiling a [`CompiledContract`] is the expensive step of every billing
//! workload — population-scale sweeps and meter fleets alike bill thousands
//! to millions of loads under a handful of distinct contracts. A
//! [`KernelCache`] holds one `Arc`'d kernel per distinct contract
//! (identity: the contract's [`crate::fingerprint::ComponentFingerprint`]),
//! over one calendar and compile horizon, so every consumer shares not just
//! the compile cost but also the kernel's reusable segment-map cache.
//!
//! This is the kernel-sharing machinery [`crate::fleet::MeterFleet`]
//! grew in PR 6, factored out so sweep drivers can use the same cache to
//! stock an `hpcgrid_engine::SharedInputs` registry: compile once here,
//! hand the `Arc` to a fleet *and* to every scenario in a sweep.

use crate::compiled::CompiledContract;
use crate::contract::Contract;
use crate::fingerprint;
use crate::{CoreError, Result};
use hpcgrid_units::{Calendar, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// A cache of compiled contract kernels over one calendar and horizon.
///
/// ```
/// use hpcgrid_core::contract::Contract;
/// use hpcgrid_core::kernels::KernelCache;
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_units::{Calendar, EnergyPrice, SimTime};
///
/// let contract = Contract::builder("flat")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let mut cache = KernelCache::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(30));
/// let a = cache.get_or_compile(&contract)?; // compiles
/// let b = cache.get_or_compile(&contract)?; // shares a's kernel
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct KernelCache {
    calendar: Calendar,
    start: SimTime,
    end: SimTime,
    /// Kernels by `fingerprint().0`.
    kernels: HashMap<u64, Arc<CompiledContract>>,
    hits: u64,
    misses: u64,
}

impl KernelCache {
    /// An empty cache compiling under `calendar` for the horizon
    /// `[start, end)`.
    pub fn new(calendar: Calendar, start: SimTime, end: SimTime) -> KernelCache {
        KernelCache {
            calendar,
            start,
            end,
            kernels: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The calendar kernels are compiled under.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// The compile horizon `[start, end)` every cached kernel shares.
    pub fn horizon(&self) -> (SimTime, SimTime) {
        (self.start, self.end)
    }

    /// Distinct kernels held.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True if no kernels are cached.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Lookups (via [`KernelCache::get_or_compile`] /
    /// [`KernelCache::get_or_insert`]) served by an existing kernel.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that compiled or admitted a new kernel.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served by an already-cached kernel.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Peek at the kernel for a fingerprint without touching the hit/miss
    /// counters.
    pub fn get(&self, fingerprint: u64) -> Option<Arc<CompiledContract>> {
        self.kernels.get(&fingerprint).map(Arc::clone)
    }

    /// The kernel for `contract`, compiling it at most once per distinct
    /// contract — subsequent calls (and other consumers of the returned
    /// `Arc`) share it.
    pub fn get_or_compile(&mut self, contract: &Contract) -> Result<Arc<CompiledContract>> {
        let fp = fingerprint::of_contract(contract).0;
        if let Some(k) = self.kernels.get(&fp) {
            self.hits += 1;
            return Ok(Arc::clone(k));
        }
        self.misses += 1;
        let k = Arc::new(CompiledContract::compile(
            &self.calendar,
            contract,
            self.start,
            self.end,
        )?);
        self.kernels.insert(fp, Arc::clone(&k));
        Ok(k)
    }

    /// Admit an externally compiled kernel (e.g. a patched kernel from
    /// [`CompiledContract::patch`]), returning the cache's canonical `Arc`
    /// for its fingerprint — the existing kernel if one is already cached,
    /// otherwise `kernel` itself.
    ///
    /// Fails if the kernel was compiled for a different horizon than the
    /// cache's; all sharers must agree on the horizon for bills to be
    /// comparable.
    pub fn get_or_insert(
        &mut self,
        kernel: Arc<CompiledContract>,
    ) -> Result<Arc<CompiledContract>> {
        if kernel.horizon() != (self.start, self.end) {
            return Err(CoreError::BadSeries(format!(
                "kernel horizon {:?} does not match the cache horizon [{}, {})",
                kernel.horizon(),
                self.start,
                self.end
            )));
        }
        let fp = kernel.fingerprint().0;
        if let Some(existing) = self.kernels.get(&fp) {
            self.hits += 1;
            return Ok(Arc::clone(existing));
        }
        self.misses += 1;
        self.kernels.insert(fp, Arc::clone(&kernel));
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tariff::Tariff;
    use hpcgrid_units::EnergyPrice;

    fn contract(rate: f64) -> Contract {
        Contract::builder("kc-test")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(rate)))
            .build()
            .unwrap()
    }

    fn cache() -> KernelCache {
        KernelCache::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(30))
    }

    #[test]
    fn compiles_once_per_distinct_contract() {
        let mut c = cache();
        let a = c.get_or_compile(&contract(0.07)).unwrap();
        let b = c.get_or_compile(&contract(0.07)).unwrap();
        let other = c.get_or_compile(&contract(0.09)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(c.len(), 2);
        assert_eq!((c.hits(), c.misses()), (1, 2));
        assert!((c.reuse_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn get_or_insert_returns_the_canonical_kernel() {
        let mut c = cache();
        let a = c.get_or_compile(&contract(0.07)).unwrap();
        // An independently compiled copy of the same contract resolves to
        // the cached instance, so segment maps stay shared.
        let copy = Arc::new(
            CompiledContract::compile(
                &Calendar::default(),
                &contract(0.07),
                SimTime::EPOCH,
                SimTime::from_days(30),
            )
            .unwrap(),
        );
        let resolved = c.get_or_insert(copy).unwrap();
        assert!(Arc::ptr_eq(&a, &resolved));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn horizon_mismatch_is_rejected() {
        let mut c = cache();
        let foreign = Arc::new(
            CompiledContract::compile(
                &Calendar::default(),
                &contract(0.07),
                SimTime::EPOCH,
                SimTime::from_days(7),
            )
            .unwrap(),
        );
        let err = c.get_or_insert(foreign).unwrap_err();
        assert!(err.to_string().contains("horizon"), "{err}");
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = cache();
        let a = c.get_or_compile(&contract(0.07)).unwrap();
        let fp = a.fingerprint().0;
        assert!(c.get(fp).is_some());
        assert!(c.get(fp ^ 1).is_none());
        assert_eq!((c.hits(), c.misses()), (0, 1));
    }
}
