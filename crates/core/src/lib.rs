//! # hpcgrid-core
//!
//! The paper's primary contribution, made executable.
//!
//! *"An Analysis of Contracts and Relationships between Supercomputing
//! Centers and Electricity Service Providers"* (ICPP 2019) contributes a
//! **contract typology** (Figure 1), a **survey corpus** of ten SC sites
//! (Tables 1–2), and an analysis of responsible negotiating parties and
//! ESP–SC interaction. This crate encodes all three:
//!
//! * [`typology`] — the typology tree as types, with the
//!   demand-side-management properties each component encourages;
//! * [`tariff`], [`demand_charge`], [`powerband`], [`emergency`] — each
//!   contract component as a priced, testable object;
//! * [`contract`] — composable contracts built from those components;
//! * [`billing`] — the billing engine that prices a metered load series
//!   under any contract;
//! * [`compiled`] + [`fingerprint`] — the compiled billing kernel for
//!   sweep workloads, with incremental recompilation
//!   ([`compiled::CompiledContract::patch`]) keyed by component
//!   fingerprints;
//! * [`ledger`] — the event-sourced contract ledger: append-only revision
//!   streams with idempotency keys and effective dates, patch-cached
//!   hydration, and as-of billing across mid-horizon renegotiations;
//! * [`survey`] — the survey instrument, the encoded ten-site corpus, the
//!   coding step that regenerates Table 2 from per-site contracts, and the
//!   statistical analysis (component counts, text-vs-table consistency,
//!   geographic-trend permutation tests).

#![warn(missing_docs)]

pub mod accrual;
pub mod billing;
pub mod checkpoint;
pub mod compare;
pub mod compiled;
pub mod contract;
pub mod demand_charge;
pub mod emergency;
pub mod fingerprint;
pub mod fleet;
pub mod kernels;
pub mod ledger;
pub mod powerband;
pub mod report;
pub mod survey;
pub mod tariff;
pub mod typology;

pub use accrual::{AccrualSnapshot, BillAccrual};
pub use billing::{Bill, BillingEngine, Precision};
pub use checkpoint::{CheckpointStore, FleetCheckpoint};
pub use compiled::CompiledContract;
pub use contract::{Contract, ContractBuilder, ContractDelta};
pub use demand_charge::DemandCharge;
pub use emergency::EmergencyDrClause;
pub use fingerprint::ComponentFingerprint;
pub use fleet::{FleetStats, FleetTickReport, MeterFleet, MeterId, Sample};
pub use kernels::KernelCache;
pub use ledger::{AppendOutcome, AsOfBill, BillSlice, ContractId, ContractLedger, LedgerEvent};
pub use powerband::Powerband;
pub use tariff::Tariff;
pub use typology::{ContractComponentKind, Typology};

/// Errors from contract construction and billing.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid contract component parameter.
    BadComponent(String),
    /// A contract must have at least one energy-pricing component.
    NoTariff,
    /// Billing input problem (empty or misaligned series).
    BadSeries(String),
    /// Survey analysis error.
    BadSurvey(String),
    /// A worker task panicked during a parallel batch billing run.
    BatchPanic(String),
    /// The meter was quarantined after a panicking fold; its accrual state
    /// is not trustworthy until restored from a snapshot.
    Quarantined(String),
    /// Filesystem i/o error while reading or writing a checkpoint.
    Io(String),
    /// Contract-ledger misuse: unknown stream or revision, or an amendment
    /// whose effective date would rewrite history.
    Ledger(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::BadComponent(d) => write!(f, "bad contract component: {d}"),
            CoreError::NoTariff => write!(f, "contract has no tariff component"),
            CoreError::BadSeries(d) => write!(f, "bad series: {d}"),
            CoreError::BadSurvey(d) => write!(f, "bad survey data: {d}"),
            CoreError::BatchPanic(d) => write!(f, "batch billing worker panicked: {d}"),
            CoreError::Quarantined(d) => write!(f, "meter quarantined: {d}"),
            CoreError::Io(d) => write!(f, "checkpoint i/o error: {d}"),
            CoreError::Ledger(d) => write!(f, "contract ledger error: {d}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
