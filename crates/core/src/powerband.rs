//! Powerbands: continuous consumption corridors.
//!
//! Paper §3.2.2: *"A powerband dictates electricity consumption boundaries
//! (upper and, optionally, lower). Consumption outside the specified
//! powerband limits is associated with high additional electricity costs.
//! Thus, powerbands may be considered as a variation over demand charges
//! with upper- and lower limit and continuous sampling of consumption as
//! opposed to measuring a fixed number of peaks."*
//!
//! We price excursions as energy outside the corridor (kWh above the upper
//! bound or below the lower bound) at a penalty price — "continuous
//! sampling" in interval-data terms.

use crate::{CoreError, Result};
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_units::{Duration, Energy, EnergyPrice, Money, Power, SimTime};
use serde::{Deserialize, Serialize};

/// A powerband component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Powerband {
    /// Upper consumption bound.
    pub upper: Power,
    /// Optional lower consumption bound.
    pub lower: Option<Power>,
    /// Penalty price on excursion energy (both directions).
    pub penalty: EnergyPrice,
}

/// The compliance report of a load series against a powerband.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandReport {
    /// Energy above the upper bound.
    pub over_energy: Energy,
    /// Energy below the lower bound (zero if no lower bound).
    pub under_energy: Energy,
    /// Time spent above the upper bound (whole intervals).
    pub over_time: Duration,
    /// Time spent below the lower bound (whole intervals).
    pub under_time: Duration,
    /// Timestamps of excursion intervals (for operator reports).
    pub violations: Vec<SimTime>,
    /// Total penalty cost.
    pub penalty_cost: Money,
}

impl BandReport {
    /// True if the load never left the corridor.
    pub fn compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Powerband {
    /// A symmetric band `nominal ± width`.
    pub fn symmetric(nominal: Power, width: Power, penalty: EnergyPrice) -> Powerband {
        Powerband {
            upper: nominal + width,
            lower: Some((nominal - width).max(Power::ZERO)),
            penalty,
        }
    }

    /// An upper-bound-only band.
    pub fn ceiling(upper: Power, penalty: EnergyPrice) -> Powerband {
        Powerband {
            upper,
            lower: None,
            penalty,
        }
    }

    /// Validate the corridor.
    pub fn validate(&self) -> Result<()> {
        if self.upper <= Power::ZERO {
            return Err(CoreError::BadComponent(
                "powerband upper bound must be positive".into(),
            ));
        }
        if let Some(lower) = self.lower {
            if lower < Power::ZERO {
                return Err(CoreError::BadComponent(
                    "powerband lower bound must be non-negative".into(),
                ));
            }
            if lower >= self.upper {
                return Err(CoreError::BadComponent(format!(
                    "powerband lower bound {lower} must be below upper bound {}",
                    self.upper
                )));
            }
        }
        Ok(())
    }

    /// Evaluate a load series against the band.
    pub fn evaluate(&self, load: &PowerSeries) -> Result<BandReport> {
        self.validate()?;
        let step_h = load.step().as_hours();
        let mut over_kwh = 0.0f64;
        let mut under_kwh = 0.0f64;
        let mut over_n = 0u64;
        let mut under_n = 0u64;
        let mut violations = Vec::new();
        for (t, &p) in load.iter() {
            if p > self.upper {
                over_kwh += (p - self.upper).as_kilowatts() * step_h;
                over_n += 1;
                violations.push(t);
            } else if let Some(lower) = self.lower {
                if p < lower {
                    under_kwh += (lower - p).as_kilowatts() * step_h;
                    under_n += 1;
                    violations.push(t);
                }
            }
        }
        let over_energy = Energy::from_kilowatt_hours(over_kwh);
        let under_energy = Energy::from_kilowatt_hours(under_kwh);
        let penalty_cost = (over_energy + under_energy) * self.penalty;
        Ok(BandReport {
            over_energy,
            under_energy,
            over_time: load.step() * over_n,
            under_time: load.step() * under_n,
            violations,
            penalty_cost,
        })
    }

    /// Total penalty of a load series (shortcut).
    pub fn penalty_cost(&self, load: &PowerSeries) -> Result<Money> {
        Ok(self.evaluate(load)?.penalty_cost)
    }

    /// Band width (upper − lower), if a lower bound exists.
    pub fn width(&self) -> Option<Power> {
        self.lower.map(|l| self.upper - l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcgrid_timeseries::series::Series;

    fn load(values_mw: Vec<f64>) -> PowerSeries {
        Series::new(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            values_mw.into_iter().map(Power::from_megawatts).collect(),
        )
        .unwrap()
    }

    fn band() -> Powerband {
        Powerband::symmetric(
            Power::from_megawatts(10.0),
            Power::from_megawatts(2.0),
            EnergyPrice::per_kilowatt_hour(0.50),
        )
    }

    #[test]
    fn symmetric_constructor() {
        let b = band();
        assert_eq!(b.upper.as_megawatts(), 12.0);
        assert_eq!(b.lower.unwrap().as_megawatts(), 8.0);
        assert_eq!(b.width().unwrap().as_megawatts(), 4.0);
        // Width wider than nominal floors the lower bound at zero.
        let wide = Powerband::symmetric(
            Power::from_megawatts(1.0),
            Power::from_megawatts(5.0),
            EnergyPrice::ZERO,
        );
        assert_eq!(wide.lower.unwrap(), Power::ZERO);
    }

    #[test]
    fn compliant_load_pays_nothing() {
        let r = band().evaluate(&load(vec![9.0, 10.0, 11.0, 12.0])).unwrap();
        assert!(r.compliant());
        assert_eq!(r.penalty_cost, Money::ZERO);
        assert_eq!(r.over_time, Duration::ZERO);
        assert_eq!(r.under_time, Duration::ZERO);
    }

    #[test]
    fn excursions_priced_both_directions() {
        // 14 MW (2 over) for 1 h and 6 MW (2 under) for 1 h.
        let r = band().evaluate(&load(vec![14.0, 6.0, 10.0])).unwrap();
        assert!(!r.compliant());
        assert_eq!(r.violations.len(), 2);
        assert!((r.over_energy.as_megawatt_hours() - 2.0).abs() < 1e-9);
        assert!((r.under_energy.as_megawatt_hours() - 2.0).abs() < 1e-9);
        assert_eq!(r.over_time, Duration::from_hours(1.0));
        assert_eq!(r.under_time, Duration::from_hours(1.0));
        // 4 MWh × $0.50/kWh = $2000/MWh × 4 = $2000... (4000 kWh × 0.5).
        assert!((r.penalty_cost.as_dollars() - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn ceiling_band_ignores_low_load() {
        let b = Powerband::ceiling(
            Power::from_megawatts(12.0),
            EnergyPrice::per_kilowatt_hour(0.50),
        );
        let r = b.evaluate(&load(vec![0.0, 5.0, 12.0])).unwrap();
        assert!(r.compliant());
    }

    #[test]
    fn validation() {
        assert!(Powerband::ceiling(Power::ZERO, EnergyPrice::ZERO)
            .validate()
            .is_err());
        let bad = Powerband {
            upper: Power::from_megawatts(5.0),
            lower: Some(Power::from_megawatts(6.0)),
            penalty: EnergyPrice::ZERO,
        };
        assert!(bad.validate().is_err());
        let bad2 = Powerband {
            upper: Power::from_megawatts(5.0),
            lower: Some(Power::from_kilowatts(-1.0)),
            penalty: EnergyPrice::ZERO,
        };
        assert!(bad2.validate().is_err());
        assert!(band().validate().is_ok());
    }

    #[test]
    fn penalty_monotone_in_excursion() {
        let b = band();
        let mild = b.penalty_cost(&load(vec![13.0])).unwrap();
        let severe = b.penalty_cost(&load(vec![16.0])).unwrap();
        assert!(severe > mild);
    }

    #[test]
    fn narrower_band_costs_more() {
        // The E3 experiment's core relationship.
        let wiggly = load(vec![8.0, 12.0, 9.0, 11.0, 7.0, 13.0]);
        let narrow = Powerband::symmetric(
            Power::from_megawatts(10.0),
            Power::from_megawatts(1.0),
            EnergyPrice::per_kilowatt_hour(0.5),
        );
        let wide = Powerband::symmetric(
            Power::from_megawatts(10.0),
            Power::from_megawatts(3.0),
            EnergyPrice::per_kilowatt_hour(0.5),
        );
        let c_narrow = narrow.penalty_cost(&wiggly).unwrap();
        let c_wide = wide.penalty_cost(&wiggly).unwrap();
        assert!(c_narrow > c_wide);
        assert_eq!(c_wide, Money::ZERO);
    }

    #[test]
    fn empty_load_compliant() {
        let r = band()
            .evaluate(&PowerSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap())
            .unwrap();
        assert!(r.compliant());
    }
}
