//! The compiled billing kernel: contracts lowered to flat segment timelines,
//! with incremental recompilation for sweep workloads.
//!
//! [`crate::billing::BillingEngine::bill`] re-derives civil-calendar facts for
//! every sample — `Calendar::month`, `weekday`, `time_of_day` per interval in
//! [`crate::tariff::TouTariff::price_at`], `Calendar::billing_month` per
//! interval in block-tariff bucketing — so sweep cost is dominated by
//! redundant calendar arithmetic. This module compiles a
//! [`Contract`] + [`Calendar`] + time horizon once into:
//!
//! * a **price timeline** per energy tariff: piecewise-constant `$ / kWh`
//!   segments whose breakpoints are precomputed `SimTime` seconds (TOU window
//!   edges per day, dynamic-strip interval edges), so pricing a
//!   [`PowerSeries`] is a single linear merge of two sorted sequences;
//! * a **month-boundary index**: the billing-month start midnights inside the
//!   horizon, shared by demand-charge bucketing, block-tariff bucketing, and
//!   the service-fee month count.
//!
//! # Incremental recompilation
//!
//! Each lowered tariff is an independent **piece** held behind an [`Arc`] and
//! keyed by a [`ComponentFingerprint`] of its source component. Sweep-style
//! workloads (the paper's procurement auctions; TARDIS-style multi-center
//! cost optimization) mutate one component per scenario, so
//! [`CompiledContract::patch`] re-lowers *only* the changed piece and shares
//! the rest by reference count — a thousand scenario variants of a rich
//! contract hold one copy of every unchanged timeline. Market-price
//! revisions go through [`CompiledContract::with_price_strip`], which lowers
//! the dynamic tariff's markup/fallback logic into a fresh strip timeline at
//! strip resolution (a tight segment splice with no calendar calls) and
//! leaves every other piece untouched.
//!
//! # Precision modes
//!
//! Under the default [`Precision::BitExact`], evaluation is **bit-identical**
//! to the interpreted path: segment prices are computed with the same
//! `price_at` expressions the interpreter would use, and every
//! floating-point accumulation replicates the interpreter's expression shape
//! and summation order (see the `compiled_equivalence` integration tests).
//! The same holds for every patched kernel: `patch` and `with_price_strip`
//! produce kernels equal to a fresh [`CompiledContract::compile`] of
//! [`Contract::apply`]'s output (see the `patch_equivalence` property
//! tests), because pieces are lowered by one shared routine and unchanged
//! pieces are reused verbatim. Compilation costs one `price_at` call per
//! candidate breakpoint (a few per day of horizon), so it amortizes after
//! roughly two bills per contract — and a patch amortizes immediately.
//!
//! [`Precision::Fast`] opts into the vectorized kernels from
//! `hpcgrid_units::kernels`: 8-lane pairwise summation for energy costs and
//! block-tariff buckets (within a `1e-12` relative tolerance of the exact
//! path for horizons up to a year; property-tested in `fast_equivalence`),
//! and a branchless lane-max demand scan that is *bit-equal* to the exact
//! peak whenever the demand interval is no coarser than the load's step.
//! Both modes route through a reusable **segment map** — the
//! segment→sample-range index for a load geometry `(start, step, len)`,
//! cached per timeline and shared across `bill_many`/sweep revisions (and,
//! via `Arc`-shared pieces, across `patch`/`with_price_strip`), so repeated
//! bills of one geometry skip the `partition_point`/`div_ceil` merge
//! entirely.

use crate::billing::{Bill, LineItem, Precision};
use crate::contract::{Contract, ContractDelta};
use crate::demand_charge::{DemandAssessment, DemandCharge};
use crate::emergency::EmergencyDrClause;
use crate::fingerprint::{self, ComponentFingerprint};
use crate::powerband::Powerband;
use crate::tariff::{BlockTariff, DynamicTariff, Tariff};
use crate::typology::ContractComponentKind;
use crate::{CoreError, Result};
use hpcgrid_timeseries::intervals::IntervalSet;
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries};
use hpcgrid_units::time::SECS_PER_DAY;
use hpcgrid_units::{kernels, Calendar, EnergyPrice, Money, Power, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// The sample geometry of a load series — everything the segment→sample
/// mapping of a [`PriceTimeline`] depends on. Two loads with the same
/// geometry (start, step, length) share one [`SegmentMap`] regardless of
/// their power values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SampleGeometry {
    start: u64,
    step: u64,
    len: usize,
}

impl SampleGeometry {
    /// Start time of the sample one past the end of this geometry — the
    /// sample a one-step extension would add.
    fn next_sample_start(&self) -> u64 {
        self.start + self.len as u64 * self.step
    }
}

impl SampleGeometry {
    fn of(load: &PowerSeries) -> SampleGeometry {
        SampleGeometry {
            start: load.start().as_secs(),
            step: load.step().as_secs(),
            len: load.len(),
        }
    }
}

/// The segment→sample-range index for one load geometry: run `k` covers
/// sample indexes `[runs[k-1].0, runs[k].0)` at `runs[k].1` dollars per kWh
/// (the first run starts at 0). Zero-length segments (shorter than one
/// sample step) are dropped — they price no samples. Replaying the runs
/// makes the same per-sample multiply-adds in the same order as the direct
/// merge, so routing the bit-exact path through a map changes nothing.
#[derive(Debug)]
pub(crate) struct SegmentMap {
    pub(crate) runs: Vec<(usize, f64)>,
    /// Timeline segment index in force at the map's final sample: where a
    /// one-step extension must stay ([`SegmentMap::extendable_by`]) and
    /// where cursor-mode evaluation resumes when a stream outgrows the map.
    pub(crate) last_seg: usize,
}

impl SegmentMap {
    /// True if appending one sample starting at `t_new` keeps the map's
    /// final segment in force — the cheap check that lets a cached map grow
    /// by one step instead of missing. `breaks` must be the timeline this
    /// map was built against.
    pub(crate) fn extendable_by(&self, breaks: &[u64], t_new: u64) -> bool {
        !self.runs.is_empty()
            && match breaks.get(self.last_seg + 1) {
                Some(&b) => t_new < b,
                None => true,
            }
    }
}

/// Upper bound on cached geometries per timeline. Sweeps bill one or a few
/// geometries thousands of times; 16 covers every workload in the repo while
/// bounding memory for adversarial geometry churn (oldest entry evicted).
const SEGMENT_MAP_CACHE_CAP: usize = 16;

/// One immutable cache snapshot: geometry-keyed segment maps in insertion
/// order (oldest first, for capacity eviction).
type MapEntries = Vec<(SampleGeometry, Arc<SegmentMap>)>;

/// Per-timeline cache of [`SegmentMap`]s keyed by [`SampleGeometry`], with
/// hit/miss counters for bench observability. The cache is *derived* state:
/// it never participates in equality, and cloning a timeline starts a fresh
/// (empty) cache. Because compiled tariff pieces are shared behind [`Arc`],
/// the cache survives [`CompiledContract::patch`]/`with_price_strip` for
/// every piece the patch does not re-lower.
///
/// The entry list is a read-mostly copy-on-write snapshot: readers clone
/// one `Arc` under a briefly-held read lock and then search lock-free,
/// writers rebuild the (≤[`SEGMENT_MAP_CACHE_CAP`]-entry) list and swap the
/// `Arc` under the write lock. Million-meter fleet shards sharing one
/// kernel therefore never serialize on the steady-state lookup — the old
/// `Mutex` design made every concurrent bill queue behind a single lock.
/// The published snapshot is always whole (the swap is one `Arc` store), so
/// a panicking writer cannot tear it; poisoned locks are simply recovered.
/// The one trade: a cold geometry hit by many workers at once may be built
/// more than once, with [`SegmentMapCache::publish`] deduplicating to a
/// single winner — bounded, one-time work, in exchange for a contention-free
/// hot path.
#[derive(Debug, Default)]
struct SegmentMapCache {
    entries: RwLock<Arc<MapEntries>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SegmentMapCache {
    /// The current entry snapshot: one `Arc` clone under the read lock,
    /// searched lock-free afterwards.
    fn snapshot(&self) -> Arc<MapEntries> {
        Arc::clone(&self.entries.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Publish `map` for `geom` copy-on-write, evicting the oldest entry at
    /// capacity. If another worker raced the build and published first,
    /// theirs wins and is returned — all callers share one map per
    /// geometry.
    fn publish(&self, geom: SampleGeometry, map: Arc<SegmentMap>) -> Arc<SegmentMap> {
        let mut guard = self.entries.write().unwrap_or_else(|p| p.into_inner());
        if let Some((_, existing)) = guard.iter().find(|(g, _)| *g == geom) {
            return Arc::clone(existing);
        }
        let mut next: MapEntries = guard.iter().cloned().collect();
        if next.len() >= SEGMENT_MAP_CACHE_CAP {
            next.remove(0);
        }
        next.push((geom, Arc::clone(&map)));
        *guard = Arc::new(next);
        map
    }
}

/// A piecewise-constant price timeline: segment `i` covers
/// `[breaks[i], breaks[i+1])` (the last segment extends to the compile
/// horizon's end) at `prices[i]` dollars per kWh. Adjacent segments with
/// bitwise-equal prices are merged at compile time.
#[derive(Debug)]
pub struct PriceTimeline {
    /// Segment start times in seconds; `breaks[0]` is the horizon start.
    pub(crate) breaks: Vec<u64>,
    /// Segment prices in `$ / kWh`, one per break.
    pub(crate) prices: Vec<f64>,
    /// Reusable segment→sample-range maps, keyed by load geometry.
    maps: SegmentMapCache,
}

impl Clone for PriceTimeline {
    fn clone(&self) -> PriceTimeline {
        PriceTimeline {
            breaks: self.breaks.clone(),
            prices: self.prices.clone(),
            maps: SegmentMapCache::default(),
        }
    }
}

/// Equality is over the priced segments alone; the segment-map cache is
/// derived state and never observable through billing.
impl PartialEq for PriceTimeline {
    fn eq(&self, other: &PriceTimeline) -> bool {
        self.breaks == other.breaks && self.prices == other.prices
    }
}

impl PriceTimeline {
    /// Lower a time-based tariff (fixed, TOU, or dynamic) over `[start, end)`.
    ///
    /// Candidate breakpoints are the horizon start plus, for TOU, each
    /// window's `from`/`to` edge and midnight of every day in the horizon;
    /// for dynamic tariffs, every strip interval edge. Segment prices are
    /// computed with the interpreter's own [`Tariff::price_at`], so any
    /// sample inside a segment sees the exact `f64` the interpreted path
    /// would use. A window-membership change can only happen at a candidate
    /// breakpoint: month and weekday are constant within a day, and
    /// `Calendar::time_of_day` truncates to minutes while window edges are
    /// minute-aligned.
    fn compile(cal: &Calendar, tariff: &Tariff, start: SimTime, end: SimTime) -> PriceTimeline {
        let s0 = start.as_secs();
        let e = end.as_secs();
        let mut cuts: Vec<u64> = Vec::new();
        match tariff {
            Tariff::Fixed(_) => {}
            Tariff::TimeOfUse(tou) => {
                let mut offsets: Vec<u64> = vec![0];
                for w in &tou.windows {
                    offsets.push(w.from.seconds_into_day());
                    offsets.push(w.to.seconds_into_day());
                }
                offsets.sort_unstable();
                offsets.dedup();
                let first_day = s0 / SECS_PER_DAY;
                let last_day = (e - 1) / SECS_PER_DAY;
                for day in first_day..=last_day {
                    let base = day * SECS_PER_DAY;
                    for &off in &offsets {
                        let cut = base + off;
                        if cut > s0 && cut < e {
                            cuts.push(cut);
                        }
                    }
                }
            }
            Tariff::Dynamic(d) => return PriceTimeline::compile_dynamic(d, start, end),
            Tariff::Block(_) => unreachable!("block tariffs are not strip-compiled"),
        }
        let mut breaks = vec![s0];
        let mut prices = vec![tariff.price_at(cal, start).as_dollars_per_kilowatt_hour()];
        for cut in cuts {
            let p = tariff
                .price_at(cal, SimTime::from_secs(cut))
                .as_dollars_per_kilowatt_hour();
            // Merge bitwise-equal neighbours: the merged segment prices every
            // sample with the same f64 either way.
            if p.to_bits() != prices[prices.len() - 1].to_bits() {
                breaks.push(cut);
                prices.push(p);
            }
        }
        PriceTimeline {
            breaks,
            prices,
            maps: SegmentMapCache::default(),
        }
    }

    /// Lower a dynamic tariff's markup/fallback logic into the strip
    /// timeline at strip resolution: one candidate breakpoint per strip
    /// interval edge, priced `values[i] + markup` inside the strip and
    /// `fallback` outside — the exact `f64` expressions of
    /// [`DynamicTariff::price_at`], with no calendar calls and no per-cut
    /// index division. This single routine serves both full compilation and
    /// the [`CompiledContract::with_price_strip`] splice, which is what
    /// makes a market-price revision bit-identical to a recompile.
    fn compile_dynamic(d: &DynamicTariff, start: SimTime, end: SimTime) -> PriceTimeline {
        let s0 = start.as_secs();
        let e = end.as_secs();
        let step = d.prices.step().as_secs();
        let strip_start = d.prices.start().as_secs();
        let n = d.prices.len();
        let values = d.prices.values();
        let markup = d.markup;
        let fallback = d.fallback.as_dollars_per_kilowatt_hour();
        let mut breaks = vec![s0];
        let mut prices = vec![d.price_at(start).as_dollars_per_kilowatt_hour()];
        let push = |cut: u64, p: f64, breaks: &mut Vec<u64>, prices: &mut Vec<f64>| {
            if cut > s0 && cut < e && p.to_bits() != prices[prices.len() - 1].to_bits() {
                breaks.push(cut);
                prices.push(p);
            }
        };
        for (i, v) in values.iter().enumerate() {
            let cut = strip_start + i as u64 * step;
            let p = (*v + markup).as_dollars_per_kilowatt_hour();
            push(cut, p, &mut breaks, &mut prices);
        }
        push(
            strip_start + n as u64 * step,
            fallback,
            &mut breaks,
            &mut prices,
        );
        PriceTimeline {
            breaks,
            prices,
            maps: SegmentMapCache::default(),
        }
    }

    /// Number of price segments.
    pub fn segments(&self) -> usize {
        self.prices.len()
    }

    /// Build the segment→sample-range index for one geometry: the same
    /// `partition_point` + `div_ceil` merge the direct cost loop performed
    /// per bill, done once and replayed thereafter. Prices are embedded in
    /// the runs, so replaying cannot skew segment indexes.
    fn build_map(&self, geom: SampleGeometry) -> SegmentMap {
        let SampleGeometry {
            start: t0,
            step,
            len,
        } = geom;
        let mut runs = Vec::new();
        // Segment covering the first sample: breaks[seg] <= t0 < breaks[seg+1]
        // (breaks[0] is the horizon start, which bounds the load from below).
        let mut seg = self.breaks.partition_point(|b| *b <= t0) - 1;
        let mut last_seg = seg;
        let mut i = 0usize;
        while i < len {
            // Sample `j` (at t0 + j·step) lies in this segment while its time
            // is below the next break.
            let i_end = match self.breaks.get(seg + 1) {
                Some(&b) => ((b - t0).div_ceil(step) as usize).min(len),
                None => len,
            };
            if i_end > i {
                runs.push((i_end, self.prices[seg]));
                last_seg = seg;
            }
            i = i_end;
            seg += 1;
        }
        SegmentMap { runs, last_seg }
    }

    /// The cached [`SegmentMap`] for `load`'s geometry, built on first use.
    /// The steady-state hit is a lock-free snapshot search; concurrent
    /// workers racing one cold geometry may build it more than once, with
    /// [`SegmentMapCache::publish`] deduplicating to a single winner.
    fn map_for(&self, load: &PowerSeries) -> Arc<SegmentMap> {
        let geom = SampleGeometry::of(load);
        let entries = self.maps.snapshot();
        if let Some((_, map)) = entries.iter().find(|(g, _)| *g == geom) {
            self.maps.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(map);
        }
        // One-step growth of a cached geometry: if the appended sample stays
        // inside the old map's final segment, extend the map (O(runs) clone)
        // instead of redoing the full `partition_point`/`div_ceil` merge.
        // Counts as a hit — the merge was skipped.
        if geom.len >= 1 {
            let shorter = SampleGeometry {
                len: geom.len - 1,
                ..geom
            };
            if let Some((_, map)) = entries.iter().find(|(g, _)| *g == shorter) {
                if map.extendable_by(&self.breaks, shorter.next_sample_start()) {
                    let mut runs = map.runs.clone();
                    runs.last_mut().expect("extendable map has runs").0 += 1;
                    let grown = Arc::new(SegmentMap {
                        runs,
                        last_seg: map.last_seg,
                    });
                    self.maps.hits.fetch_add(1, Ordering::Relaxed);
                    return self.maps.publish(geom, grown);
                }
            }
        }
        self.maps.misses.fetch_add(1, Ordering::Relaxed);
        let map = Arc::new(self.build_map(geom));
        self.maps.publish(geom, map)
    }

    /// The longest cached map sharing `(start, step)` with a stream anchored
    /// at `start` — the geometry-known fast path for accrual: a cached map's
    /// prefix prices the stream's first `len` samples with the exact `f64`s
    /// cursor advance would produce. Returns the map and its geometry
    /// length; does not touch hit/miss counters (nothing was built or
    /// skipped yet).
    pub(crate) fn prefix_map(&self, start: u64, step: u64) -> Option<(Arc<SegmentMap>, usize)> {
        let entries = self.maps.snapshot();
        entries
            .iter()
            .filter(|(g, _)| g.start == start && g.step == step)
            .max_by_key(|(g, _)| g.len)
            .map(|(g, m)| (Arc::clone(m), g.len))
    }

    /// `(hits, misses)` of this timeline's segment-map cache.
    fn map_stats(&self) -> (u64, u64) {
        (
            self.maps.hits.load(Ordering::Relaxed),
            self.maps.misses.load(Ordering::Relaxed),
        )
    }

    /// Energy cost of a load: replay the cached segment map over the sample
    /// sequence. Replicates `PowerSeries::cost_against` exactly —
    /// `Σ v[i]·h·price`, accumulated in sample order — so the result is
    /// bit-identical to the interpreted path.
    fn cost(&self, load: &PowerSeries) -> Money {
        let map = self.map_for(load);
        let h = load.step().as_hours();
        let values = load.values();
        let mut dollars = 0.0f64;
        let mut i = 0usize;
        for &(end, price) in &map.runs {
            for p in &values[i..end] {
                dollars += p.as_kilowatts() * h * price;
            }
            i = end;
        }
        Money::from_dollars(dollars)
    }

    /// Energy cost via the vectorized fast path: each run is reduced with
    /// 8-lane pairwise summation and scaled by `h·price` once, and the
    /// per-run totals are pairwise-summed in turn. Within a `1e-12` relative
    /// tolerance of [`PriceTimeline::cost`] for horizons up to a year (the
    /// pairwise tree error is `O(log n)` rounding terms over same-sign
    /// addends).
    fn cost_fast(&self, load: &PowerSeries) -> Money {
        let map = self.map_for(load);
        let h = load.step().as_hours();
        let kw = Power::kilowatts_slice(load.values());
        let mut run_totals = Vec::with_capacity(map.runs.len());
        let mut i = 0usize;
        for &(end, price) in &map.runs {
            run_totals.push(kernels::sum_pairwise(&kw[i..end]) * (h * price));
            i = end;
        }
        Money::from_dollars(kernels::sum_pairwise(&run_totals))
    }
}

/// The lowered form of one tariff component.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LoweredTariff {
    /// Fixed, TOU, and dynamic tariffs lower to a price timeline.
    Strip(PriceTimeline),
    /// Block tariffs keep their schedule (the marginal price depends on
    /// cumulative monthly volume, not time) but bucket through the shared
    /// month-boundary index.
    Block(BlockTariff),
}

/// One compiled tariff piece: the source component, its fingerprint (the
/// piece's cache key), and its lowered form. Pieces are immutable and shared
/// behind [`Arc`] — patching a contract clones `Arc`s, not timelines.
#[derive(Debug, PartialEq)]
pub(crate) struct CompiledTariff {
    pub(crate) source: Tariff,
    pub(crate) fingerprint: ComponentFingerprint,
    pub(crate) lowered: LoweredTariff,
}

impl CompiledTariff {
    pub(crate) fn kind(&self) -> ContractComponentKind {
        self.source.kind()
    }
}

/// Lower one tariff component into a shared piece. The single lowering
/// routine used by [`CompiledContract::compile`] and
/// [`CompiledContract::patch`]: a piece depends only on
/// `(calendar, tariff, start, end)`, so a reused piece is byte-for-byte what
/// a recompile would have produced.
fn lower_tariff(
    cal: &Calendar,
    tariff: &Tariff,
    start: SimTime,
    end: SimTime,
) -> Result<Arc<CompiledTariff>> {
    let lowered = match tariff {
        Tariff::Block(b) => {
            b.validate()?;
            LoweredTariff::Block(b.clone())
        }
        other => LoweredTariff::Strip(PriceTimeline::compile(cal, other, start, end)),
    };
    Ok(Arc::new(CompiledTariff {
        fingerprint: fingerprint::of_tariff(tariff),
        source: tariff.clone(),
        lowered,
    }))
}

/// A contract lowered against a calendar and a `[start, end)` horizon.
///
/// Billing any load inside the horizon makes **no calendar calls**: tariff
/// pricing is a segment merge, and month bucketing (demand charges, block
/// tariffs, service fees) is binary search + cursor walk over the
/// precomputed month-boundary index. Results are bit-identical to
/// [`crate::billing::BillingEngine`].
///
/// # Example: compile once, bill
///
/// ```
/// use hpcgrid_core::compiled::CompiledContract;
/// use hpcgrid_core::contract::Contract;
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_timeseries::series::Series;
/// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
///
/// let contract = Contract::builder("flat")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let cal = Calendar::default();
/// let compiled =
///     CompiledContract::compile(&cal, &contract, SimTime::EPOCH, SimTime::from_days(30))?;
///
/// // 24 hours at a constant 8 MW: 8000 kW · 24 h · 0.07 $/kWh.
/// let load = Series::constant(
///     SimTime::EPOCH,
///     Duration::from_hours(1.0),
///     Power::from_megawatts(8.0),
///     24,
/// )?;
/// let bill = compiled.bill(&load)?;
/// assert!((bill.total().as_dollars() - 8_000.0 * 24.0 * 0.07).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledContract {
    pub(crate) name: String,
    /// The calendar the kernel was lowered under; kept so `patch` can
    /// re-lower a single piece under identical conditions.
    calendar: Calendar,
    pub(crate) start: SimTime,
    pub(crate) end: SimTime,
    /// Billing-month index of `start`.
    pub(crate) first_month: u64,
    /// Month-start midnights strictly inside `(start, end)`, in seconds.
    /// Shared behind `Arc` so a [`MonthCursor`] (and every streaming accrual
    /// holding one) costs a pointer, not a copy.
    pub(crate) month_starts: Arc<[u64]>,
    pub(crate) tariffs: Vec<Arc<CompiledTariff>>,
    pub(crate) demand_charge: Option<DemandCharge>,
    pub(crate) powerband: Option<Powerband>,
    pub(crate) emergency: Option<EmergencyDrClause>,
    pub(crate) monthly_fee: Money,
    /// Numerical fidelity of evaluation (see [`Precision`]); defaults to
    /// the `HPCGRID_PRECISION` env selection at compile time.
    precision: Precision,
}

impl CompiledContract {
    /// Lower `contract` under `calendar` for loads inside `[start, end)`.
    ///
    /// Component parameters are validated here, once, instead of on every
    /// bill. Errors if the horizon is empty.
    pub fn compile(
        calendar: &Calendar,
        contract: &Contract,
        start: SimTime,
        end: SimTime,
    ) -> Result<CompiledContract> {
        if start >= end {
            return Err(CoreError::BadSeries(format!(
                "compile horizon [{start}, {end}) is empty"
            )));
        }
        let mut month_starts = Vec::new();
        let mut t = start;
        loop {
            let b = calendar.next_month_start(t);
            if b >= end {
                break;
            }
            month_starts.push(b.as_secs());
            t = b;
        }
        let mut tariffs = Vec::with_capacity(contract.tariffs.len());
        for tariff in &contract.tariffs {
            tariffs.push(lower_tariff(calendar, tariff, start, end)?);
        }
        if let Some(dc) = &contract.demand_charge {
            dc.validate()?;
        }
        if let Some(pb) = &contract.powerband {
            pb.validate()?;
        }
        Ok(CompiledContract {
            name: contract.name.clone(),
            calendar: *calendar,
            start,
            end,
            first_month: calendar.billing_month(start),
            month_starts: month_starts.into(),
            tariffs,
            demand_charge: contract.demand_charge,
            powerband: contract.powerband,
            emergency: contract.emergency,
            monthly_fee: contract.monthly_fee,
            precision: Precision::from_env(),
        })
    }

    /// The same kernel evaluating at an explicit [`Precision`]. Lowered
    /// pieces (and their segment-map caches) are shared with `self`, so
    /// switching precision costs nothing.
    pub fn with_precision(mut self, precision: Precision) -> CompiledContract {
        self.precision = precision;
        self
    }

    /// The precision this kernel bills at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Aggregate `(hits, misses)` of the per-timeline segment-map caches.
    /// Hits are bills that skipped the `partition_point`/`div_ceil` segment
    /// merge entirely by reusing a cached geometry map. Patched kernels
    /// share unchanged pieces by `Arc`, so their cache stats (like the maps
    /// themselves) carry across [`CompiledContract::patch`].
    pub fn segment_map_stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for t in &self.tariffs {
            if let LoweredTariff::Strip(timeline) = &t.lowered {
                let (h, m) = timeline.map_stats();
                hits += h;
                misses += m;
            }
        }
        (hits, misses)
    }

    /// Re-lower only the component changed by `delta`, sharing every other
    /// piece with `self` by reference count.
    ///
    /// The patched kernel equals a fresh [`CompiledContract::compile`] of
    /// [`Contract::apply`]'s output — bills are bit-identical — but the work
    /// is proportional to the changed component alone. A replacement tariff
    /// whose [`ComponentFingerprint`] matches the piece already in place
    /// reuses that piece outright. Non-tariff deltas (demand charge,
    /// powerband, emergency clause, service fee) never touch a timeline:
    /// those components are interpreted against the shared month-boundary
    /// index, so the patch is a validated field write.
    ///
    /// This is also the primitive behind ledger hydration:
    /// [`ContractLedger::kernel_at`](crate::ledger::ContractLedger::kernel_at)
    /// walks forward from the nearest cached revision by patching one delta
    /// per ledger event instead of recompiling the hydrated contract.
    ///
    /// ```
    /// use hpcgrid_core::compiled::CompiledContract;
    /// use hpcgrid_core::contract::{Contract, ContractDelta};
    /// use hpcgrid_core::demand_charge::DemandCharge;
    /// use hpcgrid_core::tariff::Tariff;
    /// use hpcgrid_timeseries::series::Series;
    /// use hpcgrid_units::{Calendar, DemandPrice, Duration, EnergyPrice, Power, SimTime};
    ///
    /// let base = Contract::builder("base")
    ///     .tariff(Tariff::day_night(
    ///         EnergyPrice::per_kilowatt_hour(0.20),
    ///         EnergyPrice::per_kilowatt_hour(0.05),
    ///     ))
    ///     .build()?;
    /// let cal = Calendar::default();
    /// let horizon_end = SimTime::from_days(30);
    /// let compiled = CompiledContract::compile(&cal, &base, SimTime::EPOCH, horizon_end)?;
    ///
    /// // One scenario of a demand-charge sweep: patch, don't recompile.
    /// let delta = ContractDelta::SetDemandCharge(Some(DemandCharge::monthly(
    ///     DemandPrice::per_kilowatt_month(12.0),
    /// )));
    /// let patched = compiled.patch(&delta)?;
    ///
    /// // Bit-identical to compiling the mutated contract from scratch.
    /// let recompiled =
    ///     CompiledContract::compile(&cal, &base.apply(&delta)?, SimTime::EPOCH, horizon_end)?;
    /// let load = Series::constant(
    ///     SimTime::EPOCH,
    ///     Duration::from_minutes(15.0),
    ///     Power::from_megawatts(8.0),
    ///     30 * 96,
    /// )?;
    /// assert_eq!(patched.bill(&load)?, recompiled.bill(&load)?);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn patch(&self, delta: &ContractDelta) -> Result<CompiledContract> {
        let mut out = self.clone();
        match delta {
            ContractDelta::ReplaceTariff { index, tariff } => {
                let slot = out.tariffs.get_mut(*index).ok_or_else(|| {
                    CoreError::BadComponent(format!(
                        "tariff index {index} out of range (contract has {} tariffs)",
                        self.tariffs.len()
                    ))
                })?;
                if fingerprint::of_tariff(tariff) != slot.fingerprint {
                    *slot = lower_tariff(&self.calendar, tariff, self.start, self.end)?;
                }
            }
            ContractDelta::ReplacePriceStrip { index, strip } => {
                let slot = out.tariffs.get_mut(*index).ok_or_else(|| {
                    CoreError::BadComponent(format!(
                        "tariff index {index} out of range (contract has {} tariffs)",
                        self.tariffs.len()
                    ))
                })?;
                let d = match &slot.source {
                    Tariff::Dynamic(d) => d,
                    other => {
                        return Err(CoreError::BadComponent(format!(
                            "tariff #{index} is a {} tariff, not dynamic; \
                             only dynamic tariffs carry a price strip",
                            other.kind().label()
                        )))
                    }
                };
                let revised = Tariff::Dynamic(DynamicTariff {
                    prices: strip.clone(),
                    markup: d.markup,
                    fallback: d.fallback,
                });
                *slot = lower_tariff(&self.calendar, &revised, self.start, self.end)?;
            }
            ContractDelta::SetDemandCharge(dc) => {
                if let Some(dc) = dc {
                    dc.validate()?;
                }
                out.demand_charge = *dc;
            }
            ContractDelta::SetPowerband(pb) => {
                if let Some(pb) = pb {
                    pb.validate()?;
                }
                out.powerband = *pb;
            }
            ContractDelta::SetEmergency(e) => {
                if let Some(e) = e {
                    e.validate()?;
                }
                out.emergency = *e;
            }
            ContractDelta::SetMonthlyFee(fee) => {
                if *fee < Money::ZERO {
                    return Err(CoreError::BadComponent(
                        "monthly fee must be non-negative".into(),
                    ));
                }
                out.monthly_fee = *fee;
            }
        }
        Ok(out)
    }

    /// Splice a revised market-price strip into the contract's dynamic
    /// tariff, leaving every other piece shared with `self`.
    ///
    /// This is the sweep-facing form of
    /// [`ContractDelta::ReplacePriceStrip`]: the contract must contain
    /// exactly one dynamic tariff (errors otherwise — with several, address
    /// one by index through [`CompiledContract::patch`]). The revised
    /// tariff keeps the original markup and fallback; only the strip
    /// timeline is re-lowered, via the same routine full compilation uses,
    /// so the resulting bills are bit-identical to a recompile.
    ///
    /// ```
    /// use hpcgrid_core::compiled::CompiledContract;
    /// use hpcgrid_core::contract::Contract;
    /// use hpcgrid_core::tariff::Tariff;
    /// use hpcgrid_timeseries::series::Series;
    /// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
    ///
    /// let day = Duration::from_hours(24.0);
    /// let strip = |p: f64| {
    ///     Series::constant(SimTime::EPOCH, Duration::from_hours(1.0),
    ///                      EnergyPrice::per_kilowatt_hour(p), 24 * 30)
    /// };
    /// let contract = Contract::builder("market")
    ///     .tariff(Tariff::dynamic(
    ///         strip(0.05)?,
    ///         EnergyPrice::per_kilowatt_hour(0.01),  // retail markup
    ///         EnergyPrice::per_kilowatt_hour(0.09),  // fallback off-strip
    ///     ))
    ///     .build()?;
    /// let cal = Calendar::default();
    /// let compiled =
    ///     CompiledContract::compile(&cal, &contract, SimTime::EPOCH, SimTime::from_days(30))?;
    ///
    /// // A market revision doubles prices: splice, don't recompile.
    /// let revised = compiled.with_price_strip(&strip(0.10)?)?;
    /// let load = Series::constant(SimTime::EPOCH, Duration::from_hours(1.0),
    ///                             Power::from_megawatts(8.0), 24)?;
    /// let before = compiled.bill(&load)?.total().as_dollars();
    /// let after = revised.bill(&load)?.total().as_dollars();
    /// assert!((before - 8_000.0 * 24.0 * 0.06).abs() < 1e-9);
    /// assert!((after - 8_000.0 * 24.0 * 0.11).abs() < 1e-9);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn with_price_strip(&self, strip: &PriceSeries) -> Result<CompiledContract> {
        let mut dynamic_index = None;
        for (i, t) in self.tariffs.iter().enumerate() {
            if matches!(t.source, Tariff::Dynamic(_)) {
                if dynamic_index.is_some() {
                    return Err(CoreError::BadComponent(
                        "contract has multiple dynamic tariffs; use \
                         ContractDelta::ReplacePriceStrip to address one by index"
                            .into(),
                    ));
                }
                dynamic_index = Some(i);
            }
        }
        let index = dynamic_index.ok_or_else(|| {
            CoreError::BadComponent("contract has no dynamic tariff to revise".into())
        })?;
        self.patch(&ContractDelta::ReplacePriceStrip {
            index,
            strip: strip.clone(),
        })
    }

    /// The compile horizon `[start, end)`.
    pub fn horizon(&self) -> (SimTime, SimTime) {
        (self.start, self.end)
    }

    /// The calendar the kernel was lowered under.
    pub fn calendar(&self) -> Calendar {
        self.calendar
    }

    /// Reconstruct the source [`Contract`] this kernel was lowered from
    /// (with any patches applied).
    pub fn contract(&self) -> Contract {
        Contract {
            name: self.name.clone(),
            tariffs: self.tariffs.iter().map(|t| t.source.clone()).collect(),
            demand_charge: self.demand_charge,
            powerband: self.powerband,
            emergency: self.emergency,
            monthly_fee: self.monthly_fee,
        }
    }

    /// The whole-contract [`ComponentFingerprint`], folded from the cached
    /// per-piece fingerprints — equal to
    /// [`fingerprint::of_contract`] of [`CompiledContract::contract`], but
    /// computed without re-walking any strip payload. Scenario specs use
    /// this as the `base_contract` key when describing a sweep point as
    /// "base kernel + delta".
    pub fn fingerprint(&self) -> ComponentFingerprint {
        let fps: Vec<ComponentFingerprint> = self.tariffs.iter().map(|t| t.fingerprint).collect();
        fingerprint::of_contract_parts(
            &self.name,
            &fps,
            &self.demand_charge,
            &self.powerband,
            &self.emergency,
            self.monthly_fee,
        )
    }

    /// Per-tariff piece fingerprints, in tariff order.
    pub fn tariff_fingerprints(&self) -> Vec<ComponentFingerprint> {
        self.tariffs.iter().map(|t| t.fingerprint).collect()
    }

    /// Number of billing months the horizon touches.
    pub fn month_count(&self) -> usize {
        self.month_starts.len() + 1
    }

    /// Total price segments across all lowered tariffs (block tariffs
    /// contribute none).
    pub fn segment_count(&self) -> usize {
        self.tariffs
            .iter()
            .map(|t| match &t.lowered {
                LoweredTariff::Strip(timeline) => timeline.segments(),
                LoweredTariff::Block(_) => 0,
            })
            .sum()
    }

    /// Index of the first month boundary after `t_secs`.
    pub(crate) fn boundary_after(&self, t_secs: u64) -> usize {
        self.month_starts.partition_point(|b| *b <= t_secs)
    }

    /// The contract name this kernel was lowered from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A monotone price cursor over tariff `index`'s lowered segment
    /// timeline — the public form of the kernel's internal breakpoints, so
    /// streaming consumers ([`crate::accrual::BillAccrual`]) never re-derive
    /// them. Errors if `index` is out of range or names a block tariff
    /// (block pricing depends on cumulative monthly volume, not time, so it
    /// has no strip timeline).
    pub fn segment_cursor(&self, index: usize) -> Result<SegmentCursor> {
        let piece = self.tariffs.get(index).ok_or_else(|| {
            CoreError::BadComponent(format!(
                "tariff index {index} out of range (contract has {} tariffs)",
                self.tariffs.len()
            ))
        })?;
        match &piece.lowered {
            LoweredTariff::Strip(_) => Ok(SegmentCursor {
                piece: Arc::clone(piece),
                seg: 0,
            }),
            LoweredTariff::Block(_) => Err(CoreError::BadComponent(format!(
                "tariff #{index} is a block tariff; block pricing has no segment timeline"
            ))),
        }
    }

    /// A cursor over the kernel's month-boundary index — billing-month
    /// lookups without re-deriving calendar facts. Cheap to clone per meter:
    /// the boundary array is shared behind `Arc`.
    pub fn month_cursor(&self) -> MonthCursor {
        MonthCursor {
            starts: Arc::clone(&self.month_starts),
            first_month: self.first_month,
            bi: 0,
        }
    }

    fn check_in_horizon(&self, load: &PowerSeries) -> Result<()> {
        if load.start() < self.start || load.end() > self.end {
            return Err(CoreError::BadSeries(format!(
                "load [{}, {}) is outside the compiled horizon [{}, {})",
                load.start(),
                load.end(),
                self.start,
                self.end
            )));
        }
        Ok(())
    }

    /// Demand-charge assessment through the month-boundary index; produces
    /// the same `(cursor, boundary)` slices as `DemandCharge::assess`.
    fn assess_demand(
        &self,
        dc: &DemandCharge,
        load: &PowerSeries,
    ) -> Result<Vec<DemandAssessment>> {
        let mut out = Vec::new();
        let mut cursor = load.start();
        let end = load.end();
        let mut bi = self.boundary_after(cursor.as_secs());
        let mut month = self.first_month + bi as u64;
        while cursor < end {
            let boundary = match self.month_starts.get(bi) {
                Some(&b) => SimTime::from_secs(b).min(end),
                None => end,
            };
            let slice = load.slice_time(cursor, boundary);
            if !slice.is_empty() {
                let billed = dc.billed_demand(&slice)?;
                out.push(DemandAssessment {
                    month,
                    billed_demand: billed,
                    charge: billed * dc.price,
                });
            }
            cursor = boundary;
            bi += 1;
            month += 1;
        }
        Ok(out)
    }

    /// Fast demand-charge assessment: a branchless lane-max scan per billing
    /// month over the raw sample slice. Applies only when metering is an
    /// identity ([`DemandCharge::metering_is_identity`]); then the billed
    /// peak is *bit-equal* to [`CompiledContract::assess_demand`] because
    /// `f64::max` is associative over finite values. The month sample
    /// ranges replicate `Series::slice_time` exactly — floor start index,
    /// ceil end index — including its one-sample overlap at month boundaries
    /// that are not step-aligned.
    fn assess_demand_fast(&self, dc: &DemandCharge, load: &PowerSeries) -> Vec<DemandAssessment> {
        let kw = Power::kilowatts_slice(load.values());
        let t0 = load.start().as_secs();
        let step = load.step().as_secs();
        let len = load.len();
        let mut out = Vec::new();
        let mut cursor = load.start();
        let end = load.end();
        let mut bi = self.boundary_after(cursor.as_secs());
        let mut month = self.first_month + bi as u64;
        while cursor < end {
            let boundary = match self.month_starts.get(bi) {
                Some(&b) => SimTime::from_secs(b).min(end),
                None => end,
            };
            let i0 = ((cursor.as_secs() - t0) / step) as usize;
            let i1 = ((boundary.as_secs() - t0).div_ceil(step) as usize).min(len);
            if i1 > i0 {
                let peak = Power::from_kilowatts(kernels::max_lanes(&kw[i0..i1]));
                let billed = dc.apply_floor(peak);
                out.push(DemandAssessment {
                    month,
                    billed_demand: billed,
                    charge: billed * dc.price,
                });
            }
            cursor = boundary;
            bi += 1;
            month += 1;
        }
        out
    }

    /// Block-tariff cost through the month-boundary index. Replicates the
    /// interpreter's per-month accumulation (a `BTreeMap` filled in time
    /// order) as a cursor walk: same adds in the same order, months with no
    /// samples contribute nothing, monthly costs folded chronologically.
    fn block_cost(&self, b: &BlockTariff, load: &PowerSeries) -> Money {
        let step_h = load.step().as_hours();
        let step = load.step().as_secs();
        let mut t = load.start().as_secs();
        let mut bi = self.boundary_after(t);
        let mut monthly: Vec<f64> = Vec::new();
        let mut cur = 0.0f64;
        let mut have = false;
        for p in load.values() {
            while bi < self.month_starts.len() && self.month_starts[bi] <= t {
                bi += 1;
                if have {
                    monthly.push(cur);
                    cur = 0.0;
                    have = false;
                }
            }
            cur += p.as_kilowatts() * step_h;
            have = true;
            t += step;
        }
        if have {
            monthly.push(cur);
        }
        monthly
            .iter()
            .map(|kwh| b.monthly_cost(*kwh))
            .fold(Money::ZERO, |a, m| a + m)
    }

    /// Fast block-tariff cost: each billing month's kWh is an 8-lane
    /// pairwise sum scaled by the step width once, folded through
    /// `monthly_cost` chronologically. A sample belongs to the month its
    /// *start* lies in (month ranges do NOT overlap — unlike the demand
    /// slices), matching the interpreter's bucketing. `monthly_cost` is
    /// continuous piecewise-linear in kWh, so the pairwise perturbation of
    /// each bucket propagates within the documented `1e-12` relative
    /// tolerance.
    fn block_cost_fast(&self, b: &BlockTariff, load: &PowerSeries) -> Money {
        let kw = Power::kilowatts_slice(load.values());
        let step_h = load.step().as_hours();
        let step = load.step().as_secs();
        let t0 = load.start().as_secs();
        let len = load.len();
        let mut total = Money::ZERO;
        let mut i = 0usize;
        let mut bi = self.boundary_after(t0);
        while i < len {
            // Samples whose start time is below the boundary: strict `<`,
            // so the exclusive end index is ceil((boundary - t0) / step).
            let i_end = match self.month_starts.get(bi) {
                Some(&bnd) => ((bnd - t0).div_ceil(step) as usize).min(len),
                None => len,
            };
            bi += 1;
            if i_end > i {
                let kwh = kernels::sum_pairwise(&kw[i..i_end]) * step_h;
                total += b.monthly_cost(kwh);
                i = i_end;
            }
        }
        total
    }

    /// Billing months touched by `load` (for the service fee), from the
    /// boundary index alone.
    fn months_covered(&self, load: &PowerSeries) -> u64 {
        let first = self.boundary_after(load.start().as_secs());
        let last = self.boundary_after(load.end().as_secs() - 1);
        (last - first) as u64 + 1
    }

    /// Bill a load (no emergency events).
    pub fn bill(&self, load: &PowerSeries) -> Result<Bill> {
        self.bill_with_events(load, &IntervalSet::empty())
    }

    /// Bill a load, assessing the emergency clause against the given event
    /// windows. The load must lie inside the compile horizon.
    pub fn bill_with_events(&self, load: &PowerSeries, events: &IntervalSet) -> Result<Bill> {
        if load.is_empty() {
            return Err(CoreError::BadSeries("load series is empty".into()));
        }
        self.check_in_horizon(load)?;
        let fast = self.precision == Precision::Fast;
        let mut items = Vec::new();
        for (i, ct) in self.tariffs.iter().enumerate() {
            let amount = match (&ct.lowered, fast) {
                (LoweredTariff::Strip(timeline), false) => timeline.cost(load),
                (LoweredTariff::Strip(timeline), true) => timeline.cost_fast(load),
                (LoweredTariff::Block(b), false) => self.block_cost(b, load),
                (LoweredTariff::Block(b), true) => self.block_cost_fast(b, load),
            };
            items.push(LineItem {
                label: format!("{} tariff #{}", ct.kind().label(), i + 1),
                kind: Some(ct.kind()),
                amount,
            });
        }
        if let Some(dc) = &self.demand_charge {
            let assessments = if fast && dc.metering_is_identity(load.step()) {
                self.assess_demand_fast(dc, load)
            } else {
                self.assess_demand(dc, load)?
            };
            let amount = assessments.iter().map(|a| a.charge).sum();
            items.push(LineItem {
                label: format!("Demand charges ({} billing months)", assessments.len()),
                kind: Some(ContractComponentKind::DemandCharge),
                amount,
            });
        }
        if let Some(pb) = &self.powerband {
            // Already a single calendar-free pass; evaluated directly.
            let report = pb.evaluate(load)?;
            items.push(LineItem {
                label: format!(
                    "Powerband excursions ({} intervals)",
                    report.violations.len()
                ),
                kind: Some(ContractComponentKind::Powerband),
                amount: report.penalty_cost,
            });
        }
        if let Some(em) = &self.emergency {
            let assessment = em.assess(load, events)?;
            items.push(LineItem {
                label: format!(
                    "Emergency DR penalties ({} events)",
                    assessment.events.len()
                ),
                kind: Some(ContractComponentKind::EmergencyDr),
                amount: assessment.total_penalty,
            });
        }
        if self.monthly_fee > Money::ZERO {
            let months = self.months_covered(load);
            items.push(LineItem {
                label: format!("Service fee ({months} months)"),
                kind: None,
                amount: self.monthly_fee * months as f64,
            });
        }
        Ok(Bill {
            contract: self.name.clone(),
            items,
        })
    }
}

/// A monotone cursor over one lowered tariff's price timeline, from
/// [`CompiledContract::segment_cursor`].
///
/// The invariant it encapsulates: segment `i` covers
/// `[breaks[i], breaks[i+1])` (the last segment extends to the horizon end)
/// and prices are the exact `f64`s the interpreter's `price_at` would
/// produce, so the price in force at any in-horizon instant is
/// `prices[partition_point(breaks, <= t) - 1]`. The cursor amortizes that
/// lookup to O(1) for non-decreasing query times — the streaming-accrual
/// access pattern — and re-seeks by binary search when queried backwards.
#[derive(Debug, Clone)]
pub struct SegmentCursor {
    piece: Arc<CompiledTariff>,
    seg: usize,
}

impl SegmentCursor {
    fn timeline(&self) -> &PriceTimeline {
        match &self.piece.lowered {
            LoweredTariff::Strip(tl) => tl,
            LoweredTariff::Block(_) => unreachable!("segment cursors wrap strip pieces only"),
        }
    }

    /// The `$ / kWh` price in force at `t` (which must lie inside the
    /// compile horizon). Amortized O(1) for monotone `t`.
    pub fn price_at(&mut self, t: SimTime) -> EnergyPrice {
        let tl = match &self.piece.lowered {
            LoweredTariff::Strip(tl) => tl,
            LoweredTariff::Block(_) => unreachable!("segment cursors wrap strip pieces only"),
        };
        let ts = t.as_secs();
        if tl.breaks[self.seg] > ts {
            // Backward query: re-seek. partition_point ≥ 1 for in-horizon t
            // because breaks[0] is the horizon start.
            self.seg = tl.breaks.partition_point(|b| *b <= ts).saturating_sub(1);
        } else {
            while let Some(&b) = tl.breaks.get(self.seg + 1) {
                if b <= ts {
                    self.seg += 1;
                } else {
                    break;
                }
            }
        }
        EnergyPrice::per_kilowatt_hour(tl.prices[self.seg])
    }

    /// Index of the segment the cursor currently rests on.
    pub fn segment(&self) -> usize {
        self.seg
    }

    /// Number of segments in the underlying timeline.
    pub fn segment_count(&self) -> usize {
        self.timeline().segments()
    }
}

/// A cursor over a kernel's month-boundary index, from
/// [`CompiledContract::month_cursor`].
///
/// The invariant it encapsulates: the kernel precomputes the billing-month
/// start midnights strictly inside its horizon, and **boundary `i` closes
/// every sample whose start time is `>= starts[i]`** — a sample belongs to
/// the billing month its *start* lies in. `index_at(t)` is therefore
/// `partition_point(starts, <= t)`: the number of boundaries at or before
/// `t`, which is also the 0-based month slot of `t` within the horizon.
/// Cloning is a pointer copy (the boundary array is `Arc`-shared with the
/// kernel), so every meter in a fleet can hold one.
#[derive(Debug, Clone)]
pub struct MonthCursor {
    starts: Arc<[u64]>,
    first_month: u64,
    bi: usize,
}

impl MonthCursor {
    /// Number of month boundaries at or before `t` — `t`'s 0-based month
    /// slot. Pure binary search; does not move the cursor.
    pub fn index_of(&self, t: SimTime) -> usize {
        let ts = t.as_secs();
        self.starts.partition_point(|b| *b <= ts)
    }

    /// Like [`MonthCursor::index_of`] but amortized O(1) for non-decreasing
    /// `t` (re-seeks by binary search when queried backwards).
    pub fn advance_to(&mut self, t: SimTime) -> usize {
        let ts = t.as_secs();
        if self.bi > 0 && self.starts[self.bi - 1] > ts {
            self.bi = self.index_of(t);
        } else {
            while self.starts.get(self.bi).is_some_and(|b| *b <= ts) {
                self.bi += 1;
            }
        }
        self.bi
    }

    /// The billing-month number (as [`Calendar::billing_month`] counts them)
    /// in force at `t`. Amortized O(1) for monotone `t`.
    pub fn month_of(&mut self, t: SimTime) -> u64 {
        self.first_month + self.advance_to(t) as u64
    }

    /// The `i`-th month boundary, if it exists.
    pub fn boundary(&self, i: usize) -> Option<SimTime> {
        self.starts.get(i).map(|s| SimTime::from_secs(*s))
    }

    /// Billing-month number of the horizon start.
    pub fn first_month(&self) -> u64 {
        self.first_month
    }

    /// Number of billing months the horizon touches (boundaries + 1).
    pub fn month_count(&self) -> usize {
        self.starts.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::billing::BillingEngine;
    use crate::tariff::TouTariff;
    use hpcgrid_timeseries::series::Series;
    use hpcgrid_units::{DemandPrice, Duration, EnergyPrice, Power};

    fn load_15min(days: u64, mw: f64) -> PowerSeries {
        Series::constant(
            SimTime::EPOCH,
            Duration::from_minutes(15.0),
            Power::from_megawatts(mw),
            (days * 96) as usize,
        )
        .unwrap()
    }

    fn tou_contract() -> Contract {
        Contract::builder("tou")
            .tariff(Tariff::TimeOfUse(TouTariff::day_night(
                EnergyPrice::per_kilowatt_hour(0.20),
                EnergyPrice::per_kilowatt_hour(0.05),
            )))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .monthly_fee(Money::from_dollars(1_000.0))
            .build()
            .unwrap()
    }

    fn hourly_strip(start: SimTime, prices: &[f64]) -> PriceSeries {
        Series::new(
            start,
            Duration::from_hours(1.0),
            prices
                .iter()
                .map(|p| EnergyPrice::per_kilowatt_hour(*p))
                .collect(),
        )
        .unwrap()
    }

    fn dynamic_contract(strip: PriceSeries) -> Contract {
        Contract::builder("dyn")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.03)))
            .tariff(Tariff::dynamic(
                strip,
                EnergyPrice::per_kilowatt_hour(0.01),
                EnergyPrice::per_kilowatt_hour(0.09),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_matches_interpreted_exactly() {
        let cal = Calendar::default();
        let load = load_15min(40, 8.0);
        let engine = BillingEngine::new(cal);
        let compiled =
            CompiledContract::compile(&cal, &tou_contract(), load.start(), load.end()).unwrap();
        let a = engine.bill(&tou_contract(), &load).unwrap();
        let b = compiled.bill(&load).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn timeline_merges_constant_prices() {
        let cal = Calendar::default();
        let c = Contract::builder("fixed")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .build()
            .unwrap();
        let compiled =
            CompiledContract::compile(&cal, &c, SimTime::EPOCH, SimTime::from_days(365)).unwrap();
        assert_eq!(compiled.segment_count(), 1);
        assert_eq!(compiled.month_count(), 12);
    }

    #[test]
    fn rejects_loads_outside_horizon() {
        let cal = Calendar::default();
        let compiled = CompiledContract::compile(
            &cal,
            &tou_contract(),
            SimTime::EPOCH,
            SimTime::from_days(10),
        )
        .unwrap();
        let outside = load_15min(20, 5.0);
        assert!(matches!(
            compiled.bill(&outside),
            Err(CoreError::BadSeries(_))
        ));
    }

    #[test]
    fn rejects_empty_horizon_and_empty_load() {
        let cal = Calendar::default();
        assert!(
            CompiledContract::compile(&cal, &tou_contract(), SimTime::EPOCH, SimTime::EPOCH)
                .is_err()
        );
        let compiled =
            CompiledContract::compile(&cal, &tou_contract(), SimTime::EPOCH, SimTime::from_days(1))
                .unwrap();
        let empty = PowerSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap();
        assert!(compiled.bill(&empty).is_err());
    }

    #[test]
    fn mid_horizon_load_bills_identically() {
        // Compile a wide horizon; bill a load that starts mid-February.
        let cal = Calendar::default();
        let engine = BillingEngine::new(cal);
        let load = Series::constant(
            SimTime::from_days(45) + Duration::from_hours(7.0),
            Duration::from_minutes(15.0),
            Power::from_megawatts(6.0),
            50 * 96,
        )
        .unwrap();
        let compiled = CompiledContract::compile(
            &cal,
            &tou_contract(),
            SimTime::EPOCH,
            SimTime::from_days(365),
        )
        .unwrap();
        assert_eq!(
            engine.bill(&tou_contract(), &load).unwrap(),
            compiled.bill(&load).unwrap()
        );
    }

    #[test]
    fn patch_equals_recompile_of_applied_contract() {
        let cal = Calendar::default();
        let strip = hourly_strip(SimTime::EPOCH, &[0.05; 24 * 10]);
        let base = dynamic_contract(strip);
        let end = SimTime::from_days(40);
        let compiled = CompiledContract::compile(&cal, &base, SimTime::EPOCH, end).unwrap();
        let load = load_15min(40, 8.0);

        let deltas = [
            ContractDelta::price_strip(1, hourly_strip(SimTime::from_days(2), &[0.11; 24 * 5])),
            ContractDelta::SetDemandCharge(Some(DemandCharge::monthly(
                DemandPrice::per_kilowatt_month(15.0),
            ))),
            ContractDelta::SetMonthlyFee(Money::from_dollars(500.0)),
            ContractDelta::ReplaceTariff {
                index: 0,
                tariff: Tariff::day_night(
                    EnergyPrice::per_kilowatt_hour(0.12),
                    EnergyPrice::per_kilowatt_hour(0.04),
                ),
            },
        ];
        for delta in &deltas {
            let patched = compiled.patch(delta).unwrap();
            let recompiled =
                CompiledContract::compile(&cal, &base.apply(delta).unwrap(), SimTime::EPOCH, end)
                    .unwrap();
            assert_eq!(patched, recompiled, "kernel mismatch for {}", delta.label());
            assert_eq!(
                patched.bill(&load).unwrap(),
                recompiled.bill(&load).unwrap(),
                "bill mismatch for {}",
                delta.label()
            );
            assert_eq!(patched.fingerprint(), recompiled.fingerprint());
        }
        // The base kernel is untouched by patching.
        assert_eq!(
            compiled,
            CompiledContract::compile(&cal, &base, SimTime::EPOCH, end).unwrap()
        );
    }

    #[test]
    fn patch_shares_unchanged_pieces() {
        let cal = Calendar::default();
        let base = dynamic_contract(hourly_strip(SimTime::EPOCH, &[0.05; 24]));
        let compiled =
            CompiledContract::compile(&cal, &base, SimTime::EPOCH, SimTime::from_days(30)).unwrap();
        let patched = compiled
            .patch(&ContractDelta::price_strip(
                1,
                hourly_strip(SimTime::EPOCH, &[0.20; 24]),
            ))
            .unwrap();
        // Piece 0 (the fixed tariff) is the same allocation; piece 1 is new.
        assert!(Arc::ptr_eq(&compiled.tariffs[0], &patched.tariffs[0]));
        assert!(!Arc::ptr_eq(&compiled.tariffs[1], &patched.tariffs[1]));
        // Replacing a tariff with an identical one reuses the piece.
        let same = compiled
            .patch(&ContractDelta::ReplaceTariff {
                index: 0,
                tariff: Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.03)),
            })
            .unwrap();
        assert!(Arc::ptr_eq(&compiled.tariffs[0], &same.tariffs[0]));
    }

    #[test]
    fn with_price_strip_requires_exactly_one_dynamic_tariff() {
        let cal = Calendar::default();
        let strip = hourly_strip(SimTime::EPOCH, &[0.05; 24]);
        let horizon = SimTime::from_days(30);

        let none = Contract::builder("none")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .build()
            .unwrap();
        let compiled_none =
            CompiledContract::compile(&cal, &none, SimTime::EPOCH, horizon).unwrap();
        assert!(compiled_none.with_price_strip(&strip).is_err());

        let two = Contract::builder("two")
            .tariff(Tariff::dynamic(
                strip.clone(),
                EnergyPrice::ZERO,
                EnergyPrice::ZERO,
            ))
            .tariff(Tariff::dynamic(
                strip.clone(),
                EnergyPrice::ZERO,
                EnergyPrice::ZERO,
            ))
            .build()
            .unwrap();
        let compiled_two = CompiledContract::compile(&cal, &two, SimTime::EPOCH, horizon).unwrap();
        assert!(compiled_two.with_price_strip(&strip).is_err());

        let one = dynamic_contract(strip.clone());
        let compiled_one = CompiledContract::compile(&cal, &one, SimTime::EPOCH, horizon).unwrap();
        let spliced = compiled_one
            .with_price_strip(&hourly_strip(SimTime::EPOCH, &[0.50; 24]))
            .unwrap();
        // Markup and fallback survive the splice.
        match &spliced.contract().tariffs[1] {
            Tariff::Dynamic(d) => {
                assert_eq!(d.markup, EnergyPrice::per_kilowatt_hour(0.01));
                assert_eq!(d.fallback, EnergyPrice::per_kilowatt_hour(0.09));
            }
            other => panic!("expected dynamic tariff, got {other:?}"),
        }
    }

    #[test]
    fn contract_round_trips_through_compile() {
        let cal = Calendar::default();
        let base = dynamic_contract(hourly_strip(SimTime::EPOCH, &[0.05, 0.06, 0.07]));
        let compiled =
            CompiledContract::compile(&cal, &base, SimTime::EPOCH, SimTime::from_days(30)).unwrap();
        assert_eq!(compiled.contract(), base);
        assert_eq!(compiled.fingerprint(), fingerprint::of_contract(&base));
        assert_eq!(compiled.calendar(), cal);
        assert_eq!(
            compiled.tariff_fingerprints(),
            base.tariffs
                .iter()
                .map(fingerprint::of_tariff)
                .collect::<Vec<_>>()
        );
    }

    fn assert_close(a: Money, b: Money) {
        let (a, b) = (a.as_dollars(), b.as_dollars());
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() / scale <= 1e-12,
            "fast/exact mismatch: {a} vs {b}"
        );
    }

    #[test]
    fn fast_path_within_tolerance_and_demand_bit_equal() {
        let cal = Calendar::default();
        let load = load_15min(40, 8.0);
        let exact = CompiledContract::compile(&cal, &tou_contract(), load.start(), load.end())
            .unwrap()
            .with_precision(Precision::BitExact);
        // `clone` shares the lowered pieces (and their segment-map caches);
        // only the precision knob differs.
        let fast = exact.clone().with_precision(Precision::Fast);
        assert_eq!(fast.precision(), Precision::Fast);
        let a = exact.bill(&load).unwrap();
        let b = fast.bill(&load).unwrap();
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.label, y.label);
            assert_close(x.amount, y.amount);
        }
        // The demand charge (15-min interval over 15-min samples) takes the
        // lane-max path and is bit-equal, not merely close.
        let dc_kind = ContractComponentKind::DemandCharge;
        assert_eq!(
            a.item_for(dc_kind).unwrap().amount,
            b.item_for(dc_kind).unwrap().amount
        );
    }

    #[test]
    fn segment_maps_are_cached_per_geometry() {
        let cal = Calendar::default();
        let load = load_15min(30, 8.0);
        let compiled =
            CompiledContract::compile(&cal, &tou_contract(), load.start(), load.end()).unwrap();
        assert_eq!(compiled.segment_map_stats(), (0, 0));
        compiled.bill(&load).unwrap();
        let (h1, m1) = compiled.segment_map_stats();
        assert_eq!((h1, m1), (0, 1), "first geometry is a miss");
        compiled.bill(&load).unwrap();
        compiled
            .clone()
            .with_precision(Precision::Fast)
            .bill(&load)
            .unwrap();
        let (h2, m2) = compiled.segment_map_stats();
        assert_eq!(m2, 1, "same geometry never rebuilds");
        assert!(h2 >= 2, "repeat bills hit the cache: {h2}");
        // A different geometry is a fresh miss.
        compiled.bill(&load_15min(10, 8.0)).unwrap();
        assert_eq!(compiled.segment_map_stats().1, 2);
    }

    #[test]
    fn patched_kernel_shares_segment_maps_of_unchanged_pieces() {
        let cal = Calendar::default();
        let base = dynamic_contract(hourly_strip(SimTime::EPOCH, &[0.05; 24 * 30]));
        let compiled =
            CompiledContract::compile(&cal, &base, SimTime::EPOCH, SimTime::from_days(30)).unwrap();
        let load = load_15min(30, 8.0);
        compiled.bill(&load).unwrap();
        let misses_before = compiled.segment_map_stats().1;
        // A non-tariff patch shares every piece: billing the same geometry
        // through the patched kernel is all hits, zero rebuilds.
        let patched = compiled
            .patch(&ContractDelta::SetMonthlyFee(Money::from_dollars(99.0)))
            .unwrap();
        patched.bill(&load).unwrap();
        assert_eq!(patched.segment_map_stats().1, misses_before);
        assert!(patched.segment_map_stats().0 > 0);
    }

    #[test]
    fn fast_block_tariff_within_tolerance() {
        let cal = Calendar::default();
        let c = Contract::builder("block")
            .tariff(Tariff::Block(BlockTariff {
                blocks: vec![
                    crate::tariff::BlockStep {
                        up_to_kwh: Some(1_000_000.0),
                        price: EnergyPrice::per_kilowatt_hour(0.10),
                    },
                    crate::tariff::BlockStep {
                        up_to_kwh: None,
                        price: EnergyPrice::per_kilowatt_hour(0.06),
                    },
                ],
            }))
            .build()
            .unwrap();
        let load = load_15min(45, 7.3);
        let exact = CompiledContract::compile(&cal, &c, load.start(), load.end()).unwrap();
        let fast = exact.clone().with_precision(Precision::Fast);
        assert_close(
            exact.bill(&load).unwrap().total(),
            fast.bill(&load).unwrap().total(),
        );
    }

    #[test]
    fn dynamic_lowering_matches_price_at_on_and_off_strip() {
        // Strip starts mid-horizon and ends before the horizon does, so the
        // timeline must fall back on both sides.
        let cal = Calendar::default();
        let strip = hourly_strip(SimTime::from_days(3), &[0.05, 0.30, 0.05, 0.30]);
        let c = Contract::builder("offset")
            .tariff(Tariff::dynamic(
                strip,
                EnergyPrice::per_kilowatt_hour(0.015),
                EnergyPrice::per_kilowatt_hour(0.08),
            ))
            .build()
            .unwrap();
        let engine = BillingEngine::new(cal);
        let compiled =
            CompiledContract::compile(&cal, &c, SimTime::EPOCH, SimTime::from_days(10)).unwrap();
        let load = load_15min(10, 7.5);
        assert_eq!(
            engine.bill(&c, &load).unwrap(),
            compiled.bill(&load).unwrap()
        );
    }

    #[test]
    fn segment_cursor_matches_price_at() {
        let cal = Calendar::default();
        let c = tou_contract();
        let compiled =
            CompiledContract::compile(&cal, &c, SimTime::EPOCH, SimTime::from_days(7)).unwrap();
        let mut cursor = compiled.segment_cursor(0).unwrap();
        // Forward sweep at 15-min resolution, then a backward re-seek.
        for i in 0..(7 * 96) {
            let t = SimTime::from_secs(i * 900);
            assert_eq!(cursor.price_at(t), c.tariffs[0].price_at(&cal, t));
        }
        let back = SimTime::from_secs(3600);
        assert_eq!(cursor.price_at(back), c.tariffs[0].price_at(&cal, back));
        assert!(cursor.segment() < cursor.segment_count());
        // Out-of-range and block indexes are rejected.
        assert!(compiled.segment_cursor(1).is_err());
        let block = Contract::builder("b")
            .tariff(Tariff::Block(BlockTariff {
                blocks: vec![
                    crate::tariff::BlockStep {
                        up_to_kwh: Some(500.0),
                        price: EnergyPrice::per_kilowatt_hour(0.05),
                    },
                    crate::tariff::BlockStep {
                        up_to_kwh: None,
                        price: EnergyPrice::per_kilowatt_hour(0.09),
                    },
                ],
            }))
            .build()
            .unwrap();
        let cb =
            CompiledContract::compile(&cal, &block, SimTime::EPOCH, SimTime::from_days(7)).unwrap();
        assert!(cb.segment_cursor(0).is_err());
    }

    #[test]
    fn month_cursor_matches_boundary_index() {
        let cal = Calendar::default();
        let compiled = CompiledContract::compile(
            &cal,
            &tou_contract(),
            SimTime::EPOCH,
            SimTime::from_days(365),
        )
        .unwrap();
        let mut mc = compiled.month_cursor();
        assert_eq!(mc.month_count(), compiled.month_count());
        assert_eq!(mc.first_month(), cal.billing_month(SimTime::EPOCH));
        for d in 0..365 {
            let t = SimTime::from_days(d) + Duration::from_hours(3.0);
            assert_eq!(mc.index_of(t), compiled.boundary_after(t.as_secs()));
            assert_eq!(mc.advance_to(t), compiled.boundary_after(t.as_secs()));
            assert_eq!(mc.month_of(t), cal.billing_month(t));
        }
        // Backward query re-seeks.
        let t = SimTime::from_days(2);
        assert_eq!(mc.advance_to(t), compiled.boundary_after(t.as_secs()));
        assert_eq!(
            mc.boundary(0).map(|b| b.as_secs()),
            compiled.month_starts.first().copied()
        );
    }

    #[test]
    fn one_step_geometry_growth_extends_cached_map() {
        let cal = Calendar::default();
        let compiled = CompiledContract::compile(
            &cal,
            &tou_contract(),
            SimTime::EPOCH,
            SimTime::from_days(40),
        )
        .unwrap();
        let n = 30 * 96;
        compiled.bill(&load_15min(30, 8.0)).unwrap();
        assert_eq!(compiled.segment_map_stats(), (0, 1));
        // Same start/step, one more sample: the extension path reuses the
        // cached map — a hit, not a rebuild.
        let grown = Series::constant(
            SimTime::EPOCH,
            Duration::from_minutes(15.0),
            Power::from_megawatts(8.0),
            n + 1,
        )
        .unwrap();
        let bill = compiled.bill(&grown).unwrap();
        assert_eq!(compiled.segment_map_stats(), (1, 1));
        // And the extended map prices exactly what a cold kernel computes.
        let cold = CompiledContract::compile(
            &cal,
            &tou_contract(),
            SimTime::EPOCH,
            SimTime::from_days(40),
        )
        .unwrap();
        assert_eq!(bill, cold.bill(&grown).unwrap());
        assert_eq!(cold.segment_map_stats(), (0, 1));
        // Growth by more than one step has no cached predecessor geometry
        // and falls back to a full rebuild.
        let jumped = Series::constant(
            SimTime::EPOCH,
            Duration::from_minutes(15.0),
            Power::from_megawatts(8.0),
            n + 3,
        )
        .unwrap();
        compiled.bill(&jumped).unwrap();
        assert_eq!(compiled.segment_map_stats().1, 2);
    }

    #[test]
    fn poisoned_segment_map_cache_keeps_whole_snapshots() {
        let tl = PriceTimeline {
            breaks: vec![0, 12 * 3600],
            prices: vec![0.05, 0.11],
            maps: SegmentMapCache::default(),
        };
        let load = load_15min(1, 8.0);
        let expected = tl.cost(&load);
        assert_eq!(tl.map_stats(), (0, 1));

        // Poison the cache lock: a thread panics while holding the write
        // guard. Under copy-on-write the published snapshot is always whole
        // (the swap is one Arc store), so unlike the old Mutex'd Vec there
        // is no torn state to distrust.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = tl.maps.entries.write().unwrap();
                panic!("injected panic while holding the segment-map lock");
            })
            .join()
            .unwrap_err();
        });
        assert!(tl.maps.entries.is_poisoned());

        // Recovery keeps the snapshot: the stream prefix probe still sees
        // the cached map...
        assert!(tl.prefix_map(0, 900).is_some());
        // ...and the next bill is a cache hit to the same cost.
        assert_eq!(tl.cost(&load), expected);
        assert_eq!(tl.map_stats(), (1, 1));
        // Writes keep working after recovery: a new geometry publishes.
        tl.cost(&load_15min(7, 8.0));
        assert_eq!(tl.map_stats(), (1, 2));
        assert_eq!(tl.cost(&load_15min(7, 8.0)), tl.cost(&load_15min(7, 8.0)));
    }
}
