//! The compiled billing kernel: contracts lowered to flat segment timelines.
//!
//! [`crate::billing::BillingEngine::bill`] re-derives civil-calendar facts for
//! every sample — `Calendar::month`, `weekday`, `time_of_day` per interval in
//! [`crate::tariff::TouTariff::price_at`], `Calendar::billing_month` per
//! interval in block-tariff bucketing — so sweep cost is dominated by
//! redundant calendar arithmetic. This module compiles a
//! [`Contract`] + [`Calendar`] + time horizon once into:
//!
//! * a **price timeline** per energy tariff: piecewise-constant `$ / kWh`
//!   segments whose breakpoints are precomputed `SimTime` seconds (TOU window
//!   edges per day, dynamic-strip interval edges), so pricing a
//!   [`PowerSeries`] is a single linear merge of two sorted sequences;
//! * a **month-boundary index**: the billing-month start midnights inside the
//!   horizon, shared by demand-charge bucketing, block-tariff bucketing, and
//!   the service-fee month count.
//!
//! Evaluation is **bit-identical** to the interpreted path: segment prices
//! are computed with the same `price_at` calls the interpreter would make,
//! and every floating-point accumulation replicates the interpreter's
//! expression shape and summation order (see `compiled_equivalence`
//! integration tests). Compilation costs one `price_at` call per candidate
//! breakpoint (a few per day of horizon), so it amortizes after roughly two
//! bills per contract, or a single bill over a month-scale series.

use crate::billing::{Bill, LineItem};
use crate::contract::Contract;
use crate::demand_charge::{DemandAssessment, DemandCharge};
use crate::emergency::EmergencyDrClause;
use crate::powerband::Powerband;
use crate::tariff::{BlockTariff, Tariff};
use crate::typology::ContractComponentKind;
use crate::{CoreError, Result};
use hpcgrid_timeseries::intervals::IntervalSet;
use hpcgrid_timeseries::series::PowerSeries;
use hpcgrid_units::time::SECS_PER_DAY;
use hpcgrid_units::{Calendar, Money, SimTime};

/// A piecewise-constant price timeline: segment `i` covers
/// `[breaks[i], breaks[i+1])` (the last segment extends to the compile
/// horizon's end) at `prices[i]` dollars per kWh. Adjacent segments with
/// bitwise-equal prices are merged at compile time.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceTimeline {
    /// Segment start times in seconds; `breaks[0]` is the horizon start.
    breaks: Vec<u64>,
    /// Segment prices in `$ / kWh`, one per break.
    prices: Vec<f64>,
}

impl PriceTimeline {
    /// Lower a time-based tariff (fixed, TOU, or dynamic) over `[start, end)`.
    ///
    /// Candidate breakpoints are the horizon start plus, for TOU, each
    /// window's `from`/`to` edge and midnight of every day in the horizon;
    /// for dynamic tariffs, every strip interval edge. Segment prices are
    /// computed with the interpreter's own [`Tariff::price_at`], so any
    /// sample inside a segment sees the exact `f64` the interpreted path
    /// would use. A window-membership change can only happen at a candidate
    /// breakpoint: month and weekday are constant within a day, and
    /// `Calendar::time_of_day` truncates to minutes while window edges are
    /// minute-aligned.
    fn compile(cal: &Calendar, tariff: &Tariff, start: SimTime, end: SimTime) -> PriceTimeline {
        let s0 = start.as_secs();
        let e = end.as_secs();
        let mut cuts: Vec<u64> = Vec::new();
        match tariff {
            Tariff::Fixed(_) => {}
            Tariff::TimeOfUse(tou) => {
                let mut offsets: Vec<u64> = vec![0];
                for w in &tou.windows {
                    offsets.push(w.from.seconds_into_day());
                    offsets.push(w.to.seconds_into_day());
                }
                offsets.sort_unstable();
                offsets.dedup();
                let first_day = s0 / SECS_PER_DAY;
                let last_day = (e - 1) / SECS_PER_DAY;
                for day in first_day..=last_day {
                    let base = day * SECS_PER_DAY;
                    for &off in &offsets {
                        let cut = base + off;
                        if cut > s0 && cut < e {
                            cuts.push(cut);
                        }
                    }
                }
            }
            Tariff::Dynamic(d) => {
                let step = d.prices.step().as_secs();
                let strip_start = d.prices.start().as_secs();
                for i in 0..=d.prices.len() as u64 {
                    let cut = strip_start + i * step;
                    if cut > s0 && cut < e {
                        cuts.push(cut);
                    }
                }
            }
            Tariff::Block(_) => unreachable!("block tariffs are not strip-compiled"),
        }
        let mut breaks = vec![s0];
        let mut prices = vec![tariff.price_at(cal, start).as_dollars_per_kilowatt_hour()];
        for cut in cuts {
            let p = tariff
                .price_at(cal, SimTime::from_secs(cut))
                .as_dollars_per_kilowatt_hour();
            // Merge bitwise-equal neighbours: the merged segment prices every
            // sample with the same f64 either way.
            if p.to_bits() != prices[prices.len() - 1].to_bits() {
                breaks.push(cut);
                prices.push(p);
            }
        }
        PriceTimeline { breaks, prices }
    }

    /// Number of price segments.
    pub fn segments(&self) -> usize {
        self.prices.len()
    }

    /// Energy cost of a load: the linear merge of the sample sequence and
    /// the segment sequence. Replicates `PowerSeries::cost_against` exactly:
    /// `Σ v[i]·h·price`, accumulated in sample order.
    fn cost(&self, load: &PowerSeries) -> Money {
        let h = load.step().as_hours();
        let step = load.step().as_secs();
        let t0 = load.start().as_secs();
        let values = load.values();
        let mut dollars = 0.0f64;
        // Segment covering the first sample: breaks[seg] <= t0 < breaks[seg+1]
        // (breaks[0] is the horizon start, which bounds the load from below).
        let mut seg = self.breaks.partition_point(|b| *b <= t0) - 1;
        let mut i = 0usize;
        while i < values.len() {
            // Sample `j` (at t0 + j·step) lies in this segment while its time
            // is below the next break; run the whole slice at one price so
            // the segment lookup leaves the per-sample loop.
            let i_end = match self.breaks.get(seg + 1) {
                Some(&b) => ((b - t0).div_ceil(step) as usize).min(values.len()),
                None => values.len(),
            };
            let price = self.prices[seg];
            for p in &values[i..i_end] {
                dollars += p.as_kilowatts() * h * price;
            }
            i = i_end;
            seg += 1;
        }
        Money::from_dollars(dollars)
    }
}

/// One lowered energy-tariff component.
#[derive(Debug, Clone, PartialEq)]
enum CompiledTariff {
    /// Fixed, TOU, and dynamic tariffs lower to a price timeline.
    Strip {
        kind: ContractComponentKind,
        timeline: PriceTimeline,
    },
    /// Block tariffs keep their schedule (the marginal price depends on
    /// cumulative monthly volume, not time) but bucket through the shared
    /// month-boundary index.
    Block(BlockTariff),
}

impl CompiledTariff {
    fn kind(&self) -> ContractComponentKind {
        match self {
            CompiledTariff::Strip { kind, .. } => *kind,
            CompiledTariff::Block(_) => ContractComponentKind::FixedTariff,
        }
    }
}

/// A contract lowered against a calendar and a `[start, end)` horizon.
///
/// Billing any load inside the horizon makes **no calendar calls**: tariff
/// pricing is a segment merge, and month bucketing (demand charges, block
/// tariffs, service fees) is binary search + cursor walk over the
/// precomputed month-boundary index. Results are bit-identical to
/// [`crate::billing::BillingEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledContract {
    name: String,
    start: SimTime,
    end: SimTime,
    /// Billing-month index of `start`.
    first_month: u64,
    /// Month-start midnights strictly inside `(start, end)`, in seconds.
    month_starts: Vec<u64>,
    tariffs: Vec<CompiledTariff>,
    demand_charge: Option<DemandCharge>,
    powerband: Option<Powerband>,
    emergency: Option<EmergencyDrClause>,
    monthly_fee: Money,
}

impl CompiledContract {
    /// Lower `contract` under `calendar` for loads inside `[start, end)`.
    ///
    /// Component parameters are validated here, once, instead of on every
    /// bill. Errors if the horizon is empty.
    pub fn compile(
        calendar: &Calendar,
        contract: &Contract,
        start: SimTime,
        end: SimTime,
    ) -> Result<CompiledContract> {
        if start >= end {
            return Err(CoreError::BadSeries(format!(
                "compile horizon [{start}, {end}) is empty"
            )));
        }
        let mut month_starts = Vec::new();
        let mut t = start;
        loop {
            let b = calendar.next_month_start(t);
            if b >= end {
                break;
            }
            month_starts.push(b.as_secs());
            t = b;
        }
        let mut tariffs = Vec::with_capacity(contract.tariffs.len());
        for tariff in &contract.tariffs {
            tariffs.push(match tariff {
                Tariff::Block(b) => {
                    b.validate()?;
                    CompiledTariff::Block(b.clone())
                }
                other => CompiledTariff::Strip {
                    kind: other.kind(),
                    timeline: PriceTimeline::compile(calendar, other, start, end),
                },
            });
        }
        if let Some(dc) = &contract.demand_charge {
            dc.validate()?;
        }
        if let Some(pb) = &contract.powerband {
            pb.validate()?;
        }
        Ok(CompiledContract {
            name: contract.name.clone(),
            start,
            end,
            first_month: calendar.billing_month(start),
            month_starts,
            tariffs,
            demand_charge: contract.demand_charge,
            powerband: contract.powerband,
            emergency: contract.emergency,
            monthly_fee: contract.monthly_fee,
        })
    }

    /// The compile horizon `[start, end)`.
    pub fn horizon(&self) -> (SimTime, SimTime) {
        (self.start, self.end)
    }

    /// Number of billing months the horizon touches.
    pub fn month_count(&self) -> usize {
        self.month_starts.len() + 1
    }

    /// Total price segments across all lowered tariffs (block tariffs
    /// contribute none).
    pub fn segment_count(&self) -> usize {
        self.tariffs
            .iter()
            .map(|t| match t {
                CompiledTariff::Strip { timeline, .. } => timeline.segments(),
                CompiledTariff::Block(_) => 0,
            })
            .sum()
    }

    /// Index of the first month boundary after `t_secs`.
    fn boundary_after(&self, t_secs: u64) -> usize {
        self.month_starts.partition_point(|b| *b <= t_secs)
    }

    fn check_in_horizon(&self, load: &PowerSeries) -> Result<()> {
        if load.start() < self.start || load.end() > self.end {
            return Err(CoreError::BadSeries(format!(
                "load [{}, {}) is outside the compiled horizon [{}, {})",
                load.start(),
                load.end(),
                self.start,
                self.end
            )));
        }
        Ok(())
    }

    /// Demand-charge assessment through the month-boundary index; produces
    /// the same `(cursor, boundary)` slices as `DemandCharge::assess`.
    fn assess_demand(
        &self,
        dc: &DemandCharge,
        load: &PowerSeries,
    ) -> Result<Vec<DemandAssessment>> {
        let mut out = Vec::new();
        let mut cursor = load.start();
        let end = load.end();
        let mut bi = self.boundary_after(cursor.as_secs());
        let mut month = self.first_month + bi as u64;
        while cursor < end {
            let boundary = match self.month_starts.get(bi) {
                Some(&b) => SimTime::from_secs(b).min(end),
                None => end,
            };
            let slice = load.slice_time(cursor, boundary);
            if !slice.is_empty() {
                let billed = dc.billed_demand(&slice)?;
                out.push(DemandAssessment {
                    month,
                    billed_demand: billed,
                    charge: billed * dc.price,
                });
            }
            cursor = boundary;
            bi += 1;
            month += 1;
        }
        Ok(out)
    }

    /// Block-tariff cost through the month-boundary index. Replicates the
    /// interpreter's per-month accumulation (a `BTreeMap` filled in time
    /// order) as a cursor walk: same adds in the same order, months with no
    /// samples contribute nothing, monthly costs folded chronologically.
    fn block_cost(&self, b: &BlockTariff, load: &PowerSeries) -> Money {
        let step_h = load.step().as_hours();
        let step = load.step().as_secs();
        let mut t = load.start().as_secs();
        let mut bi = self.boundary_after(t);
        let mut monthly: Vec<f64> = Vec::new();
        let mut cur = 0.0f64;
        let mut have = false;
        for p in load.values() {
            while bi < self.month_starts.len() && self.month_starts[bi] <= t {
                bi += 1;
                if have {
                    monthly.push(cur);
                    cur = 0.0;
                    have = false;
                }
            }
            cur += p.as_kilowatts() * step_h;
            have = true;
            t += step;
        }
        if have {
            monthly.push(cur);
        }
        monthly
            .iter()
            .map(|kwh| b.monthly_cost(*kwh))
            .fold(Money::ZERO, |a, m| a + m)
    }

    /// Billing months touched by `load` (for the service fee), from the
    /// boundary index alone.
    fn months_covered(&self, load: &PowerSeries) -> u64 {
        let first = self.boundary_after(load.start().as_secs());
        let last = self.boundary_after(load.end().as_secs() - 1);
        (last - first) as u64 + 1
    }

    /// Bill a load (no emergency events).
    pub fn bill(&self, load: &PowerSeries) -> Result<Bill> {
        self.bill_with_events(load, &IntervalSet::empty())
    }

    /// Bill a load, assessing the emergency clause against the given event
    /// windows. The load must lie inside the compile horizon.
    pub fn bill_with_events(&self, load: &PowerSeries, events: &IntervalSet) -> Result<Bill> {
        if load.is_empty() {
            return Err(CoreError::BadSeries("load series is empty".into()));
        }
        self.check_in_horizon(load)?;
        let mut items = Vec::new();
        for (i, ct) in self.tariffs.iter().enumerate() {
            let amount = match ct {
                CompiledTariff::Strip { timeline, .. } => timeline.cost(load),
                CompiledTariff::Block(b) => self.block_cost(b, load),
            };
            items.push(LineItem {
                label: format!("{} tariff #{}", ct.kind().label(), i + 1),
                kind: Some(ct.kind()),
                amount,
            });
        }
        if let Some(dc) = &self.demand_charge {
            let assessments = self.assess_demand(dc, load)?;
            let amount = assessments.iter().map(|a| a.charge).sum();
            items.push(LineItem {
                label: format!("Demand charges ({} billing months)", assessments.len()),
                kind: Some(ContractComponentKind::DemandCharge),
                amount,
            });
        }
        if let Some(pb) = &self.powerband {
            // Already a single calendar-free pass; evaluated directly.
            let report = pb.evaluate(load)?;
            items.push(LineItem {
                label: format!(
                    "Powerband excursions ({} intervals)",
                    report.violations.len()
                ),
                kind: Some(ContractComponentKind::Powerband),
                amount: report.penalty_cost,
            });
        }
        if let Some(em) = &self.emergency {
            let assessment = em.assess(load, events)?;
            items.push(LineItem {
                label: format!(
                    "Emergency DR penalties ({} events)",
                    assessment.events.len()
                ),
                kind: Some(ContractComponentKind::EmergencyDr),
                amount: assessment.total_penalty,
            });
        }
        if self.monthly_fee > Money::ZERO {
            let months = self.months_covered(load);
            items.push(LineItem {
                label: format!("Service fee ({months} months)"),
                kind: None,
                amount: self.monthly_fee * months as f64,
            });
        }
        Ok(Bill {
            contract: self.name.clone(),
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::billing::BillingEngine;
    use crate::tariff::TouTariff;
    use hpcgrid_timeseries::series::Series;
    use hpcgrid_units::{DemandPrice, Duration, EnergyPrice, Power};

    fn load_15min(days: u64, mw: f64) -> PowerSeries {
        Series::constant(
            SimTime::EPOCH,
            Duration::from_minutes(15.0),
            Power::from_megawatts(mw),
            (days * 96) as usize,
        )
        .unwrap()
    }

    fn tou_contract() -> Contract {
        Contract::builder("tou")
            .tariff(Tariff::TimeOfUse(TouTariff::day_night(
                EnergyPrice::per_kilowatt_hour(0.20),
                EnergyPrice::per_kilowatt_hour(0.05),
            )))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .monthly_fee(Money::from_dollars(1_000.0))
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_matches_interpreted_exactly() {
        let cal = Calendar::default();
        let load = load_15min(40, 8.0);
        let engine = BillingEngine::new(cal);
        let compiled =
            CompiledContract::compile(&cal, &tou_contract(), load.start(), load.end()).unwrap();
        let a = engine.bill(&tou_contract(), &load).unwrap();
        let b = compiled.bill(&load).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn timeline_merges_constant_prices() {
        let cal = Calendar::default();
        let c = Contract::builder("fixed")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .build()
            .unwrap();
        let compiled =
            CompiledContract::compile(&cal, &c, SimTime::EPOCH, SimTime::from_days(365)).unwrap();
        assert_eq!(compiled.segment_count(), 1);
        assert_eq!(compiled.month_count(), 12);
    }

    #[test]
    fn rejects_loads_outside_horizon() {
        let cal = Calendar::default();
        let compiled = CompiledContract::compile(
            &cal,
            &tou_contract(),
            SimTime::EPOCH,
            SimTime::from_days(10),
        )
        .unwrap();
        let outside = load_15min(20, 5.0);
        assert!(matches!(
            compiled.bill(&outside),
            Err(CoreError::BadSeries(_))
        ));
    }

    #[test]
    fn rejects_empty_horizon_and_empty_load() {
        let cal = Calendar::default();
        assert!(
            CompiledContract::compile(&cal, &tou_contract(), SimTime::EPOCH, SimTime::EPOCH)
                .is_err()
        );
        let compiled =
            CompiledContract::compile(&cal, &tou_contract(), SimTime::EPOCH, SimTime::from_days(1))
                .unwrap();
        let empty = PowerSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap();
        assert!(compiled.bill(&empty).is_err());
    }

    #[test]
    fn mid_horizon_load_bills_identically() {
        // Compile a wide horizon; bill a load that starts mid-February.
        let cal = Calendar::default();
        let engine = BillingEngine::new(cal);
        let load = Series::constant(
            SimTime::from_days(45) + Duration::from_hours(7.0),
            Duration::from_minutes(15.0),
            Power::from_megawatts(6.0),
            50 * 96,
        )
        .unwrap();
        let compiled = CompiledContract::compile(
            &cal,
            &tou_contract(),
            SimTime::EPOCH,
            SimTime::from_days(365),
        )
        .unwrap();
        assert_eq!(
            engine.bill(&tou_contract(), &load).unwrap(),
            compiled.bill(&load).unwrap()
        );
    }
}
