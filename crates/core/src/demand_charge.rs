//! Demand charges: the kW-domain component billed on billing-period peaks.
//!
//! Paper §3.2.2: *"part of the electricity price is determined based on the
//! peak consumption of a consumer across a billing period. For example, in a
//! case with three 15 MW peaks in a billing period, demand charges are
//! calculated based on these peaks and added to the electricity bill after
//! the billing period."* Utilities meter demand as the max (or an average of
//! the top-k) of interval means at a demand-interval width, typically
//! 15 minutes.

use crate::{CoreError, Result};
use hpcgrid_timeseries::{peaks, series::PowerSeries};
use hpcgrid_units::{Calendar, DemandPrice, Duration, Money, Power, SimTime};
use serde::{Deserialize, Serialize};

/// How the billed demand of a period is derived from its peaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DemandBasis {
    /// The single maximum demand interval.
    #[default]
    MaxPeak,
    /// The average of the `k` highest demand intervals (the paper's
    /// "three 15 MW peaks" example uses k = 3).
    TopKAverage(
        /// Number of peaks averaged.
        usize,
    ),
}

/// A demand-charge component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandCharge {
    /// Price per kW of billed demand, per billing month.
    pub price: DemandPrice,
    /// Metering demand-interval width.
    pub demand_interval: Duration,
    /// Basis for the billed demand.
    pub basis: DemandBasis,
    /// Minimum billed demand (ratchet floor), if any.
    pub floor: Option<Power>,
}

/// One billing period's demand-charge assessment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandAssessment {
    /// Billing month index (0-based from the calendar anchor).
    pub month: u64,
    /// Billed demand for the period.
    pub billed_demand: Power,
    /// Resulting charge.
    pub charge: Money,
}

impl DemandCharge {
    /// A monthly max-peak demand charge at the conventional 15-minute
    /// demand interval.
    pub fn monthly(price: DemandPrice) -> DemandCharge {
        DemandCharge {
            price,
            demand_interval: Duration::from_minutes(15.0),
            basis: DemandBasis::MaxPeak,
            floor: None,
        }
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<()> {
        if self.demand_interval.is_zero() {
            return Err(CoreError::BadComponent(
                "demand interval must be positive".into(),
            ));
        }
        if let DemandBasis::TopKAverage(k) = self.basis {
            if k == 0 {
                return Err(CoreError::BadComponent(
                    "top-k basis requires k >= 1".into(),
                ));
            }
        }
        Ok(())
    }

    /// True when metering a series of the given step at this charge's
    /// demand interval is an exact identity, making the billed demand a
    /// plain maximum over raw samples. Holds for the [`DemandBasis::MaxPeak`]
    /// basis whenever the demand interval is no coarser than the step:
    /// a finer interval meters at the data's own resolution, and an equal
    /// one downsamples by a factor of 1 — both return the samples verbatim
    /// (see `hpcgrid_timeseries::peaks::metered_demand`). This is the gate
    /// for the compiled kernel's lane-max fast path, which is then
    /// *bit-equal* to the exact scan because `f64::max` is associative over
    /// finite values.
    pub(crate) fn metering_is_identity(&self, step: Duration) -> bool {
        self.basis == DemandBasis::MaxPeak && self.demand_interval.as_secs() <= step.as_secs()
    }

    /// Apply the ratchet floor (if any) to a raw billed demand.
    pub(crate) fn apply_floor(&self, demand: Power) -> Power {
        match self.floor {
            Some(floor) => demand.max(floor),
            None => demand,
        }
    }

    /// Billed demand of one period's load slice.
    pub(crate) fn billed_demand(&self, slice: &PowerSeries) -> Result<Power> {
        let demand = match self.basis {
            DemandBasis::MaxPeak => {
                peaks::max_demand(slice, self.demand_interval)
                    .map_err(|e| CoreError::BadSeries(e.to_string()))?
                    .demand
            }
            DemandBasis::TopKAverage(k) => {
                let top = peaks::top_k_peaks(slice, self.demand_interval, k)
                    .map_err(|e| CoreError::BadSeries(e.to_string()))?;
                let sum: f64 = top.iter().map(|p| p.demand.as_kilowatts()).sum();
                Power::from_kilowatts(sum / top.len() as f64)
            }
        };
        Ok(self.apply_floor(demand))
    }

    /// Assess the charge for every billing month covered by `load`.
    pub fn assess(&self, cal: &Calendar, load: &PowerSeries) -> Result<Vec<DemandAssessment>> {
        self.validate()?;
        if load.is_empty() {
            return Ok(Vec::new());
        }
        // Split the load at billing-month boundaries: one O(1) calendar
        // step per month instead of re-scanning samples.
        let mut out = Vec::new();
        let mut cursor = load.start();
        let end = load.end();
        while cursor < end {
            let month = cal.billing_month(cursor);
            let boundary = cal.next_month_start(cursor).min(end);
            let slice = load.slice_time(cursor, boundary);
            if !slice.is_empty() {
                let billed = self.billed_demand(&slice)?;
                out.push(DemandAssessment {
                    month,
                    billed_demand: billed,
                    charge: billed * self.price,
                });
            }
            cursor = boundary;
        }
        Ok(out)
    }

    /// Total demand charge over the whole load.
    pub fn total(&self, cal: &Calendar, load: &PowerSeries) -> Result<Money> {
        Ok(self
            .assess(cal, load)?
            .iter()
            .map(|a| a.charge)
            .fold(Money::ZERO, |a, b| a + b))
    }
}

/// Convenience: the timestamp of the single worst demand peak over a load.
pub fn worst_peak(load: &PowerSeries, demand_interval: Duration) -> Result<(SimTime, Power)> {
    let p = peaks::max_demand(load, demand_interval)
        .map_err(|e| CoreError::BadSeries(e.to_string()))?;
    Ok((p.at, p.demand))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcgrid_timeseries::series::Series;

    fn load_hours(values_mw: Vec<f64>) -> PowerSeries {
        Series::new(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            values_mw.into_iter().map(Power::from_megawatts).collect(),
        )
        .unwrap()
    }

    #[test]
    fn monthly_max_peak() {
        let dc = DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0));
        // 48 h in January: peak 15 MW.
        let mut v = vec![10.0; 48];
        v[20] = 15.0;
        let a = dc.assess(&Calendar::default(), &load_hours(v)).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].month, 0);
        assert_eq!(a[0].billed_demand.as_megawatts(), 15.0);
        assert_eq!(a[0].charge.as_dollars(), 150_000.0);
    }

    #[test]
    fn charges_split_at_month_boundary() {
        let dc = DemandCharge::monthly(DemandPrice::per_kilowatt_month(1.0));
        // 32 days of 1 MW with a 20 MW peak on day 31 (February).
        let mut v = vec![1.0; 32 * 24];
        v[31 * 24 + 5] = 20.0;
        let a = dc.assess(&Calendar::default(), &load_hours(v)).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].month, 0);
        assert_eq!(a[0].billed_demand.as_megawatts(), 1.0);
        assert_eq!(a[1].month, 1);
        assert_eq!(a[1].billed_demand.as_megawatts(), 20.0);
        // January's bill is NOT ratcheted by February's peak: "In the next
        // billing period, if the peaks are 12 MW instead, the demand charges
        // are lowered accordingly."
        assert!(a[0].charge < a[1].charge);
    }

    #[test]
    fn top_k_average_basis() {
        let dc = DemandCharge {
            price: DemandPrice::per_kilowatt_month(1.0),
            demand_interval: Duration::from_hours(1.0),
            basis: DemandBasis::TopKAverage(3),
            floor: None,
        };
        // Peaks 15, 12, 9 → average 12 MW.
        let mut v = vec![1.0; 24];
        v[3] = 15.0;
        v[10] = 12.0;
        v[17] = 9.0;
        let a = dc.assess(&Calendar::default(), &load_hours(v)).unwrap();
        assert_eq!(a[0].billed_demand.as_megawatts(), 12.0);
    }

    #[test]
    fn ratchet_floor_applies() {
        let dc = DemandCharge {
            floor: Some(Power::from_megawatts(8.0)),
            ..DemandCharge::monthly(DemandPrice::per_kilowatt_month(1.0))
        };
        let a = dc
            .assess(&Calendar::default(), &load_hours(vec![2.0; 24]))
            .unwrap();
        assert_eq!(a[0].billed_demand.as_megawatts(), 8.0);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut dc = DemandCharge::monthly(DemandPrice::per_kilowatt_month(1.0));
        dc.demand_interval = Duration::ZERO;
        assert!(dc.validate().is_err());
        let dc2 = DemandCharge {
            basis: DemandBasis::TopKAverage(0),
            ..DemandCharge::monthly(DemandPrice::per_kilowatt_month(1.0))
        };
        assert!(dc2.validate().is_err());
    }

    #[test]
    fn empty_load_no_charge() {
        let dc = DemandCharge::monthly(DemandPrice::per_kilowatt_month(1.0));
        let empty = PowerSeries::new(SimTime::EPOCH, Duration::from_hours(1.0), vec![]).unwrap();
        assert!(dc.assess(&Calendar::default(), &empty).unwrap().is_empty());
        assert_eq!(dc.total(&Calendar::default(), &empty).unwrap(), Money::ZERO);
    }

    #[test]
    fn demand_interval_smooths_narrow_spikes() {
        // A single 15-min 20 MW spike over a 2 MW base: at a 15-min demand
        // interval the billed demand is 20 MW; at 1 h it is averaged down.
        let mut v = vec![2.0; 96];
        v[40] = 20.0;
        let load = Series::new(
            SimTime::EPOCH,
            Duration::from_minutes(15.0),
            v.into_iter().map(Power::from_megawatts).collect(),
        )
        .unwrap();
        let fine = DemandCharge::monthly(DemandPrice::per_kilowatt_month(1.0));
        let coarse = DemandCharge {
            demand_interval: Duration::from_hours(1.0),
            ..fine
        };
        let cal = Calendar::default();
        let bf = fine.assess(&cal, &load).unwrap()[0].billed_demand;
        let bc = coarse.assess(&cal, &load).unwrap()[0].billed_demand;
        assert_eq!(bf.as_megawatts(), 20.0);
        assert!((bc.as_megawatts() - 6.5).abs() < 1e-9); // (20+2+2+2)/4
    }

    #[test]
    fn metering_identity_gate() {
        // 15-min MaxPeak: identity for 15-min or coarser data, not finer.
        let dc = DemandCharge::monthly(DemandPrice::per_kilowatt_month(1.0));
        assert!(dc.metering_is_identity(Duration::from_minutes(15.0)));
        assert!(dc.metering_is_identity(Duration::from_hours(1.0)));
        assert!(!dc.metering_is_identity(Duration::from_minutes(5.0)));
        // Top-k averaging is never a plain max.
        let topk = DemandCharge {
            basis: DemandBasis::TopKAverage(3),
            ..dc
        };
        assert!(!topk.metering_is_identity(Duration::from_hours(1.0)));
    }

    #[test]
    fn worst_peak_reports_time() {
        let mut v = vec![1.0; 24];
        v[7] = 9.0;
        let (at, p) = worst_peak(&load_hours(v), Duration::from_hours(1.0)).unwrap();
        assert_eq!(at, SimTime::from_hours(7.0));
        assert_eq!(p.as_megawatts(), 9.0);
    }
}
