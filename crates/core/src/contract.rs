//! Composable electricity service contracts.
//!
//! A contract is a bundle of typology components: one or more tariffs (two
//! surveyed sites stack a variable service charge on a fixed tariff), an
//! optional demand charge, an optional powerband, an optional emergency-DR
//! clause, and a fixed monthly service fee. Location-specific taxes are out
//! of scope, as in the paper's typology (§3.2: "these are not included in
//! the typology as they cannot be generalized").

use crate::demand_charge::DemandCharge;
use crate::emergency::EmergencyDrClause;
use crate::powerband::Powerband;
use crate::tariff::Tariff;
use crate::typology::ContractComponentKind;
use crate::{CoreError, Result};
use hpcgrid_timeseries::series::PriceSeries;
use hpcgrid_units::Money;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An SC–ESP electricity service contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contract {
    /// Contract name (for reports).
    pub name: String,
    /// Energy tariff components (costs add; at least one).
    pub tariffs: Vec<Tariff>,
    /// Optional demand-charge component.
    pub demand_charge: Option<DemandCharge>,
    /// Optional powerband component.
    pub powerband: Option<Powerband>,
    /// Optional mandatory emergency-DR clause.
    pub emergency: Option<EmergencyDrClause>,
    /// Fixed service fee per billing month.
    pub monthly_fee: Money,
}

impl Contract {
    /// Start building a contract.
    pub fn builder(name: impl Into<String>) -> ContractBuilder {
        ContractBuilder {
            name: name.into(),
            tariffs: Vec::new(),
            demand_charge: None,
            powerband: None,
            emergency: None,
            monthly_fee: Money::ZERO,
        }
    }

    /// The typology classification of this contract: the set of component
    /// kinds present (one row of Table 2).
    pub fn component_kinds(&self) -> BTreeSet<ContractComponentKind> {
        let mut set = BTreeSet::new();
        for t in &self.tariffs {
            set.insert(t.kind());
        }
        if self.demand_charge.is_some() {
            set.insert(ContractComponentKind::DemandCharge);
        }
        if self.powerband.is_some() {
            set.insert(ContractComponentKind::Powerband);
        }
        if self.emergency.is_some() {
            set.insert(ContractComponentKind::EmergencyDr);
        }
        set
    }

    /// Does the contract contain a component of `kind`?
    pub fn has(&self, kind: ContractComponentKind) -> bool {
        self.component_kinds().contains(&kind)
    }

    /// Does any component encourage real-time DR (paper §3.2)?
    pub fn encourages_dynamic_dr(&self) -> bool {
        self.component_kinds()
            .iter()
            .any(|k| k.encourages().dynamic_dr)
    }

    /// Apply a single-component mutation, returning the revised contract.
    ///
    /// The revised contract is validated with the same rules as
    /// [`ContractBuilder::build`], plus the delta's structural constraints
    /// (tariff index in range, price-strip replacement only on a dynamic
    /// tariff). `apply` is the interpreted twin of
    /// [`crate::compiled::CompiledContract::patch`]: patching a compiled
    /// contract is bit-identical to applying the same delta here and
    /// recompiling from scratch.
    pub fn apply(&self, delta: &ContractDelta) -> Result<Contract> {
        let mut out = self.clone();
        match delta {
            ContractDelta::ReplaceTariff { index, tariff } => {
                let slot = out.tariffs.get_mut(*index).ok_or_else(|| {
                    CoreError::BadComponent(format!(
                        "tariff index {index} out of range (contract has {} tariffs)",
                        self.tariffs.len()
                    ))
                })?;
                *slot = tariff.clone();
            }
            ContractDelta::ReplacePriceStrip { index, strip } => {
                let slot = out.tariffs.get_mut(*index).ok_or_else(|| {
                    CoreError::BadComponent(format!(
                        "tariff index {index} out of range (contract has {} tariffs)",
                        self.tariffs.len()
                    ))
                })?;
                match slot {
                    Tariff::Dynamic(d) => d.prices = strip.clone(),
                    other => {
                        return Err(CoreError::BadComponent(format!(
                            "tariff #{index} is a {} tariff, not dynamic; \
                             only dynamic tariffs carry a price strip",
                            other.kind().label()
                        )))
                    }
                }
            }
            ContractDelta::SetDemandCharge(dc) => {
                if let Some(dc) = dc {
                    dc.validate()?;
                }
                out.demand_charge = *dc;
            }
            ContractDelta::SetPowerband(pb) => {
                if let Some(pb) = pb {
                    pb.validate()?;
                }
                out.powerband = *pb;
            }
            ContractDelta::SetEmergency(e) => {
                if let Some(e) = e {
                    e.validate()?;
                }
                out.emergency = *e;
            }
            ContractDelta::SetMonthlyFee(fee) => {
                if *fee < Money::ZERO {
                    return Err(CoreError::BadComponent(
                        "monthly fee must be non-negative".into(),
                    ));
                }
                out.monthly_fee = *fee;
            }
        }
        Ok(out)
    }
}

/// A single-component contract mutation.
///
/// Deltas are the unit of incremental recompilation: a sweep holds one base
/// contract and describes each scenario as the base plus a delta, which
/// [`crate::compiled::CompiledContract::patch`] turns into a re-lowering of
/// only the changed component. Deltas serialize, so a scenario artifact (or
/// an `hpcgrid-engine` spec) can carry a base-contract fingerprint plus the
/// delta instead of a full contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ContractDelta {
    /// Replace the tariff component at `index` wholesale.
    ReplaceTariff {
        /// Position in [`Contract::tariffs`].
        index: usize,
        /// The replacement tariff.
        tariff: Tariff,
    },
    /// Replace the market-price strip of the dynamic tariff at `index`,
    /// keeping its markup and fallback. Errors if that tariff is not
    /// [`Tariff::Dynamic`].
    ReplacePriceStrip {
        /// Position in [`Contract::tariffs`].
        index: usize,
        /// The revised market-price strip.
        strip: PriceSeries,
    },
    /// Set or clear the demand-charge component.
    SetDemandCharge(Option<DemandCharge>),
    /// Set or clear the powerband component.
    SetPowerband(Option<Powerband>),
    /// Set or clear the emergency-DR clause.
    SetEmergency(Option<EmergencyDrClause>),
    /// Set the fixed monthly service fee.
    SetMonthlyFee(Money),
}

impl ContractDelta {
    /// Convenience constructor for a dynamic-strip revision.
    pub fn price_strip(index: usize, strip: PriceSeries) -> ContractDelta {
        ContractDelta::ReplacePriceStrip { index, strip }
    }

    /// Short human label (for scenario specs and reports), e.g.
    /// `"replace_tariff#0"` or `"set_monthly_fee=1000"`.
    pub fn label(&self) -> String {
        match self {
            ContractDelta::ReplaceTariff { index, tariff } => {
                format!("replace_tariff#{index}={}", tariff.kind().label())
            }
            ContractDelta::ReplacePriceStrip { index, strip } => {
                format!("replace_strip#{index}[{}]", strip.len())
            }
            ContractDelta::SetDemandCharge(Some(dc)) => {
                format!(
                    "set_demand_charge={}",
                    dc.price.as_dollars_per_kilowatt_month()
                )
            }
            ContractDelta::SetDemandCharge(None) => "clear_demand_charge".into(),
            ContractDelta::SetPowerband(Some(_)) => "set_powerband".into(),
            ContractDelta::SetPowerband(None) => "clear_powerband".into(),
            ContractDelta::SetEmergency(Some(_)) => "set_emergency".into(),
            ContractDelta::SetEmergency(None) => "clear_emergency".into(),
            ContractDelta::SetMonthlyFee(fee) => {
                format!("set_monthly_fee={}", fee.as_dollars())
            }
        }
    }
}

/// Builder for [`Contract`].
#[derive(Debug, Clone)]
pub struct ContractBuilder {
    name: String,
    tariffs: Vec<Tariff>,
    demand_charge: Option<DemandCharge>,
    powerband: Option<Powerband>,
    emergency: Option<EmergencyDrClause>,
    monthly_fee: Money,
}

impl ContractBuilder {
    /// Add a tariff component (may be called multiple times; costs add).
    pub fn tariff(mut self, t: Tariff) -> Self {
        self.tariffs.push(t);
        self
    }

    /// Set the demand-charge component.
    pub fn demand_charge(mut self, dc: DemandCharge) -> Self {
        self.demand_charge = Some(dc);
        self
    }

    /// Set the powerband component.
    pub fn powerband(mut self, pb: Powerband) -> Self {
        self.powerband = Some(pb);
        self
    }

    /// Set the emergency-DR clause.
    pub fn emergency(mut self, e: EmergencyDrClause) -> Self {
        self.emergency = Some(e);
        self
    }

    /// Set the fixed monthly service fee.
    pub fn monthly_fee(mut self, fee: Money) -> Self {
        self.monthly_fee = fee;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Contract> {
        if self.tariffs.is_empty() {
            return Err(CoreError::NoTariff);
        }
        if let Some(dc) = &self.demand_charge {
            dc.validate()?;
        }
        if let Some(pb) = &self.powerband {
            pb.validate()?;
        }
        if let Some(e) = &self.emergency {
            e.validate()?;
        }
        if self.monthly_fee < Money::ZERO {
            return Err(CoreError::BadComponent(
                "monthly fee must be non-negative".into(),
            ));
        }
        Ok(Contract {
            name: self.name,
            tariffs: self.tariffs,
            demand_charge: self.demand_charge,
            powerband: self.powerband,
            emergency: self.emergency,
            monthly_fee: self.monthly_fee,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcgrid_units::{DemandPrice, EnergyPrice, Power};

    #[test]
    fn builder_requires_tariff() {
        assert_eq!(
            Contract::builder("empty").build().unwrap_err(),
            CoreError::NoTariff
        );
    }

    #[test]
    fn classification_matches_components() {
        use ContractComponentKind as K;
        let c = Contract::builder("site-like")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .tariff(Tariff::day_night(
                EnergyPrice::per_kilowatt_hour(0.02),
                EnergyPrice::ZERO,
            ))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .powerband(Powerband::ceiling(
                Power::from_megawatts(12.0),
                EnergyPrice::per_kilowatt_hour(0.5),
            ))
            .build()
            .unwrap();
        let kinds = c.component_kinds();
        assert!(kinds.contains(&K::FixedTariff));
        assert!(kinds.contains(&K::TimeOfUseTariff));
        assert!(kinds.contains(&K::DemandCharge));
        assert!(kinds.contains(&K::Powerband));
        assert!(!kinds.contains(&K::DynamicTariff));
        assert!(!kinds.contains(&K::EmergencyDr));
        assert!(c.has(K::FixedTariff));
        assert!(!c.has(K::EmergencyDr));
    }

    #[test]
    fn dynamic_dr_encouragement() {
        let plain = Contract::builder("plain")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .build()
            .unwrap();
        assert!(!plain.encourages_dynamic_dr());
        let with_emergency = Contract::builder("em")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .emergency(EmergencyDrClause::reference(Power::from_megawatts(5.0)))
            .build()
            .unwrap();
        assert!(with_emergency.encourages_dynamic_dr());
    }

    #[test]
    fn apply_replaces_components_and_validates() {
        use hpcgrid_timeseries::series::Series;
        use hpcgrid_units::{Duration, SimTime};
        let base = Contract::builder("base")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .tariff(Tariff::Dynamic(crate::tariff::DynamicTariff {
                prices: Series::constant(
                    SimTime::EPOCH,
                    Duration::from_hours(1.0),
                    EnergyPrice::per_kilowatt_hour(0.05),
                    24,
                )
                .unwrap(),
                markup: EnergyPrice::per_kilowatt_hour(0.01),
                fallback: EnergyPrice::per_kilowatt_hour(0.09),
            }))
            .build()
            .unwrap();

        let strip = Series::constant(
            SimTime::EPOCH,
            Duration::from_hours(1.0),
            EnergyPrice::per_kilowatt_hour(0.12),
            24,
        )
        .unwrap();
        let revised = base
            .apply(&ContractDelta::price_strip(1, strip.clone()))
            .unwrap();
        match &revised.tariffs[1] {
            Tariff::Dynamic(d) => assert_eq!(d.prices, strip),
            other => panic!("expected dynamic tariff, got {other:?}"),
        }
        // Markup/fallback survive a strip replacement.
        match (&base.tariffs[1], &revised.tariffs[1]) {
            (Tariff::Dynamic(a), Tariff::Dynamic(b)) => {
                assert_eq!(a.markup, b.markup);
                assert_eq!(a.fallback, b.fallback);
            }
            _ => unreachable!(),
        }

        // Strip replacement on a non-dynamic tariff is rejected.
        assert!(base
            .apply(&ContractDelta::price_strip(0, strip.clone()))
            .is_err());
        // Out-of-range indices are rejected.
        assert!(base.apply(&ContractDelta::price_strip(2, strip)).is_err());
        assert!(base
            .apply(&ContractDelta::ReplaceTariff {
                index: 9,
                tariff: Tariff::fixed(EnergyPrice::ZERO),
            })
            .is_err());

        // Component setters validate like the builder.
        assert!(base
            .apply(&ContractDelta::SetMonthlyFee(Money::from_dollars(-1.0)))
            .is_err());
        assert!(base
            .apply(&ContractDelta::SetPowerband(Some(Powerband::ceiling(
                Power::ZERO,
                EnergyPrice::ZERO
            ))))
            .is_err());
        let with_dc = base
            .apply(&ContractDelta::SetDemandCharge(Some(
                DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)),
            )))
            .unwrap();
        assert!(with_dc.has(ContractComponentKind::DemandCharge));
        let cleared = with_dc
            .apply(&ContractDelta::SetDemandCharge(None))
            .unwrap();
        assert_eq!(cleared.demand_charge, None);
        // The base contract is untouched throughout.
        assert_eq!(base.demand_charge, None);
    }

    #[test]
    fn builder_validates_components() {
        let bad_band = Contract::builder("bad")
            .tariff(Tariff::fixed(EnergyPrice::ZERO))
            .powerband(Powerband::ceiling(Power::ZERO, EnergyPrice::ZERO))
            .build();
        assert!(bad_band.is_err());
        let bad_fee = Contract::builder("bad-fee")
            .tariff(Tariff::fixed(EnergyPrice::ZERO))
            .monthly_fee(Money::from_dollars(-1.0))
            .build();
        assert!(bad_fee.is_err());
    }
}
