//! Composable electricity service contracts.
//!
//! A contract is a bundle of typology components: one or more tariffs (two
//! surveyed sites stack a variable service charge on a fixed tariff), an
//! optional demand charge, an optional powerband, an optional emergency-DR
//! clause, and a fixed monthly service fee. Location-specific taxes are out
//! of scope, as in the paper's typology (§3.2: "these are not included in
//! the typology as they cannot be generalized").

use crate::demand_charge::DemandCharge;
use crate::emergency::EmergencyDrClause;
use crate::powerband::Powerband;
use crate::tariff::Tariff;
use crate::typology::ContractComponentKind;
use crate::{CoreError, Result};
use hpcgrid_units::Money;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An SC–ESP electricity service contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contract {
    /// Contract name (for reports).
    pub name: String,
    /// Energy tariff components (costs add; at least one).
    pub tariffs: Vec<Tariff>,
    /// Optional demand-charge component.
    pub demand_charge: Option<DemandCharge>,
    /// Optional powerband component.
    pub powerband: Option<Powerband>,
    /// Optional mandatory emergency-DR clause.
    pub emergency: Option<EmergencyDrClause>,
    /// Fixed service fee per billing month.
    pub monthly_fee: Money,
}

impl Contract {
    /// Start building a contract.
    pub fn builder(name: impl Into<String>) -> ContractBuilder {
        ContractBuilder {
            name: name.into(),
            tariffs: Vec::new(),
            demand_charge: None,
            powerband: None,
            emergency: None,
            monthly_fee: Money::ZERO,
        }
    }

    /// The typology classification of this contract: the set of component
    /// kinds present (one row of Table 2).
    pub fn component_kinds(&self) -> BTreeSet<ContractComponentKind> {
        let mut set = BTreeSet::new();
        for t in &self.tariffs {
            set.insert(t.kind());
        }
        if self.demand_charge.is_some() {
            set.insert(ContractComponentKind::DemandCharge);
        }
        if self.powerband.is_some() {
            set.insert(ContractComponentKind::Powerband);
        }
        if self.emergency.is_some() {
            set.insert(ContractComponentKind::EmergencyDr);
        }
        set
    }

    /// Does the contract contain a component of `kind`?
    pub fn has(&self, kind: ContractComponentKind) -> bool {
        self.component_kinds().contains(&kind)
    }

    /// Does any component encourage real-time DR (paper §3.2)?
    pub fn encourages_dynamic_dr(&self) -> bool {
        self.component_kinds()
            .iter()
            .any(|k| k.encourages().dynamic_dr)
    }
}

/// Builder for [`Contract`].
#[derive(Debug, Clone)]
pub struct ContractBuilder {
    name: String,
    tariffs: Vec<Tariff>,
    demand_charge: Option<DemandCharge>,
    powerband: Option<Powerband>,
    emergency: Option<EmergencyDrClause>,
    monthly_fee: Money,
}

impl ContractBuilder {
    /// Add a tariff component (may be called multiple times; costs add).
    pub fn tariff(mut self, t: Tariff) -> Self {
        self.tariffs.push(t);
        self
    }

    /// Set the demand-charge component.
    pub fn demand_charge(mut self, dc: DemandCharge) -> Self {
        self.demand_charge = Some(dc);
        self
    }

    /// Set the powerband component.
    pub fn powerband(mut self, pb: Powerband) -> Self {
        self.powerband = Some(pb);
        self
    }

    /// Set the emergency-DR clause.
    pub fn emergency(mut self, e: EmergencyDrClause) -> Self {
        self.emergency = Some(e);
        self
    }

    /// Set the fixed monthly service fee.
    pub fn monthly_fee(mut self, fee: Money) -> Self {
        self.monthly_fee = fee;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Contract> {
        if self.tariffs.is_empty() {
            return Err(CoreError::NoTariff);
        }
        if let Some(dc) = &self.demand_charge {
            dc.validate()?;
        }
        if let Some(pb) = &self.powerband {
            pb.validate()?;
        }
        if let Some(e) = &self.emergency {
            e.validate()?;
        }
        if self.monthly_fee < Money::ZERO {
            return Err(CoreError::BadComponent(
                "monthly fee must be non-negative".into(),
            ));
        }
        Ok(Contract {
            name: self.name,
            tariffs: self.tariffs,
            demand_charge: self.demand_charge,
            powerband: self.powerband,
            emergency: self.emergency,
            monthly_fee: self.monthly_fee,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcgrid_units::{DemandPrice, EnergyPrice, Power};

    #[test]
    fn builder_requires_tariff() {
        assert_eq!(
            Contract::builder("empty").build().unwrap_err(),
            CoreError::NoTariff
        );
    }

    #[test]
    fn classification_matches_components() {
        use ContractComponentKind as K;
        let c = Contract::builder("site-like")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .tariff(Tariff::day_night(
                EnergyPrice::per_kilowatt_hour(0.02),
                EnergyPrice::ZERO,
            ))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .powerband(Powerband::ceiling(
                Power::from_megawatts(12.0),
                EnergyPrice::per_kilowatt_hour(0.5),
            ))
            .build()
            .unwrap();
        let kinds = c.component_kinds();
        assert!(kinds.contains(&K::FixedTariff));
        assert!(kinds.contains(&K::TimeOfUseTariff));
        assert!(kinds.contains(&K::DemandCharge));
        assert!(kinds.contains(&K::Powerband));
        assert!(!kinds.contains(&K::DynamicTariff));
        assert!(!kinds.contains(&K::EmergencyDr));
        assert!(c.has(K::FixedTariff));
        assert!(!c.has(K::EmergencyDr));
    }

    #[test]
    fn dynamic_dr_encouragement() {
        let plain = Contract::builder("plain")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .build()
            .unwrap();
        assert!(!plain.encourages_dynamic_dr());
        let with_emergency = Contract::builder("em")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.08)))
            .emergency(EmergencyDrClause::reference(Power::from_megawatts(5.0)))
            .build()
            .unwrap();
        assert!(with_emergency.encourages_dynamic_dr());
    }

    #[test]
    fn builder_validates_components() {
        let bad_band = Contract::builder("bad")
            .tariff(Tariff::fixed(EnergyPrice::ZERO))
            .powerband(Powerband::ceiling(Power::ZERO, EnergyPrice::ZERO))
            .build();
        assert!(bad_band.is_err());
        let bad_fee = Contract::builder("bad-fee")
            .tariff(Tariff::fixed(EnergyPrice::ZERO))
            .monthly_fee(Money::from_dollars(-1.0))
            .build();
        assert!(bad_fee.is_err());
    }
}
