//! Crash-safe fleet checkpoints: fingerprint-checked snapshots in a
//! bounded generation ring.
//!
//! A long-running [`MeterFleet`](crate::fleet::MeterFleet) is state that
//! exists nowhere else — its accruals fold a sample stream that cannot be
//! replayed once the samples are gone. [`CheckpointStore`] persists that
//! state so a killed billing process resumes instead of restarting:
//!
//! * **Atomic publication.** A checkpoint is written to a `*.tmp.<pid>`
//!   sibling and `rename`d into place, so a crash mid-write never replaces
//!   a good generation with a torn one.
//! * **Checksummed frames.** Every file carries an FNV-64 of its JSON body
//!   in a one-line header; [`CheckpointStore::load_latest`] verifies it and
//!   falls back to the previous generation on any mismatch — a torn or
//!   bit-rotted checkpoint degrades to slightly staler state, never to a
//!   corrupt restore.
//! * **Generation ring.** Only the newest `ring` generations are kept;
//!   older files (and stale temp files from dead writers) are garbage
//!   collected on every save.
//!
//! Snapshots themselves are fingerprint-checked one level deeper: each
//! [`AccrualSnapshot`] records the kernel fingerprint it was taken against,
//! and [`BillAccrual::restore`](crate::accrual::BillAccrual::restore)
//! refuses a mismatch. A checkpoint therefore cannot silently re-animate a
//! meter under the wrong contract.

use crate::accrual::AccrualSnapshot;
use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Version tag written into every checkpoint header line.
const HEADER_MAGIC: &str = "hpcgrid-ckpt v1 fnv64=";

/// A serialized fleet: every healthy meter's accrual snapshot plus the
/// fleet clock, as produced by
/// [`MeterFleet::snapshot_all`](crate::fleet::MeterFleet::snapshot_all) and
/// consumed by
/// [`MeterFleet::restore_checkpoint`](crate::fleet::MeterFleet::restore_checkpoint).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// Monotone checkpoint number assigned by the store.
    pub generation: u64,
    /// The fleet's tick count at snapshot time.
    pub ticks: u64,
    /// `(meter id, accrual snapshot)` in meter-id order.
    pub meters: Vec<(u64, AccrualSnapshot)>,
}

/// A directory of [`FleetCheckpoint`]s, newest-`ring` generations deep.
///
/// ```
/// use hpcgrid_core::checkpoint::CheckpointStore;
/// use hpcgrid_core::contract::Contract;
/// use hpcgrid_core::fleet::{MeterFleet, Sample};
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
///
/// let contract = Contract::builder("flat")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let mut fleet = MeterFleet::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(30));
/// let m = fleet.register(&contract, SimTime::EPOCH, Duration::from_minutes(15.0))?;
/// fleet.advance_tick(&[Sample { meter: m, power: Power::from_megawatts(8.0) }])?;
///
/// let dir = std::env::temp_dir().join(format!("hpcgrid-ckpt-doc-{}", std::process::id()));
/// let mut store = CheckpointStore::open(&dir, 3)?;
/// store.save(&fleet)?;
/// let ckpt = store.load_latest()?.expect("one generation saved");
/// fleet.restore_checkpoint(&ckpt)?;
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    ring: usize,
    next_generation: u64,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory keeping the newest
    /// `ring` generations (clamped to at least 1). The next generation
    /// number continues from the files already present, so reopening after
    /// a crash never reuses — and therefore never clobbers — a published
    /// generation.
    pub fn open(dir: impl AsRef<Path>, ring: usize) -> Result<CheckpointStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(io_err)?;
        let next_generation = list_generations(&dir)?
            .last()
            .map_or(0, |(g, _)| g.saturating_add(1));
        Ok(CheckpointStore {
            dir,
            ring: ring.max(1),
            next_generation,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot `fleet`'s healthy meters into the next generation:
    /// serialize, checksum, write to a temp sibling, `rename` into place,
    /// then garbage-collect generations beyond the ring (and temp files
    /// left by dead writers). Returns the generation number published.
    pub fn save(&mut self, fleet: &crate::fleet::MeterFleet) -> Result<u64> {
        let generation = self.next_generation;
        let ckpt = FleetCheckpoint {
            generation,
            ticks: fleet.stats().ticks,
            meters: fleet.snapshot_all(),
        };
        let body = serde_json::to_string(&ckpt)
            .map_err(|e| CoreError::Io(format!("checkpoint encode: {e}")))?;
        let framed = format!("{HEADER_MAGIC}{:016x}\n{body}\n", fnv64(body.as_bytes()));
        let path = self.dir.join(generation_name(generation));
        let tmp = self.dir.join(format!(
            "{}.tmp.{}",
            generation_name(generation),
            std::process::id()
        ));
        fs::write(&tmp, framed).map_err(io_err)?;
        fs::rename(&tmp, &path).map_err(io_err)?;
        self.next_generation = generation.saturating_add(1);
        self.gc()?;
        Ok(generation)
    }

    /// The newest generation whose checksum verifies, or `None` when the
    /// ring is empty. Torn and corrupt files are skipped, not fatal — the
    /// store falls back generation by generation.
    pub fn load_latest(&self) -> Result<Option<FleetCheckpoint>> {
        for (_, path) in list_generations(&self.dir)?.into_iter().rev() {
            if let Some(ckpt) = read_checkpoint(&path)? {
                return Ok(Some(ckpt));
            }
        }
        Ok(None)
    }

    /// Generation numbers currently on disk, oldest first (corrupt files
    /// included — corruption is detected at load, not listing).
    pub fn generations(&self) -> Result<Vec<u64>> {
        Ok(list_generations(&self.dir)?
            .into_iter()
            .map(|(g, _)| g)
            .collect())
    }

    /// Drop generations beyond the newest `ring`, plus any `*.tmp.*` debris
    /// from writers that died mid-save.
    fn gc(&self) -> Result<()> {
        let all = list_generations(&self.dir)?;
        if all.len() > self.ring {
            for (_, path) in &all[..all.len() - self.ring] {
                fs::remove_file(path).map_err(io_err)?;
            }
        }
        for entry in fs::read_dir(&self.dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("ckpt-") && name.contains(".tmp.") {
                // Best-effort: another live writer may own it.
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

/// `ckpt-<generation, zero-padded>.json` — zero padding keeps lexical and
/// numeric order identical for any realistic generation count.
fn generation_name(generation: u64) -> String {
    format!("ckpt-{generation:010}.json")
}

/// Published checkpoint files in the directory, sorted oldest first.
fn list_generations(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).map_err(io_err)? {
        let entry = entry.map_err(io_err)?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(gen) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((gen, entry.path()));
        }
    }
    out.sort_by_key(|(g, _)| *g);
    Ok(out)
}

/// Parse and verify one checkpoint file. `Ok(None)` means the file is torn
/// or corrupt (bad frame, bad checksum, bad JSON) — recoverable by falling
/// back a generation. `Err` is reserved for filesystem failures.
fn read_checkpoint(path: &Path) -> Result<Option<FleetCheckpoint>> {
    let raw = match fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(e)),
    };
    let Some((header, body)) = raw.split_once('\n') else {
        return Ok(None);
    };
    let Some(sum_hex) = header.strip_prefix(HEADER_MAGIC) else {
        return Ok(None);
    };
    let Ok(expected) = u64::from_str_radix(sum_hex, 16) else {
        return Ok(None);
    };
    let body = body.strip_suffix('\n').unwrap_or(body);
    if fnv64(body.as_bytes()) != expected {
        return Ok(None);
    }
    Ok(serde_json::from_str(body).ok())
}

/// FNV-1a 64-bit — cheap, dependency-free corruption detection.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Io(e.to_string())
}
