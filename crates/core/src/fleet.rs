//! Sharded meter fleets: utility-scale streaming billing.
//!
//! A [`MeterFleet`] manages many [`BillAccrual`] meters at once, sharded by
//! contract fingerprint so every meter under the same contract shares one
//! `Arc`'d [`CompiledContract`] kernel — and with it the kernel's reusable
//! segment-map cache. Ticks ([`MeterFleet::advance_tick`]) scatter the
//! batch of samples to their shards and fan the shards across the
//! `try_par_map` worker pool; each shard is owned by exactly one task per
//! tick, so the per-shard locks never contend.
//!
//! The fleet preserves the accrual layer's bit-identity invariant meter by
//! meter: `finalize(meter)` equals the batch bill of that meter's sample
//! history under `Precision::BitExact`, regardless of shard count or tick
//! batching. The shard count (default: available parallelism, override
//! with [`MeterFleet::with_shards`] or the `HPCGRID_FLEET_SHARDS` env var)
//! is therefore pure deployment tuning.

use crate::accrual::{AccrualSnapshot, BillAccrual};
use crate::billing::Bill;
use crate::checkpoint::FleetCheckpoint;
use crate::compiled::CompiledContract;
use crate::contract::{Contract, ContractDelta};
use crate::kernels::KernelCache;
use crate::ledger::{EventPayload, LedgerEvent};
use crate::{CoreError, Result};
use hpcgrid_timeseries::par::try_par_map;
use hpcgrid_units::{Calendar, Duration, Power, SimTime};
use serde::Serialize;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Environment variable overriding the fleet's shards-per-contract count.
pub const ENV_SHARDS: &str = "HPCGRID_FLEET_SHARDS";

/// Opaque handle to a registered meter. Returned by
/// [`MeterFleet::register`] and stable for the fleet's lifetime (meters
/// are never deregistered, only re-sharded by [`MeterFleet::apply_delta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeterId(pub usize);

impl std::fmt::Display for MeterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "meter#{}", self.0)
    }
}

/// One metered power reading for one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The meter the reading belongs to.
    pub meter: MeterId,
    /// Mean power over the meter's sample interval.
    pub power: Power,
}

/// A group of meters sharing one compiled kernel, advanced by one worker
/// task per tick.
struct Shard {
    /// `CompiledContract::fingerprint().0` of the shard's kernel.
    fingerprint: u64,
    kernel: Arc<CompiledContract>,
    /// Meters plus the tick's scatter buffer. Locked once per tick per
    /// worker; `advance_tick` holds `&mut self`, so scatter uses the
    /// lock-free `get_mut` path.
    state: Mutex<ShardState>,
}

struct ShardState {
    /// `(meter id, accrual)` — slot positions are tracked in the fleet
    /// directory and patched up on `swap_remove`.
    meters: Vec<(MeterId, BillAccrual)>,
    /// `(slot, power)` pairs scattered for the in-flight tick. Kept
    /// per-shard so its capacity is reused across ticks.
    buf: Vec<(usize, Power)>,
}

/// What one [`MeterFleet::advance_tick`] did with its sample batch.
///
/// Every offered sample lands in exactly one bucket: `applied` (folded into
/// a healthy meter), `dropped` (its meter was quarantined — before this
/// tick, or earlier in this tick by a panic), or the panicking sample
/// itself, which is counted in `dropped` *and* names its meter in
/// `newly_quarantined`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetTickReport {
    /// Samples offered to the tick.
    pub samples: usize,
    /// Samples folded into healthy meters.
    pub applied: usize,
    /// Samples discarded because their meter is quarantined (including the
    /// sample whose fold panicked).
    pub dropped: usize,
    /// Meters quarantined by this tick, with the panic message that
    /// condemned them, in meter-id order.
    pub newly_quarantined: Vec<(MeterId, String)>,
}

/// Operating statistics of a [`MeterFleet`] — the `BENCH_fleet.json`
/// ingredients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetStats {
    /// Registered meters.
    pub meters: usize,
    /// Live shards.
    pub shards: usize,
    /// Distinct compiled kernels (one per distinct contract).
    pub contracts: usize,
    /// Registrations and delta moves that reused an existing kernel.
    pub kernel_hits: u64,
    /// Registrations and delta moves that had to compile a kernel.
    pub kernel_misses: u64,
    /// Mean accrual state size per meter, in bytes (excludes the shared
    /// kernels — that is the point of sharding).
    pub bytes_per_meter: f64,
    /// Ticks advanced so far.
    pub ticks: u64,
    /// Wall-clock seconds spent inside `advance_tick`.
    pub tick_seconds: f64,
    /// Samples folded across all ticks.
    pub samples: u64,
    /// `samples / tick_seconds` — the fleet's streaming throughput.
    pub meter_samples_per_sec: f64,
}

impl FleetStats {
    /// Fraction of kernel lookups served by an already-compiled kernel.
    pub fn kernel_reuse_rate(&self) -> f64 {
        let total = self.kernel_hits + self.kernel_misses;
        if total == 0 {
            0.0
        } else {
            self.kernel_hits as f64 / total as f64
        }
    }
}

/// A sharded fleet of streaming meters over one calendar and compile
/// horizon.
///
/// ```
/// use hpcgrid_core::fleet::{MeterFleet, Sample};
/// use hpcgrid_core::contract::Contract;
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
///
/// let contract = Contract::builder("flat")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let mut fleet = MeterFleet::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(30));
/// let step = Duration::from_minutes(15.0);
/// let a = fleet.register(&contract, SimTime::EPOCH, step)?;
/// let b = fleet.register(&contract, SimTime::EPOCH, step)?; // shares a's kernel
/// for _ in 0..96 {
///     fleet.advance_tick(&[
///         Sample { meter: a, power: Power::from_megawatts(8.0) },
///         Sample { meter: b, power: Power::from_megawatts(5.0) },
///     ])?;
/// }
/// let bill = fleet.finalize(a)?;
/// assert!(bill.total().as_dollars() > 0.0);
/// assert_eq!(fleet.stats().contracts, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MeterFleet {
    /// One compiled kernel per distinct contract, shared by `Arc` across
    /// shards (and, via [`MeterFleet::kernel_cache`], with sweep drivers).
    kernels: KernelCache,
    /// Max sub-shards per distinct contract.
    shards_per_contract: usize,
    /// Shard indexes per kernel fingerprint, in creation order.
    shard_index: HashMap<u64, Vec<usize>>,
    /// Round-robin counters per kernel fingerprint.
    rr: HashMap<u64, usize>,
    shards: Vec<Shard>,
    /// `meter id -> (shard, slot)`.
    directory: Vec<(usize, usize)>,
    /// `meter id -> panic message` of meters retired by a panicking fold.
    /// Quarantined meters drop their samples and refuse `finalize` /
    /// `snapshot`; [`MeterFleet::restore`] rehabilitates them.
    quarantined: HashMap<usize, String>,
    ticks: u64,
    tick_nanos: u128,
    samples: u64,
}

impl MeterFleet {
    /// An empty fleet billing under `calendar` for loads inside
    /// `[start, end)`, with the default shard count: `HPCGRID_FLEET_SHARDS`
    /// if set, otherwise the machine's available parallelism.
    pub fn new(calendar: Calendar, start: SimTime, end: SimTime) -> MeterFleet {
        let shards = std::env::var(ENV_SHARDS)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n >= 1)
            .unwrap_or_else(|| hpcgrid_timeseries::par::default_threads(usize::MAX));
        MeterFleet::with_shards(calendar, start, end, shards)
    }

    /// Like [`MeterFleet::new`] with an explicit shards-per-contract count
    /// (clamped to at least 1). Shard count never affects bills — only how
    /// ticks spread across the worker pool.
    pub fn with_shards(
        calendar: Calendar,
        start: SimTime,
        end: SimTime,
        shards_per_contract: usize,
    ) -> MeterFleet {
        MeterFleet {
            kernels: KernelCache::new(calendar, start, end),
            shards_per_contract: shards_per_contract.max(1),
            shard_index: HashMap::new(),
            rr: HashMap::new(),
            shards: Vec::new(),
            directory: Vec::new(),
            quarantined: HashMap::new(),
            ticks: 0,
            tick_nanos: 0,
            samples: 0,
        }
    }

    /// The fleet's compile horizon.
    pub fn horizon(&self) -> (SimTime, SimTime) {
        self.kernels.horizon()
    }

    /// The fleet's kernel cache — peek at compiled kernels (e.g. to stock a
    /// sweep's `SharedInputs` registry with the same `Arc`s the fleet
    /// bills through).
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    /// Registered meter count.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True if no meters are registered.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Register a meter under `contract`, streaming from `start` at
    /// interval `step`. Compiles the contract's kernel at most once per
    /// distinct contract — subsequent registrations share it by `Arc`.
    pub fn register(
        &mut self,
        contract: &Contract,
        start: SimTime,
        step: Duration,
    ) -> Result<MeterId> {
        let kernel = self.kernels.get_or_compile(contract)?;
        self.add_meter(kernel, start, step)
    }

    /// Register a meter against an already-compiled kernel — the warm path
    /// when the caller compiled (and possibly pre-seeded segment maps on)
    /// the kernel itself. The kernel must share the fleet's horizon.
    pub fn register_compiled(
        &mut self,
        kernel: Arc<CompiledContract>,
        start: SimTime,
        step: Duration,
    ) -> Result<MeterId> {
        let (start_h, end_h) = self.kernels.horizon();
        if kernel.horizon() != (start_h, end_h) {
            return Err(CoreError::BadSeries(format!(
                "kernel horizon {:?} does not match the fleet horizon [{start_h}, {end_h})",
                kernel.horizon(),
            )));
        }
        let kernel = self.kernels.get_or_insert(kernel)?;
        self.add_meter(kernel, start, step)
    }

    /// Place a fresh accrual on one of its kernel's sub-shards.
    fn add_meter(
        &mut self,
        kernel: Arc<CompiledContract>,
        start: SimTime,
        step: Duration,
    ) -> Result<MeterId> {
        let accrual = BillAccrual::new(Arc::clone(&kernel), start, step)?;
        let id = MeterId(self.directory.len());
        let (shard, slot) = self.place(kernel, accrual, id);
        self.directory.push((shard, slot));
        Ok(id)
    }

    /// Round-robin an accrual across its kernel's sub-shards, creating
    /// sub-shards lazily up to the per-contract cap.
    fn place(
        &mut self,
        kernel: Arc<CompiledContract>,
        accrual: BillAccrual,
        id: MeterId,
    ) -> (usize, usize) {
        let fp = kernel.fingerprint().0;
        let list = self.shard_index.entry(fp).or_default();
        let shard = if list.len() < self.shards_per_contract {
            let idx = self.shards.len();
            self.shards.push(Shard {
                fingerprint: fp,
                kernel,
                state: Mutex::new(ShardState {
                    meters: Vec::new(),
                    buf: Vec::new(),
                }),
            });
            list.push(idx);
            idx
        } else {
            let rr = self.rr.entry(fp).or_insert(0);
            let idx = list[*rr % list.len()];
            *rr += 1;
            idx
        };
        let meters = &mut lock_mut(&mut self.shards[shard].state).meters;
        meters.push((id, accrual));
        (shard, meters.len() - 1)
    }

    /// Advance the fleet by one tick: scatter `samples` to their shards,
    /// then fold every shard's batch in parallel. A meter absent from
    /// `samples` simply lags — its accrual keeps its own clock. Samples
    /// for the same meter fold in slice order.
    ///
    /// The fleet degrades instead of dying: a fold that *panics* (a
    /// poisoned accrual, an injected fault) quarantines that one meter —
    /// its sample and the rest of its batch are dropped, every other meter
    /// folds normally, and the casualty is reported in
    /// [`FleetTickReport::newly_quarantined`]. Subsequent ticks drop the
    /// quarantined meter's samples at scatter time until
    /// [`MeterFleet::restore`] rehabilitates it from a known-good snapshot.
    /// Typed errors (grid misuse, horizon overrun) still fail the tick.
    pub fn advance_tick(&mut self, samples: &[Sample]) -> Result<FleetTickReport> {
        let t0 = std::time::Instant::now();
        let mut report = FleetTickReport {
            samples: samples.len(),
            ..FleetTickReport::default()
        };
        for s in samples {
            let (shard, slot) = *self
                .directory
                .get(s.meter.0)
                .ok_or_else(|| CoreError::BadSeries(format!("unknown {}", s.meter)))?;
            if self.quarantined.contains_key(&s.meter.0) {
                report.dropped += 1;
                continue;
            }
            lock_mut(&mut self.shards[shard].state)
                .buf
                .push((slot, s.power));
        }
        type ShardOutcome = (usize, usize, Vec<(MeterId, String)>);
        let worked = try_par_map(&self.shards, |shard| -> Result<ShardOutcome> {
            let state = &mut *lock(&shard.state);
            // Split-borrow meters and buf out of the guard.
            let ShardState { meters, buf } = state;
            let mut applied = 0usize;
            let mut dropped = 0usize;
            let mut panicked: Vec<(MeterId, String)> = Vec::new();
            for &(slot, power) in buf.iter() {
                let (id, accrual) = &mut meters[slot];
                if panicked.iter().any(|(p, _)| p == id) {
                    dropped += 1;
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| accrual.push_next(power))) {
                    Ok(pushed) => {
                        pushed?;
                        applied += 1;
                    }
                    Err(payload) => {
                        dropped += 1;
                        panicked.push((*id, panic_message(payload)));
                    }
                }
            }
            buf.clear();
            Ok((applied, dropped, panicked))
        })
        .map_err(|e| CoreError::BatchPanic(e.to_string()))?;
        for outcome in worked {
            let (applied, dropped, panicked) = outcome?;
            report.applied += applied;
            report.dropped += dropped;
            report.newly_quarantined.extend(panicked);
        }
        report.newly_quarantined.sort_by_key(|(id, _)| *id);
        for (id, reason) in &report.newly_quarantined {
            self.quarantined.insert(id.0, reason.clone());
        }
        self.ticks += 1;
        self.samples += report.applied as u64;
        self.tick_nanos += t0.elapsed().as_nanos();
        Ok(report)
    }

    /// Close the books of one meter — bit-identical to the batch bill of
    /// its pushed history (see the [`crate::accrual`] invariant). Errors
    /// with [`CoreError::Quarantined`] for a quarantined meter: its accrual
    /// died mid-fold and its state is not trustworthy.
    pub fn finalize(&self, meter: MeterId) -> Result<Bill> {
        self.check_quarantine(meter)?;
        let (shard, slot) = self.locate(meter)?;
        lock(&self.shards[shard].state).meters[slot].1.finalize()
    }

    /// Close the books of every *healthy* meter, in parallel, returned in
    /// meter-id order. Quarantined meters are skipped — inspect
    /// [`MeterFleet::quarantined`] to account for them.
    pub fn finalize_all(&self) -> Result<Vec<(MeterId, Bill)>> {
        let quarantined = &self.quarantined;
        let per_shard = try_par_map(&self.shards, |shard| -> Result<Vec<(MeterId, Bill)>> {
            let state = lock(&shard.state);
            state
                .meters
                .iter()
                .filter(|(id, _)| !quarantined.contains_key(&id.0))
                .map(|(id, acc)| acc.finalize().map(|b| (*id, b)))
                .collect()
        })
        .map_err(|e| CoreError::BatchPanic(e.to_string()))?;
        let mut bills: Vec<(MeterId, Bill)> =
            Vec::with_capacity(self.directory.len() - quarantined.len());
        for part in per_shard {
            bills.extend(part?);
        }
        bills.sort_by_key(|(id, _)| *id);
        Ok(bills)
    }

    /// Serialize one meter's accrual state for checkpointing. Errors with
    /// [`CoreError::Quarantined`] for a quarantined meter — a snapshot of a
    /// half-folded accrual must never reach a checkpoint.
    pub fn snapshot(&self, meter: MeterId) -> Result<AccrualSnapshot> {
        self.check_quarantine(meter)?;
        let (shard, slot) = self.locate(meter)?;
        Ok(lock(&self.shards[shard].state).meters[slot].1.snapshot())
    }

    /// Snapshot every healthy meter in meter-id order — the payload of a
    /// [`FleetCheckpoint`]. Quarantined meters are excluded by
    /// construction, so a checkpoint only ever holds trustworthy state.
    pub fn snapshot_all(&self) -> Vec<(u64, AccrualSnapshot)> {
        (0..self.directory.len())
            .filter(|id| !self.quarantined.contains_key(id))
            .map(|id| {
                let (shard, slot) = self.directory[id];
                let snap = lock(&self.shards[shard].state).meters[slot].1.snapshot();
                (id as u64, snap)
            })
            .collect()
    }

    /// Restore one meter's accrual state from a snapshot taken against the
    /// same contract (validated by kernel fingerprint). The restored meter
    /// continues streaming bit-identically to the original. Restoring a
    /// quarantined meter rehabilitates it — the snapshot replaces the
    /// untrustworthy state wholesale.
    pub fn restore(&mut self, meter: MeterId, snap: &AccrualSnapshot) -> Result<()> {
        let (shard, slot) = self.locate(meter)?;
        let kernel = Arc::clone(&self.shards[shard].kernel);
        let restored = BillAccrual::restore(kernel, snap)?;
        lock_mut(&mut self.shards[shard].state).meters[slot].1 = restored;
        self.quarantined.remove(&meter.0);
        Ok(())
    }

    /// Restore every meter recorded in `ckpt` (rehabilitating quarantined
    /// ones) and adopt the checkpoint's tick count. Returns the number of
    /// meters restored. Meters registered after the checkpoint was taken
    /// are left untouched.
    pub fn restore_checkpoint(&mut self, ckpt: &FleetCheckpoint) -> Result<usize> {
        for (id, snap) in &ckpt.meters {
            self.restore(MeterId(*id as usize), snap)?;
        }
        self.ticks = ckpt.ticks;
        Ok(ckpt.meters.len())
    }

    /// Meters currently quarantined, with the panic message that condemned
    /// each, in meter-id order.
    pub fn quarantined(&self) -> Vec<(MeterId, String)> {
        let mut out: Vec<(MeterId, String)> = self
            .quarantined
            .iter()
            .map(|(id, reason)| (MeterId(*id), reason.clone()))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// True if `meter` is quarantined.
    pub fn is_quarantined(&self, meter: MeterId) -> bool {
        self.quarantined.contains_key(&meter.0)
    }

    /// Arm a one-shot injected panic on `meter`'s next fold — the chaos
    /// hook behind the fleet degradation tests. Test-only plumbing.
    #[doc(hidden)]
    pub fn chaos_poison_meter(&mut self, meter: MeterId) -> Result<()> {
        let (shard, slot) = self.locate(meter)?;
        lock_mut(&mut self.shards[shard].state).meters[slot]
            .1
            .poison_next_push();
        Ok(())
    }

    fn check_quarantine(&self, meter: MeterId) -> Result<()> {
        match self.quarantined.get(&meter.0) {
            Some(reason) => Err(CoreError::Quarantined(format!("{meter}: {reason}"))),
            None => Ok(()),
        }
    }

    /// Patch one meter's contract mid-stream and move it to the patched
    /// kernel's shard group. The accrual continues without replaying
    /// history, so only accrual-preserving deltas are accepted — see
    /// [`BillAccrual::rebind`] for the exact rules. On error the meter is
    /// left untouched on its current kernel.
    pub fn apply_delta(&mut self, meter: MeterId, delta: &ContractDelta) -> Result<()> {
        let (shard, slot) = self.locate(meter)?;
        let old_fp = self.shards[shard].fingerprint;
        let patched = self.shards[shard].kernel.patch(delta)?;
        let new_fp = patched.fingerprint().0;
        if new_fp == old_fp {
            return Ok(()); // delta was a no-op; kernel content unchanged
        }
        let kernel = self.kernels.get_or_insert(Arc::new(patched))?;
        // Rebind first: if the delta is not accrual-preserving this fails
        // and the meter stays where it is.
        let mut accrual = {
            let state = lock_mut(&mut self.shards[shard].state);
            state.meters[slot].1.clone()
        };
        accrual.rebind(Arc::clone(&kernel))?;
        // Remove from the old shard, patching the directory entry of
        // whichever meter swap_remove moved into the vacated slot.
        {
            let state = lock_mut(&mut self.shards[shard].state);
            state.meters.swap_remove(slot);
            if let Some((moved_id, _)) = state.meters.get(slot) {
                self.directory[moved_id.0] = (shard, slot);
            }
        }
        let (new_shard, new_slot) = self.place(kernel, accrual, meter);
        self.directory[meter.0] = (new_shard, new_slot);
        Ok(())
    }

    /// Apply a contract-ledger event to a live meter: the fleet-side hook a
    /// ledger driver calls when a renegotiation lands, so a
    /// [`LedgerEvent`] re-shards live meters through the existing
    /// [`MeterFleet::apply_delta`] patch path (the meter's kernel is
    /// patched, its accrual rebound, and the meter moves to the shard of
    /// the revised fingerprint — a no-op if the event does not change the
    /// kernel). `Created` events describe meters that do not exist yet —
    /// register those with [`MeterFleet::register`] instead.
    ///
    /// The delta must be accrual-preserving (the
    /// [`BillAccrual::rebind`] rules); events that would re-price history
    /// are rejected and the meter stays where it is — close its books and
    /// re-register to take such a revision mid-stream, or bill the horizon
    /// through [`ContractLedger::bill_as_of`](crate::ledger::ContractLedger::bill_as_of).
    pub fn apply_event(&mut self, meter: MeterId, event: &LedgerEvent) -> Result<()> {
        match &event.payload {
            EventPayload::Delta(delta) => self.apply_delta(meter, delta),
            EventPayload::Created(_) => Err(CoreError::Ledger(format!(
                "a created event opens a new stream; register a meter for it \
                 instead of applying it to live {meter}"
            ))),
        }
    }

    /// Operating statistics: meter count, memory per meter, kernel reuse,
    /// and streaming throughput.
    pub fn stats(&self) -> FleetStats {
        let mut bytes: usize = 0;
        for shard in &self.shards {
            let state = lock(&shard.state);
            bytes += state
                .meters
                .iter()
                .map(|(_, acc)| acc.approx_bytes())
                .sum::<usize>();
        }
        let meters = self.directory.len();
        let secs = self.tick_nanos as f64 / 1e9;
        FleetStats {
            meters,
            shards: self.shards.len(),
            contracts: self.kernels.len(),
            kernel_hits: self.kernels.hits(),
            kernel_misses: self.kernels.misses(),
            bytes_per_meter: if meters == 0 {
                0.0
            } else {
                bytes as f64 / meters as f64
            },
            ticks: self.ticks,
            tick_seconds: secs,
            samples: self.samples,
            meter_samples_per_sec: if secs > 0.0 {
                self.samples as f64 / secs
            } else {
                0.0
            },
        }
    }

    fn locate(&self, meter: MeterId) -> Result<(usize, usize)> {
        self.directory
            .get(meter.0)
            .copied()
            .ok_or_else(|| CoreError::BadSeries(format!("unknown {}", meter)))
    }
}

/// Human-readable panic message out of a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Lock a shard from a shared borrow (the parallel tick path). Poisoning
/// cannot leave half-applied state — a panicking task dies before its
/// `advance_tick` result is observed — so poisoned locks are recovered.
fn lock(state: &Mutex<ShardState>) -> std::sync::MutexGuard<'_, ShardState> {
    state.lock().unwrap_or_else(|p| p.into_inner())
}

/// Lock a shard through `&mut` (registration/scatter): no locking at all.
fn lock_mut(state: &mut Mutex<ShardState>) -> &mut ShardState {
    match state.get_mut() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    }
}
