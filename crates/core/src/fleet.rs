//! Sharded meter fleets: utility-scale streaming billing.
//!
//! A [`MeterFleet`] manages many [`BillAccrual`] meters at once, sharded by
//! contract fingerprint so every meter under the same contract shares one
//! `Arc`'d [`CompiledContract`] kernel — and with it the kernel's reusable
//! segment-map cache. Ticks scatter the batch of samples to their shards
//! and fan the shards across the `try_par_map` worker pool; each shard is
//! owned by exactly one task per tick, so the per-shard locks never
//! contend.
//!
//! # Hot-path data layout
//!
//! The ingest path comes in three shapes, fastest last:
//!
//! * [`MeterFleet::advance_tick`] — one tick of AoS [`Sample`]s. Samples
//!   are scattered to per-shard buffers (pre-reserved at bucket size) and
//!   folded one `push_next` per sample.
//! * [`MeterFleet::advance_frame`] — one tick as a columnar [`TickFrame`]
//!   (SoA: a shared meter-id lane plus a contiguous power lane). The fleet
//!   resolves directory lookups, quarantine membership, and shard
//!   bucketing **once** into a cached `ScatterPlan` with prefix-sum
//!   bucket offsets; steady-state scatter is then a plan-indexed pull of
//!   the power lane, with no per-sample map probes and no per-sample
//!   locks.
//! * [`MeterFleet::advance_window`] — many frames at once. Each meter's
//!   samples across the window are gathered into one contiguous run and
//!   folded by a single [`BillAccrual::push_run`] call — segment cursors
//!   stay hot across the whole window and `catch_unwind` is paid once per
//!   meter-window instead of once per sample.
//!
//! The scatter plan is reused while the population is stable and
//! invalidated by anything that moves meters or changes quarantine
//! membership: [`MeterFleet::register`], [`MeterFleet::apply_delta`],
//! [`MeterFleet::restore`] of a quarantined meter, and in-tick panics.
//!
//! The fleet preserves the accrual layer's bit-identity invariant meter by
//! meter and *per ingest shape*: `finalize(meter)` equals the batch bill
//! of that meter's sample history under `Precision::BitExact`, regardless
//! of shard count, tick batching, or whether the samples arrived as AoS
//! ticks, frames, or fused windows. The shard count (default: available
//! parallelism, override with [`MeterFleet::with_shards`] or the
//! `HPCGRID_FLEET_SHARDS` env var) is therefore pure deployment tuning.

use crate::accrual::{AccrualSnapshot, BillAccrual};
use crate::billing::Bill;
use crate::checkpoint::FleetCheckpoint;
use crate::compiled::CompiledContract;
use crate::contract::{Contract, ContractDelta};
use crate::kernels::KernelCache;
use crate::ledger::{EventPayload, LedgerEvent};
use crate::{CoreError, Result};
use hpcgrid_timeseries::par::try_par_map;
use hpcgrid_units::{Calendar, Duration, Power, SimTime};
use serde::Serialize;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Environment variable overriding the fleet's shards-per-contract count.
pub const ENV_SHARDS: &str = "HPCGRID_FLEET_SHARDS";

/// Opaque handle to a registered meter. Returned by
/// [`MeterFleet::register`] and stable for the fleet's lifetime (meters
/// are never deregistered, only re-sharded by [`MeterFleet::apply_delta`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeterId(pub usize);

impl std::fmt::Display for MeterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "meter#{}", self.0)
    }
}

/// One metered power reading for one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The meter the reading belongs to.
    pub meter: MeterId,
    /// Mean power over the meter's sample interval.
    pub power: Power,
}

/// One tick's samples in columnar (SoA) form: a meter-id lane shared by
/// `Arc` and a contiguous power lane.
///
/// Frames are the fleet's batched ingest currency: a driver builds the
/// meter-id lane once, then publishes one frame per tick by cloning the
/// `Arc` and filling a fresh power lane (or updating one in place via
/// [`TickFrame::powers_mut`]). Frames sharing one id lane compare by
/// pointer inside the fleet, so the cached `ScatterPlan` match costs a
/// pointer compare, not a scan.
///
/// ```
/// use hpcgrid_core::fleet::{MeterFleet, TickFrame};
/// use hpcgrid_core::contract::Contract;
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
/// use std::sync::Arc;
///
/// let contract = Contract::builder("flat")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let mut fleet = MeterFleet::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(30));
/// let step = Duration::from_minutes(15.0);
/// let ids = Arc::from(vec![
///     fleet.register(&contract, SimTime::EPOCH, step)?,
///     fleet.register(&contract, SimTime::EPOCH, step)?,
/// ]);
/// // One frame per tick, sharing the id lane.
/// let frames: Vec<TickFrame> = (0..4)
///     .map(|_| {
///         TickFrame::new(
///             Arc::clone(&ids),
///             vec![Power::from_megawatts(8.0), Power::from_megawatts(5.0)],
///         )
///     })
///     .collect::<Result<_, _>>()?;
/// let report = fleet.advance_window(&frames)?;
/// assert_eq!(report.applied, 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TickFrame {
    /// Meter ids, position-aligned with `powers`.
    meters: Arc<[MeterId]>,
    /// Mean power per meter over this tick.
    powers: Vec<Power>,
}

impl TickFrame {
    /// A frame from an id lane and a position-aligned power lane. Errors
    /// if the lanes disagree in length.
    pub fn new(meters: Arc<[MeterId]>, powers: Vec<Power>) -> Result<TickFrame> {
        if meters.len() != powers.len() {
            return Err(CoreError::BadSeries(format!(
                "tick frame lanes disagree: {} meter ids vs {} powers",
                meters.len(),
                powers.len()
            )));
        }
        Ok(TickFrame { meters, powers })
    }

    /// Transpose an AoS sample batch into a frame (one allocation per
    /// lane). Drivers that can build frames directly should — frames built
    /// per tick from the same `Arc`'d id lane skip the plan re-match scan.
    pub fn from_samples(samples: &[Sample]) -> TickFrame {
        TickFrame {
            meters: samples.iter().map(|s| s.meter).collect(),
            powers: samples.iter().map(|s| s.power).collect(),
        }
    }

    /// The shared meter-id lane.
    pub fn meters(&self) -> &Arc<[MeterId]> {
        &self.meters
    }

    /// The power lane, position-aligned with [`TickFrame::meters`].
    pub fn powers(&self) -> &[Power] {
        &self.powers
    }

    /// Mutable power lane — overwrite in place to reuse one frame
    /// allocation across ticks.
    pub fn powers_mut(&mut self) -> &mut [Power] {
        &mut self.powers
    }

    /// Samples in the frame.
    pub fn len(&self) -> usize {
        self.meters.len()
    }

    /// True if the frame carries no samples.
    pub fn is_empty(&self) -> bool {
        self.meters.is_empty()
    }
}

/// The cached scatter resolution for one frame shape against one fleet
/// population: every directory lookup, quarantine probe, and shard bucket
/// assignment done once, with prefix-sum offsets so each shard's pull is a
/// contiguous entry range.
#[derive(Debug)]
struct ScatterPlan {
    /// Fleet population version the plan was built against.
    version: u64,
    /// The frame meter-id lane the plan serves.
    meters: Arc<[MeterId]>,
    /// Per-shard entry ranges: shard `s` owns entries
    /// `[offsets[s], offsets[s+1])`.
    offsets: Vec<usize>,
    /// Entry → shard-local meter slot.
    slots: Vec<u32>,
    /// Entry → frame position (index into the power lane).
    positions: Vec<u32>,
    /// Frame positions dropped every tick because their meter is
    /// quarantined.
    dropped_per_tick: usize,
    /// True if no meter id appears twice in the frame — the precondition
    /// for fusing a window per meter (duplicates must fold in frame
    /// order, which per-meter fusion would reorder).
    unique: bool,
}

/// A group of meters sharing one compiled kernel, advanced by one worker
/// task per tick.
struct Shard {
    /// `CompiledContract::fingerprint().0` of the shard's kernel.
    fingerprint: u64,
    kernel: Arc<CompiledContract>,
    /// Meters plus the tick's scatter buffer. Locked once per tick per
    /// worker; `advance_tick` holds `&mut self`, so scatter uses the
    /// lock-free `get_mut` path.
    state: Mutex<ShardState>,
}

struct ShardState {
    /// `(meter id, accrual)` — slot positions are tracked in the fleet
    /// directory and patched up on `swap_remove`.
    meters: Vec<(MeterId, BillAccrual)>,
    /// `(slot, power)` pairs scattered for the in-flight tick. Kept
    /// per-shard so its capacity is reused across ticks.
    buf: Vec<(usize, Power)>,
}

/// What one fleet advance (tick, frame, or window) did with its samples.
///
/// Every offered sample lands in exactly one bucket: `applied` (folded into
/// a healthy meter), `dropped` (its meter was quarantined — before this
/// advance, or earlier in this advance by a panic), or the panicking sample
/// itself, which is counted in `dropped` *and* names its meter in
/// `newly_quarantined`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetTickReport {
    /// Samples offered to the advance.
    pub samples: usize,
    /// Samples folded into healthy meters.
    pub applied: usize,
    /// Samples discarded because their meter is quarantined (including the
    /// sample whose fold panicked and, for windows, the rest of that
    /// meter's window).
    pub dropped: usize,
    /// Meters quarantined by this advance, with the panic message that
    /// condemned them, in meter-id order. The reason is shared (`Arc`)
    /// with the fleet's quarantine map, not cloned per consumer.
    pub newly_quarantined: Vec<(MeterId, Arc<str>)>,
}

impl FleetTickReport {
    /// Merge another report into this one (used when a window degrades to
    /// per-frame ticks).
    fn absorb(&mut self, other: FleetTickReport) {
        self.samples += other.samples;
        self.applied += other.applied;
        self.dropped += other.dropped;
        self.newly_quarantined.extend(other.newly_quarantined);
    }
}

/// Operating statistics of a [`MeterFleet`] — the `BENCH_fleet.json`
/// ingredients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FleetStats {
    /// Registered meters.
    pub meters: usize,
    /// Live shards.
    pub shards: usize,
    /// Distinct compiled kernels (one per distinct contract).
    pub contracts: usize,
    /// Registrations and delta moves that reused an existing kernel.
    pub kernel_hits: u64,
    /// Registrations and delta moves that had to compile a kernel.
    pub kernel_misses: u64,
    /// Frame/window advances that reused the cached scatter plan.
    pub plan_hits: u64,
    /// Scatter plan builds (first frame, population changes, new frame
    /// shapes).
    pub plan_builds: u64,
    /// Mean accrual state size per meter, in bytes (excludes the shared
    /// kernels — that is the point of sharding).
    pub bytes_per_meter: f64,
    /// Ticks advanced so far.
    pub ticks: u64,
    /// Wall-clock seconds spent inside tick/frame/window advances.
    pub tick_seconds: f64,
    /// Samples folded across all ticks.
    pub samples: u64,
    /// `samples / tick_seconds` — the fleet's streaming throughput.
    pub meter_samples_per_sec: f64,
}

impl FleetStats {
    /// Fraction of kernel lookups served by an already-compiled kernel.
    pub fn kernel_reuse_rate(&self) -> f64 {
        let total = self.kernel_hits + self.kernel_misses;
        if total == 0 {
            0.0
        } else {
            self.kernel_hits as f64 / total as f64
        }
    }

    /// Fraction of frame/window advances served by the cached scatter
    /// plan.
    pub fn plan_reuse_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_builds;
        if total == 0 {
            0.0
        } else {
            self.plan_hits as f64 / total as f64
        }
    }
}

/// Per-shard fold outcome: `(applied, dropped, quarantined)`.
type ShardOutcome = (usize, usize, Vec<(MeterId, Arc<str>)>);

/// A sharded fleet of streaming meters over one calendar and compile
/// horizon.
///
/// ```
/// use hpcgrid_core::fleet::{MeterFleet, Sample};
/// use hpcgrid_core::contract::Contract;
/// use hpcgrid_core::tariff::Tariff;
/// use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};
///
/// let contract = Contract::builder("flat")
///     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
///     .build()?;
/// let mut fleet = MeterFleet::new(Calendar::default(), SimTime::EPOCH, SimTime::from_days(30));
/// let step = Duration::from_minutes(15.0);
/// let a = fleet.register(&contract, SimTime::EPOCH, step)?;
/// let b = fleet.register(&contract, SimTime::EPOCH, step)?; // shares a's kernel
/// for _ in 0..96 {
///     fleet.advance_tick(&[
///         Sample { meter: a, power: Power::from_megawatts(8.0) },
///         Sample { meter: b, power: Power::from_megawatts(5.0) },
///     ])?;
/// }
/// let bill = fleet.finalize(a)?;
/// assert!(bill.total().as_dollars() > 0.0);
/// assert_eq!(fleet.stats().contracts, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct MeterFleet {
    /// One compiled kernel per distinct contract, shared by `Arc` across
    /// shards (and, via [`MeterFleet::kernel_cache`], with sweep drivers).
    kernels: KernelCache,
    /// Max sub-shards per distinct contract.
    shards_per_contract: usize,
    /// Shard indexes per kernel fingerprint, in creation order.
    shard_index: HashMap<u64, Vec<usize>>,
    /// Round-robin counters per kernel fingerprint.
    rr: HashMap<u64, usize>,
    shards: Vec<Shard>,
    /// `meter id -> (shard, slot)`.
    directory: Vec<(usize, usize)>,
    /// `meter id -> panic message` of meters retired by a panicking fold.
    /// Quarantined meters drop their samples and refuse `finalize` /
    /// `snapshot`; [`MeterFleet::restore`] rehabilitates them. Reasons are
    /// `Arc`-shared with the tick reports that minted them.
    quarantined: HashMap<usize, Arc<str>>,
    /// Monotone population version: bumped by anything that moves meters
    /// between shards or changes quarantine membership. A `ScatterPlan`
    /// is valid only while its version matches.
    pop_version: u64,
    /// The cached scatter plan of the most recent frame shape.
    plan: Option<ScatterPlan>,
    plan_hits: u64,
    plan_builds: u64,
    /// Epoch-stamped scratch for duplicate-meter detection during plan
    /// builds (meter id → last epoch seen), reused across rebuilds.
    stamp: Vec<u32>,
    stamp_epoch: u32,
    ticks: u64,
    tick_nanos: u128,
    samples: u64,
}

impl MeterFleet {
    /// An empty fleet billing under `calendar` for loads inside
    /// `[start, end)`, with the default shard count: `HPCGRID_FLEET_SHARDS`
    /// if set, otherwise the machine's available parallelism.
    pub fn new(calendar: Calendar, start: SimTime, end: SimTime) -> MeterFleet {
        let shards = std::env::var(ENV_SHARDS)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n >= 1)
            .unwrap_or_else(|| hpcgrid_timeseries::par::default_threads(usize::MAX));
        MeterFleet::with_shards(calendar, start, end, shards)
    }

    /// Like [`MeterFleet::new`] with an explicit shards-per-contract count
    /// (clamped to at least 1). Shard count never affects bills — only how
    /// ticks spread across the worker pool.
    pub fn with_shards(
        calendar: Calendar,
        start: SimTime,
        end: SimTime,
        shards_per_contract: usize,
    ) -> MeterFleet {
        MeterFleet {
            kernels: KernelCache::new(calendar, start, end),
            shards_per_contract: shards_per_contract.max(1),
            shard_index: HashMap::new(),
            rr: HashMap::new(),
            shards: Vec::new(),
            directory: Vec::new(),
            quarantined: HashMap::new(),
            pop_version: 0,
            plan: None,
            plan_hits: 0,
            plan_builds: 0,
            stamp: Vec::new(),
            stamp_epoch: 0,
            ticks: 0,
            tick_nanos: 0,
            samples: 0,
        }
    }

    /// The fleet's compile horizon.
    pub fn horizon(&self) -> (SimTime, SimTime) {
        self.kernels.horizon()
    }

    /// The fleet's kernel cache — peek at compiled kernels (e.g. to stock a
    /// sweep's `SharedInputs` registry with the same `Arc`s the fleet
    /// bills through).
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    /// Registered meter count.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True if no meters are registered.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Register a meter under `contract`, streaming from `start` at
    /// interval `step`. Compiles the contract's kernel at most once per
    /// distinct contract — subsequent registrations share it by `Arc`.
    pub fn register(
        &mut self,
        contract: &Contract,
        start: SimTime,
        step: Duration,
    ) -> Result<MeterId> {
        let kernel = self.kernels.get_or_compile(contract)?;
        self.add_meter(kernel, start, step)
    }

    /// Register a meter against an already-compiled kernel — the warm path
    /// when the caller compiled (and possibly pre-seeded segment maps on)
    /// the kernel itself. The kernel must share the fleet's horizon.
    pub fn register_compiled(
        &mut self,
        kernel: Arc<CompiledContract>,
        start: SimTime,
        step: Duration,
    ) -> Result<MeterId> {
        let (start_h, end_h) = self.kernels.horizon();
        if kernel.horizon() != (start_h, end_h) {
            return Err(CoreError::BadSeries(format!(
                "kernel horizon {:?} does not match the fleet horizon [{start_h}, {end_h})",
                kernel.horizon(),
            )));
        }
        let kernel = self.kernels.get_or_insert(kernel)?;
        self.add_meter(kernel, start, step)
    }

    /// Place a fresh accrual on one of its kernel's sub-shards.
    fn add_meter(
        &mut self,
        kernel: Arc<CompiledContract>,
        start: SimTime,
        step: Duration,
    ) -> Result<MeterId> {
        let accrual = BillAccrual::new(Arc::clone(&kernel), start, step)?;
        let id = MeterId(self.directory.len());
        let (shard, slot) = self.place(kernel, accrual, id);
        self.directory.push((shard, slot));
        self.pop_version += 1;
        Ok(id)
    }

    /// Round-robin an accrual across its kernel's sub-shards, creating
    /// sub-shards lazily up to the per-contract cap.
    fn place(
        &mut self,
        kernel: Arc<CompiledContract>,
        accrual: BillAccrual,
        id: MeterId,
    ) -> (usize, usize) {
        let fp = kernel.fingerprint().0;
        let list = self.shard_index.entry(fp).or_default();
        let shard = if list.len() < self.shards_per_contract {
            let idx = self.shards.len();
            self.shards.push(Shard {
                fingerprint: fp,
                kernel,
                state: Mutex::new(ShardState {
                    meters: Vec::new(),
                    buf: Vec::new(),
                }),
            });
            list.push(idx);
            idx
        } else {
            let rr = self.rr.entry(fp).or_insert(0);
            let idx = list[*rr % list.len()];
            *rr += 1;
            idx
        };
        let meters = &mut lock_mut(&mut self.shards[shard].state).meters;
        meters.push((id, accrual));
        (shard, meters.len() - 1)
    }

    /// Reserve each shard's scatter buffer at its expected bucket size —
    /// the cached plan's bucket counts when the plan is current, the
    /// shard's population otherwise — so the first tick lands in one
    /// allocation instead of doubling up from empty. Capacity persists
    /// across ticks (`buf.clear()` keeps it), so this is a no-op after
    /// the first reservation.
    fn reserve_shard_bufs(&mut self) {
        let plan_counts: Option<Vec<usize>> = self
            .plan
            .as_ref()
            .filter(|p| p.version == self.pop_version)
            .map(|p| p.offsets.windows(2).map(|w| w[1] - w[0]).collect());
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let st = lock_mut(&mut shard.state);
            let want = match &plan_counts {
                Some(counts) => counts[s],
                None => st.meters.len(),
            };
            if st.buf.capacity() < want {
                let additional = want - st.buf.len();
                st.buf.reserve_exact(additional);
            }
        }
    }

    /// Advance the fleet by one tick: scatter `samples` to their shards,
    /// then fold every shard's batch in parallel. A meter absent from
    /// `samples` simply lags — its accrual keeps its own clock. Samples
    /// for the same meter fold in slice order.
    ///
    /// The fleet degrades instead of dying: a fold that *panics* (a
    /// poisoned accrual, an injected fault) quarantines that one meter —
    /// its sample and the rest of its batch are dropped, every other meter
    /// folds normally, and the casualty is reported in
    /// [`FleetTickReport::newly_quarantined`]. Subsequent ticks drop the
    /// quarantined meter's samples at scatter time until
    /// [`MeterFleet::restore`] rehabilitates it from a known-good snapshot.
    /// Typed errors (grid misuse, horizon overrun) still fail the tick.
    pub fn advance_tick(&mut self, samples: &[Sample]) -> Result<FleetTickReport> {
        let t0 = Instant::now();
        let mut report = FleetTickReport {
            samples: samples.len(),
            ..FleetTickReport::default()
        };
        self.reserve_shard_bufs();
        let check_quarantine = !self.quarantined.is_empty();
        for s in samples {
            let (shard, slot) = *self
                .directory
                .get(s.meter.0)
                .ok_or_else(|| CoreError::BadSeries(format!("unknown {}", s.meter)))?;
            if check_quarantine && self.quarantined.contains_key(&s.meter.0) {
                report.dropped += 1;
                continue;
            }
            lock_mut(&mut self.shards[shard].state)
                .buf
                .push((slot, s.power));
        }
        let worked = try_par_map(&self.shards, |shard| -> Result<ShardOutcome> {
            let state = &mut *lock(&shard.state);
            // Split-borrow meters and buf out of the guard.
            let ShardState { meters, buf } = state;
            let out = fold_shard(meters, buf.iter().copied());
            buf.clear();
            out
        })
        .map_err(|e| CoreError::BatchPanic(e.to_string()))?;
        self.absorb_outcomes(&mut report, worked)?;
        self.ticks += 1;
        self.samples += report.applied as u64;
        self.tick_nanos += t0.elapsed().as_nanos();
        Ok(report)
    }

    /// Advance the fleet by one columnar [`TickFrame`] — semantically
    /// identical to [`MeterFleet::advance_tick`] over the equivalent AoS
    /// batch (bills bit-identical, same degradation rules), but the
    /// scatter resolves through the cached `ScatterPlan`: on the steady
    /// state (same id lane, unchanged population) no directory or
    /// quarantine probes happen at all, and shard workers pull the power
    /// lane directly through the plan's prefix-sum buckets.
    pub fn advance_frame(&mut self, frame: &TickFrame) -> Result<FleetTickReport> {
        let t0 = Instant::now();
        self.ensure_plan(&frame.meters)?;
        let mut report;
        let worked;
        {
            let plan = self.plan.as_ref().expect("plan was just ensured");
            report = FleetTickReport {
                samples: frame.len(),
                dropped: plan.dropped_per_tick,
                ..FleetTickReport::default()
            };
            let powers = frame.powers();
            let shards = &self.shards;
            let shard_ids: Vec<usize> = (0..shards.len()).collect();
            worked = try_par_map(&shard_ids, |&s| -> Result<ShardOutcome> {
                let state = &mut *lock(&shards[s].state);
                let (lo, hi) = (plan.offsets[s], plan.offsets[s + 1]);
                fold_shard(
                    &mut state.meters,
                    plan.slots[lo..hi]
                        .iter()
                        .zip(&plan.positions[lo..hi])
                        .map(|(&slot, &pos)| (slot as usize, powers[pos as usize])),
                )
            })
            .map_err(|e| CoreError::BatchPanic(e.to_string()))?;
        }
        self.absorb_outcomes(&mut report, worked)?;
        self.ticks += 1;
        self.samples += report.applied as u64;
        self.tick_nanos += t0.elapsed().as_nanos();
        Ok(report)
    }

    /// Advance the fleet by a whole window of frames in one fused pass —
    /// semantically identical to calling [`MeterFleet::advance_frame`]
    /// once per frame in order, but each meter's window of samples is
    /// gathered into one contiguous run and folded by a single
    /// [`BillAccrual::push_run`], so cursor state stays hot and
    /// `catch_unwind` is paid once per meter-window.
    ///
    /// The fused pass needs one scatter plan for the whole window: every
    /// frame must carry the same meter-id lane (share it by `Arc` to make
    /// the check a pointer compare) with no duplicate meters. Windows that
    /// don't qualify degrade gracefully to per-frame advances — same
    /// bills, same report, just without the fusion win.
    ///
    /// A meter that panics mid-window is quarantined and the *rest of its
    /// window* is dropped; every other meter still folds its full window.
    pub fn advance_window(&mut self, frames: &[TickFrame]) -> Result<FleetTickReport> {
        let (first, rest) = match frames.split_first() {
            None => return Ok(FleetTickReport::default()),
            Some(split) => split,
        };
        if rest.is_empty() {
            return self.advance_frame(first);
        }
        let homogeneous = rest
            .iter()
            .all(|f| Arc::ptr_eq(&f.meters, &first.meters) || f.meters[..] == first.meters[..]);
        if homogeneous {
            self.ensure_plan(&first.meters)?;
            if self.plan.as_ref().is_some_and(|p| p.unique) {
                return self.advance_window_fused(frames);
            }
        }
        let mut report = FleetTickReport::default();
        for frame in frames {
            report.absorb(self.advance_frame(frame)?);
        }
        report.newly_quarantined.sort_by_key(|(id, _)| *id);
        Ok(report)
    }

    /// The fused window fold: one `push_run` per meter per window. The
    /// plan is already ensured, current, and duplicate-free.
    fn advance_window_fused(&mut self, frames: &[TickFrame]) -> Result<FleetTickReport> {
        let t0 = Instant::now();
        let w = frames.len();
        let mut report;
        let worked;
        {
            let plan = self.plan.as_ref().expect("plan ensured by advance_window");
            report = FleetTickReport {
                samples: frames[0].len() * w,
                dropped: plan.dropped_per_tick * w,
                ..FleetTickReport::default()
            };
            let shards = &self.shards;
            let shard_ids: Vec<usize> = (0..shards.len()).collect();
            worked = try_par_map(&shard_ids, |&s| -> Result<ShardOutcome> {
                let state = &mut *lock(&shards[s].state);
                let meters = &mut state.meters;
                let mut run: Vec<Power> = Vec::with_capacity(w);
                let mut applied = 0usize;
                let mut dropped = 0usize;
                let mut panicked: Vec<(MeterId, Arc<str>)> = Vec::new();
                for k in plan.offsets[s]..plan.offsets[s + 1] {
                    let slot = plan.slots[k] as usize;
                    let pos = plan.positions[k] as usize;
                    run.clear();
                    run.extend(frames.iter().map(|f| f.powers[pos]));
                    let (id, accrual) = &mut meters[slot];
                    let before = accrual.samples();
                    match catch_unwind(AssertUnwindSafe(|| accrual.push_run(&run))) {
                        Ok(pushed) => {
                            pushed?;
                            applied += w;
                        }
                        Err(payload) => {
                            // The fold got `done` samples in before dying;
                            // the rest of this meter's window is dropped.
                            let done = (accrual.samples() - before) as usize;
                            applied += done;
                            dropped += w - done;
                            panicked.push((*id, panic_reason(payload)));
                        }
                    }
                }
                Ok((applied, dropped, panicked))
            })
            .map_err(|e| CoreError::BatchPanic(e.to_string()))?;
        }
        self.absorb_outcomes(&mut report, worked)?;
        self.ticks += w as u64;
        self.samples += report.applied as u64;
        self.tick_nanos += t0.elapsed().as_nanos();
        Ok(report)
    }

    /// Reuse the cached scatter plan when it matches `meters` and the
    /// current population; rebuild it otherwise.
    fn ensure_plan(&mut self, meters: &Arc<[MeterId]>) -> Result<()> {
        if let Some(p) = &self.plan {
            if p.version == self.pop_version
                && (Arc::ptr_eq(&p.meters, meters) || p.meters[..] == meters[..])
            {
                self.plan_hits += 1;
                return Ok(());
            }
        }
        let plan = self.build_plan(meters)?;
        self.plan = Some(plan);
        self.plan_builds += 1;
        Ok(())
    }

    /// Resolve one frame shape against the current population: two O(n)
    /// passes (bucket counts, then prefix-sum fill), with quarantine
    /// membership folded in (quarantined positions are dropped from the
    /// plan, so the steady-state tick never probes the quarantine map).
    fn build_plan(&mut self, meters: &Arc<[MeterId]>) -> Result<ScatterPlan> {
        if meters.len() > u32::MAX as usize {
            return Err(CoreError::BadSeries(format!(
                "tick frame of {} samples exceeds the plan's u32 position space",
                meters.len()
            )));
        }
        let nshards = self.shards.len();
        let mut counts = vec![0usize; nshards];
        let mut dropped_per_tick = 0usize;
        let check_quarantine = !self.quarantined.is_empty();
        for m in meters.iter() {
            let (shard, _) = *self
                .directory
                .get(m.0)
                .ok_or_else(|| CoreError::BadSeries(format!("unknown {}", m)))?;
            if check_quarantine && self.quarantined.contains_key(&m.0) {
                dropped_per_tick += 1;
                continue;
            }
            counts[shard] += 1;
        }
        let mut offsets = vec![0usize; nshards + 1];
        for s in 0..nshards {
            offsets[s + 1] = offsets[s] + counts[s];
        }
        let total = offsets[nshards];
        let mut slots = vec![0u32; total];
        let mut positions = vec![0u32; total];
        let mut cursor = offsets.clone();
        // Epoch-stamped duplicate detection: one u32 store per meter, no
        // clearing between rebuilds.
        self.stamp_epoch = self.stamp_epoch.wrapping_add(1);
        if self.stamp_epoch == 0 {
            self.stamp.clear();
            self.stamp_epoch = 1;
        }
        if self.stamp.len() < self.directory.len() {
            self.stamp.resize(self.directory.len(), 0);
        }
        let mut unique = true;
        for (pos, m) in meters.iter().enumerate() {
            if check_quarantine && self.quarantined.contains_key(&m.0) {
                continue;
            }
            let (shard, slot) = self.directory[m.0];
            if self.stamp[m.0] == self.stamp_epoch {
                unique = false;
            } else {
                self.stamp[m.0] = self.stamp_epoch;
            }
            let k = cursor[shard];
            slots[k] = slot as u32;
            positions[k] = pos as u32;
            cursor[shard] += 1;
        }
        Ok(ScatterPlan {
            version: self.pop_version,
            meters: Arc::clone(meters),
            offsets,
            slots,
            positions,
            dropped_per_tick,
            unique,
        })
    }

    /// Aggregate per-shard fold outcomes into `report` and quarantine the
    /// casualties (bumping the population version so the scatter plan
    /// drops them at rebuild).
    fn absorb_outcomes(
        &mut self,
        report: &mut FleetTickReport,
        worked: Vec<Result<ShardOutcome>>,
    ) -> Result<()> {
        for outcome in worked {
            let (applied, dropped, panicked) = outcome?;
            report.applied += applied;
            report.dropped += dropped;
            report.newly_quarantined.extend(panicked);
        }
        report.newly_quarantined.sort_by_key(|(id, _)| *id);
        if !report.newly_quarantined.is_empty() {
            for (id, reason) in &report.newly_quarantined {
                self.quarantined.insert(id.0, Arc::clone(reason));
            }
            self.pop_version += 1;
        }
        Ok(())
    }

    /// Close the books of one meter — bit-identical to the batch bill of
    /// its pushed history (see the [`crate::accrual`] invariant). Errors
    /// with [`CoreError::Quarantined`] for a quarantined meter: its accrual
    /// died mid-fold and its state is not trustworthy.
    pub fn finalize(&self, meter: MeterId) -> Result<Bill> {
        self.check_quarantine(meter)?;
        let (shard, slot) = self.locate(meter)?;
        lock(&self.shards[shard].state).meters[slot].1.finalize()
    }

    /// Close the books of every *healthy* meter, in parallel, returned in
    /// meter-id order. Quarantined meters are skipped — inspect
    /// [`MeterFleet::quarantined`] to account for them.
    pub fn finalize_all(&self) -> Result<Vec<(MeterId, Bill)>> {
        let quarantined = &self.quarantined;
        let per_shard = try_par_map(&self.shards, |shard| -> Result<Vec<(MeterId, Bill)>> {
            let state = lock(&shard.state);
            state
                .meters
                .iter()
                .filter(|(id, _)| !quarantined.contains_key(&id.0))
                .map(|(id, acc)| acc.finalize().map(|b| (*id, b)))
                .collect()
        })
        .map_err(|e| CoreError::BatchPanic(e.to_string()))?;
        let mut bills: Vec<(MeterId, Bill)> =
            Vec::with_capacity(self.directory.len() - quarantined.len());
        for part in per_shard {
            bills.extend(part?);
        }
        bills.sort_by_key(|(id, _)| *id);
        Ok(bills)
    }

    /// Serialize one meter's accrual state for checkpointing. Errors with
    /// [`CoreError::Quarantined`] for a quarantined meter — a snapshot of a
    /// half-folded accrual must never reach a checkpoint.
    pub fn snapshot(&self, meter: MeterId) -> Result<AccrualSnapshot> {
        self.check_quarantine(meter)?;
        let (shard, slot) = self.locate(meter)?;
        Ok(lock(&self.shards[shard].state).meters[slot].1.snapshot())
    }

    /// Snapshot every healthy meter in meter-id order — the payload of a
    /// [`FleetCheckpoint`]. Quarantined meters are excluded by
    /// construction, so a checkpoint only ever holds trustworthy state.
    pub fn snapshot_all(&self) -> Vec<(u64, AccrualSnapshot)> {
        (0..self.directory.len())
            .filter(|id| !self.quarantined.contains_key(id))
            .map(|id| {
                let (shard, slot) = self.directory[id];
                let snap = lock(&self.shards[shard].state).meters[slot].1.snapshot();
                (id as u64, snap)
            })
            .collect()
    }

    /// Restore one meter's accrual state from a snapshot taken against the
    /// same contract (validated by kernel fingerprint). The restored meter
    /// continues streaming bit-identically to the original. Restoring a
    /// quarantined meter rehabilitates it — the snapshot replaces the
    /// untrustworthy state wholesale.
    pub fn restore(&mut self, meter: MeterId, snap: &AccrualSnapshot) -> Result<()> {
        let (shard, slot) = self.locate(meter)?;
        let kernel = Arc::clone(&self.shards[shard].kernel);
        let restored = BillAccrual::restore(kernel, snap)?;
        lock_mut(&mut self.shards[shard].state).meters[slot].1 = restored;
        if self.quarantined.remove(&meter.0).is_some() {
            // Rehabilitation re-admits the meter to scatter plans.
            self.pop_version += 1;
        }
        Ok(())
    }

    /// Restore every meter recorded in `ckpt` (rehabilitating quarantined
    /// ones) and adopt the checkpoint's tick count. Returns the number of
    /// meters restored. Meters registered after the checkpoint was taken
    /// are left untouched.
    pub fn restore_checkpoint(&mut self, ckpt: &FleetCheckpoint) -> Result<usize> {
        for (id, snap) in &ckpt.meters {
            self.restore(MeterId(*id as usize), snap)?;
        }
        self.ticks = ckpt.ticks;
        Ok(ckpt.meters.len())
    }

    /// Meters currently quarantined, with the panic message that condemned
    /// each, in meter-id order. Reasons are shared `Arc`s, not copies.
    pub fn quarantined(&self) -> Vec<(MeterId, Arc<str>)> {
        let mut out: Vec<(MeterId, Arc<str>)> = self
            .quarantined
            .iter()
            .map(|(id, reason)| (MeterId(*id), Arc::clone(reason)))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// True if `meter` is quarantined.
    pub fn is_quarantined(&self, meter: MeterId) -> bool {
        self.quarantined.contains_key(&meter.0)
    }

    /// Arm a one-shot injected panic on `meter`'s next fold — the chaos
    /// hook behind the fleet degradation tests. Test-only plumbing.
    #[doc(hidden)]
    pub fn chaos_poison_meter(&mut self, meter: MeterId) -> Result<()> {
        let (shard, slot) = self.locate(meter)?;
        lock_mut(&mut self.shards[shard].state).meters[slot]
            .1
            .poison_next_push();
        Ok(())
    }

    fn check_quarantine(&self, meter: MeterId) -> Result<()> {
        match self.quarantined.get(&meter.0) {
            Some(reason) => Err(CoreError::Quarantined(format!("{meter}: {reason}"))),
            None => Ok(()),
        }
    }

    /// Patch one meter's contract mid-stream and move it to the patched
    /// kernel's shard group. The accrual continues without replaying
    /// history, so only accrual-preserving deltas are accepted — see
    /// [`BillAccrual::rebind`] for the exact rules. On error the meter is
    /// left untouched on its current kernel.
    pub fn apply_delta(&mut self, meter: MeterId, delta: &ContractDelta) -> Result<()> {
        let (shard, slot) = self.locate(meter)?;
        let old_fp = self.shards[shard].fingerprint;
        let patched = self.shards[shard].kernel.patch(delta)?;
        let new_fp = patched.fingerprint().0;
        if new_fp == old_fp {
            return Ok(()); // delta was a no-op; kernel content unchanged
        }
        let kernel = self.kernels.get_or_insert(Arc::new(patched))?;
        // Rebind first: if the delta is not accrual-preserving this fails
        // and the meter stays where it is.
        let mut accrual = {
            let state = lock_mut(&mut self.shards[shard].state);
            state.meters[slot].1.clone()
        };
        accrual.rebind(Arc::clone(&kernel))?;
        // Remove from the old shard, patching the directory entry of
        // whichever meter swap_remove moved into the vacated slot.
        {
            let state = lock_mut(&mut self.shards[shard].state);
            state.meters.swap_remove(slot);
            if let Some((moved_id, _)) = state.meters.get(slot) {
                self.directory[moved_id.0] = (shard, slot);
            }
        }
        let (new_shard, new_slot) = self.place(kernel, accrual, meter);
        self.directory[meter.0] = (new_shard, new_slot);
        // Two directory entries moved; cached scatter plans are stale.
        self.pop_version += 1;
        Ok(())
    }

    /// Apply a contract-ledger event to a live meter: the fleet-side hook a
    /// ledger driver calls when a renegotiation lands, so a
    /// [`LedgerEvent`] re-shards live meters through the existing
    /// [`MeterFleet::apply_delta`] patch path (the meter's kernel is
    /// patched, its accrual rebound, and the meter moves to the shard of
    /// the revised fingerprint — a no-op if the event does not change the
    /// kernel). `Created` events describe meters that do not exist yet —
    /// register those with [`MeterFleet::register`] instead.
    ///
    /// The delta must be accrual-preserving (the
    /// [`BillAccrual::rebind`] rules); events that would re-price history
    /// are rejected and the meter stays where it is — close its books and
    /// re-register to take such a revision mid-stream, or bill the horizon
    /// through [`ContractLedger::bill_as_of`](crate::ledger::ContractLedger::bill_as_of).
    pub fn apply_event(&mut self, meter: MeterId, event: &LedgerEvent) -> Result<()> {
        match &event.payload {
            EventPayload::Delta(delta) => self.apply_delta(meter, delta),
            EventPayload::Created(_) => Err(CoreError::Ledger(format!(
                "a created event opens a new stream; register a meter for it \
                 instead of applying it to live {meter}"
            ))),
        }
    }

    /// Operating statistics: meter count, memory per meter, kernel and
    /// scatter-plan reuse, and streaming throughput.
    pub fn stats(&self) -> FleetStats {
        let mut bytes: usize = 0;
        for shard in &self.shards {
            let state = lock(&shard.state);
            bytes += state
                .meters
                .iter()
                .map(|(_, acc)| acc.approx_bytes())
                .sum::<usize>();
        }
        let meters = self.directory.len();
        let secs = self.tick_nanos as f64 / 1e9;
        FleetStats {
            meters,
            shards: self.shards.len(),
            contracts: self.kernels.len(),
            kernel_hits: self.kernels.hits(),
            kernel_misses: self.kernels.misses(),
            plan_hits: self.plan_hits,
            plan_builds: self.plan_builds,
            bytes_per_meter: if meters == 0 {
                0.0
            } else {
                bytes as f64 / meters as f64
            },
            ticks: self.ticks,
            tick_seconds: secs,
            samples: self.samples,
            meter_samples_per_sec: if secs > 0.0 {
                self.samples as f64 / secs
            } else {
                0.0
            },
        }
    }

    fn locate(&self, meter: MeterId) -> Result<(usize, usize)> {
        self.directory
            .get(meter.0)
            .copied()
            .ok_or_else(|| CoreError::BadSeries(format!("unknown {}", meter)))
    }
}

/// Fold one shard's scattered `(slot, power)` pulls in tick order,
/// quarantining panicking meters per-push. Membership of the panicked set
/// is a lazily-allocated slot bitmap: O(1) per sample, and the common
/// panic-free tick never allocates or probes it.
fn fold_shard(
    meters: &mut [(MeterId, BillAccrual)],
    pulls: impl Iterator<Item = (usize, Power)>,
) -> Result<ShardOutcome> {
    let mut applied = 0usize;
    let mut dropped = 0usize;
    let mut panicked: Vec<(MeterId, Arc<str>)> = Vec::new();
    let mut bits: Vec<u64> = Vec::new();
    let words = meters.len().div_ceil(64).max(1);
    for (slot, power) in pulls {
        if !bits.is_empty() && bits[slot / 64] & (1 << (slot % 64)) != 0 {
            dropped += 1;
            continue;
        }
        let (id, accrual) = &mut meters[slot];
        match catch_unwind(AssertUnwindSafe(|| accrual.push_next(power))) {
            Ok(pushed) => {
                pushed?;
                applied += 1;
            }
            Err(payload) => {
                dropped += 1;
                if bits.is_empty() {
                    bits = vec![0u64; words];
                }
                bits[slot / 64] |= 1 << (slot % 64);
                panicked.push((*id, panic_reason(payload)));
            }
        }
    }
    Ok((applied, dropped, panicked))
}

/// Human-readable panic message out of a `catch_unwind` payload, shared
/// behind one `Arc` by the tick report and the quarantine map.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> Arc<str> {
    if let Some(s) = payload.downcast_ref::<&str>() {
        Arc::from(*s)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        Arc::from(s.as_str())
    } else {
        Arc::from("panic payload of unknown type")
    }
}

/// Lock a shard from a shared borrow (the parallel tick path). Poisoning
/// cannot leave half-applied state — a panicking task dies before its
/// `advance_tick` result is observed — so poisoned locks are recovered.
fn lock(state: &Mutex<ShardState>) -> std::sync::MutexGuard<'_, ShardState> {
    state.lock().unwrap_or_else(|p| p.into_inner())
}

/// Lock a shard through `&mut` (registration/scatter): no locking at all.
fn lock_mut(state: &mut Mutex<ShardState>) -> &mut ShardState {
    match state.get_mut() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    }
}
