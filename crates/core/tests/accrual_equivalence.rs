//! Property tests: streaming accrual is **bit-identical** to batch billing.
//!
//! The streaming subsystem's contract (see `hpcgrid_core::accrual`) is that
//! `BillAccrual::finalize()` after `k` pushes equals the batch bill of the
//! first-`k`-samples series, bit for bit, under `Precision::BitExact` — at
//! *every* prefix, across all four tariff kinds, wrap-midnight TOU windows,
//! month-straddling streams, coarse metering intervals, top-k demand bases,
//! and emergency event windows. `Bill` compares `Money` exactly, so
//! `prop_assert_eq!` demands bit-level equality.
//!
//! On top of pure streaming: mid-stream `rebind` onto a patched kernel must
//! match a batch bill under that kernel; non-accrual-preserving deltas must
//! be rejected; snapshot/restore must round-trip through serde and continue
//! bit-identically; the sharded `MeterFleet` must produce the same bills
//! for any shard count; and `Precision::Fast` batch bills must agree with
//! the (always bit-exact-ordered) accrual within the documented 1e-12.

use hpcgrid_core::accrual::BillAccrual;
use hpcgrid_core::billing::{Bill, Precision};
use hpcgrid_core::compiled::CompiledContract;
use hpcgrid_core::contract::{Contract, ContractDelta};
use hpcgrid_core::demand_charge::{DemandBasis, DemandCharge};
use hpcgrid_core::emergency::EmergencyDrClause;
use hpcgrid_core::fleet::{MeterFleet, Sample};
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::{BlockStep, BlockTariff, DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_timeseries::intervals::{Interval, IntervalSet};
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, Money, Month, MonthSet, Power, SimTime,
    TimeOfDay, Weekday,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;

/// Documented relative tolerance of `Precision::Fast`.
const FAST_RTOL: f64 = 1e-12;

/// A load on a random start (second resolution), step, and length — sized
/// for the every-prefix comparison loop.
fn load_strategy() -> impl Strategy<Value = PowerSeries> {
    (
        0u64..40 * 86_400,
        prop::sample::select(vec![900u64, 3_600, 7_200]),
        prop::collection::vec(0.0f64..20_000.0, 1..120),
    )
        .prop_map(|(start, step, kw)| {
            Series::new(
                SimTime::from_secs(start),
                Duration::from_secs(step),
                kw.into_iter().map(Power::from_kilowatts).collect(),
            )
            .unwrap()
        })
}

/// A TOU window with arbitrary edges — wrap-midnight (`to <= from`)
/// included — and a random month filter.
fn window_strategy() -> impl Strategy<Value = TouWindow> {
    (
        (0u8..24, [0u8, 15, 30, 45]),
        (0u8..24, [0u8, 15, 30, 45]),
        0u8..3,
        0u16..0x1000,
        1u32..60,
    )
        .prop_map(
            |((fh, fm), (th, tm), day_sel, month_mask, cents)| TouWindow {
                months: match month_mask % 3 {
                    0 => None,
                    1 => Some(MonthSet::summer()),
                    _ => Some(
                        Month::ALL
                            .iter()
                            .copied()
                            .filter(|m| month_mask & m.bit() != 0)
                            .collect(),
                    ),
                },
                days: match day_sel {
                    0 => DayFilter::All,
                    1 => DayFilter::WeekdaysOnly,
                    _ => DayFilter::WeekendsOnly,
                },
                from: TimeOfDay::new(fh, fm),
                to: TimeOfDay::new(th, tm),
                price: EnergyPrice::per_kilowatt_hour(cents as f64 / 100.0),
            },
        )
}

/// An hourly market-price strip on a random start.
fn strip_strategy() -> impl Strategy<Value = PriceSeries> {
    (
        prop::collection::vec(0.01f64..0.40, 3..30),
        0u64..30 * 86_400,
    )
        .prop_map(|(vals, start)| {
            PriceSeries::new(
                SimTime::from_secs(start),
                Duration::from_hours(1.0),
                vals.into_iter()
                    .map(EnergyPrice::per_kilowatt_hour)
                    .collect(),
            )
            .unwrap()
        })
}

/// A random demand charge: 15-minute or hourly metering, max-peak or
/// top-k basis, optional floor — everything the streaming metering state
/// must replicate.
fn demand_strategy() -> impl Strategy<Value = DemandCharge> {
    (
        5u32..20,
        prop::sample::select(vec![900u64, 3_600]),
        0usize..4,
        0u32..2_000,
    )
        .prop_map(|(price, interval, k, floor)| DemandCharge {
            price: DemandPrice::per_kilowatt_month(price as f64),
            demand_interval: Duration::from_secs(interval),
            basis: if k == 0 {
                DemandBasis::MaxPeak
            } else {
                DemandBasis::TopKAverage(k)
            },
            // Values under the stream's typical peaks double as "no floor".
            floor: (floor >= 100).then(|| Power::from_kilowatts(floor as f64)),
        })
}

/// The full-coverage contract: all four tariff kinds, a random demand
/// charge, a powerband, an emergency clause, and a service fee.
fn rich_contract_strategy() -> impl Strategy<Value = Contract> {
    (
        window_strategy(),
        window_strategy(),
        strip_strategy(),
        demand_strategy(),
        5u32..20,
    )
        .prop_map(|(w1, w2, strip, dc, band_mw)| {
            Contract::builder("accrual-base")
                .tariff(Tariff::TimeOfUse(TouTariff {
                    windows: vec![w1, w2],
                    base: EnergyPrice::per_kilowatt_hour(0.04),
                }))
                .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.03)))
                .tariff(Tariff::dynamic(
                    strip,
                    EnergyPrice::per_kilowatt_hour(0.011),
                    EnergyPrice::per_kilowatt_hour(0.09),
                ))
                .tariff(Tariff::Block(BlockTariff {
                    blocks: vec![
                        BlockStep {
                            up_to_kwh: Some(500_000.0),
                            price: EnergyPrice::per_kilowatt_hour(0.13),
                        },
                        BlockStep {
                            up_to_kwh: None,
                            price: EnergyPrice::per_kilowatt_hour(0.065),
                        },
                    ],
                }))
                .demand_charge(dc)
                .powerband(Powerband::ceiling(
                    Power::from_megawatts(band_mw as f64),
                    EnergyPrice::per_kilowatt_hour(0.5),
                ))
                .emergency(EmergencyDrClause::reference(Power::from_megawatts(9.0)))
                .monthly_fee(Money::from_dollars(750.0))
                .build()
                .unwrap()
        })
}

/// A delta whose accrued state stays valid across `rebind`: fee changes,
/// demand-charge price changes (same metering shape), powerband penalty
/// changes (same corridor), emergency changes, component removals. `sel`
/// picks the variant and `p` its magnitude.
fn rebindable_delta(sel: u8, p: u32, dc: DemandCharge, band_mw: u32) -> ContractDelta {
    match sel % 7 {
        0 => ContractDelta::SetMonthlyFee(Money::from_dollars((p % 2_000) as f64)),
        1 => ContractDelta::SetDemandCharge(Some(DemandCharge {
            price: DemandPrice::per_kilowatt_month((21 + p % 20) as f64),
            ..dc
        })),
        2 => ContractDelta::SetDemandCharge(None),
        3 => ContractDelta::SetPowerband(Some(Powerband::ceiling(
            Power::from_megawatts(band_mw as f64),
            EnergyPrice::per_kilowatt_hour((1 + p % 9) as f64 / 10.0),
        ))),
        4 => ContractDelta::SetPowerband(None),
        5 => ContractDelta::SetEmergency(Some(EmergencyDrClause::reference(
            Power::from_megawatts((1 + p % 9) as f64),
        ))),
        _ => ContractDelta::SetEmergency(None),
    }
}

fn calendars() -> Vec<Calendar> {
    vec![
        Calendar::default(),
        Calendar::new(Weekday::Wednesday, Month::June, 15).unwrap(),
        Calendar::new(Weekday::Sunday, Month::December, 31).unwrap(),
    ]
}

fn compile(cal: &Calendar, contract: &Contract, load: &PowerSeries) -> Arc<CompiledContract> {
    Arc::new(
        CompiledContract::compile(cal, contract, load.start(), load.end())
            .unwrap()
            .with_precision(Precision::BitExact),
    )
}

/// Stream the whole load, asserting finalize-vs-batch bit-identity at
/// every prefix.
fn assert_stream_matches_batch(
    kernel: &Arc<CompiledContract>,
    load: &PowerSeries,
) -> Result<(), TestCaseError> {
    let mut acc = BillAccrual::new(Arc::clone(kernel), load.start(), load.step()).unwrap();
    prop_assert!(acc.finalize().is_err(), "empty stream must not bill");
    for (k, (t, &p)) in load.iter().enumerate() {
        acc.push(t, p).unwrap();
        prop_assert_eq!(
            acc.finalize().unwrap(),
            kernel.bill(&load.prefix(k + 1)).unwrap(),
            "prefix {} diverged",
            k + 1
        );
    }
    Ok(())
}

/// Assert two bills agree line-by-line within the fast-path tolerance.
fn assert_bills_close(exact: &Bill, fast: &Bill) -> Result<(), TestCaseError> {
    prop_assert_eq!(&exact.contract, &fast.contract);
    prop_assert_eq!(exact.items.len(), fast.items.len());
    for (e, f) in exact.items.iter().zip(&fast.items) {
        prop_assert_eq!(&e.label, &f.label);
        let (a, b) = (e.amount.as_dollars(), f.amount.as_dollars());
        let scale = a.abs().max(b.abs()).max(1.0);
        prop_assert!(
            (a - b).abs() <= FAST_RTOL * scale,
            "line item {} diverged: exact {a:e} vs fast {b:e}",
            e.label
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: at every stream prefix, `finalize()` is
    /// bit-identical to the batch bill of that prefix — all four tariff
    /// kinds, random metering shapes and demand bases, powerband,
    /// emergency clause, and fee at once.
    #[test]
    fn accrual_is_bit_identical_at_every_prefix(
        contract in rich_contract_strategy(),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let kernel = compile(&cal, &contract, &load);
        assert_stream_matches_batch(&kernel, &load)?;
    }

    /// Wrap-midnight TOU windows (`to <= from`) stream correctly: the
    /// running segment cursor crosses the midnight split exactly where the
    /// batch timeline does.
    #[test]
    fn wrap_midnight_tou_streams_bit_identically(
        (fh, th) in (12u8..24, 0u8..12),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let contract = Contract::builder("wrap")
            .tariff(Tariff::TimeOfUse(TouTariff {
                windows: vec![TouWindow {
                    months: None,
                    days: DayFilter::All,
                    from: TimeOfDay::new(fh, 0),
                    to: TimeOfDay::new(th, 30), // to <= from: wraps midnight
                    price: EnergyPrice::per_kilowatt_hour(0.22),
                }],
                base: EnergyPrice::per_kilowatt_hour(0.05),
            }))
            .build()
            .unwrap();
        let kernel = compile(&cal, &contract, &load);
        assert_stream_matches_batch(&kernel, &load)?;
    }

    /// Month-straddling streams: the stream starts shortly before a
    /// billing-month boundary and crosses one or more of them, exercising
    /// demand month-close (including the straddling-sample re-feed at
    /// non-step-aligned boundaries), block bucket rollover, and the fee
    /// month count.
    #[test]
    fn month_straddling_stream_is_bit_identical(
        contract in rich_contract_strategy(),
        hours_before in 1u64..72,
        days_after in 1u64..40,
        kw in prop::collection::vec(100.0f64..18_000.0, 1..50),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let boundary = cal.next_month_start(SimTime::EPOCH);
        let hours_before = hours_before.min(boundary.as_secs() / 3_600);
        let start = boundary - Duration::from_hours(hours_before as f64);
        let span_secs = hours_before * 3_600 + days_after * 86_400;
        let step = Duration::from_minutes(15.0);
        let n = (span_secs / step.as_secs()) as usize;
        let values: Vec<Power> = (0..n)
            .map(|i| Power::from_kilowatts(kw[i % kw.len()]))
            .collect();
        let load = Series::new(start, step, values).unwrap();
        prop_assert!(load.start() < boundary && load.end() > boundary);
        let kernel = compile(&cal, &contract, &load);
        let mut acc = BillAccrual::new(Arc::clone(&kernel), load.start(), load.step()).unwrap();
        for (k, (t, &p)) in load.iter().enumerate() {
            acc.push(t, p).unwrap();
            // Every-prefix here would be O(n²) on multi-month streams;
            // check a sliding stride plus the exact boundary neighborhood.
            let near_boundary = t.as_secs().abs_diff(boundary.as_secs()) <= step.as_secs() * 2;
            if k % 97 == 0 || near_boundary || k + 1 == load.len() {
                prop_assert_eq!(
                    acc.finalize().unwrap(),
                    kernel.bill(&load.prefix(k + 1)).unwrap(),
                    "prefix {} diverged",
                    k + 1
                );
            }
        }
    }

    /// Emergency event windows stream bit-identically to
    /// `bill_with_events`, including windows that straddle samples, cover
    /// nothing, or extend past the stream.
    #[test]
    fn event_windows_stream_bit_identically(
        contract in rich_contract_strategy(),
        load in load_strategy(),
        windows in prop::collection::vec((0u64..50 * 86_400, 1u64..12 * 3_600), 0..4),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let kernel = compile(&cal, &contract, &load);
        let events = IntervalSet::from_intervals(
            windows
                .iter()
                .map(|&(s, d)| {
                    Interval::from_duration(SimTime::from_secs(s), Duration::from_secs(d))
                })
                .collect(),
        );
        let mut acc =
            BillAccrual::with_events(Arc::clone(&kernel), load.start(), load.step(), &events)
                .unwrap();
        for (t, &p) in load.iter() {
            acc.push(t, p).unwrap();
        }
        prop_assert_eq!(
            acc.finalize().unwrap(),
            kernel.bill_with_events(&load, &events).unwrap()
        );
    }

    /// Mid-stream rebind: after `k` samples the contract is patched with an
    /// accrual-preserving delta; the stream rebinds onto the patched kernel
    /// without replay, and its finalize equals the batch bill of the *whole*
    /// stream under the patched kernel.
    #[test]
    fn rebind_matches_batch_under_patched_kernel(
        dc in demand_strategy(),
        band_mw in 5u32..20,
        window in window_strategy(),
        strip in strip_strategy(),
        delta_sel in 0u8..7,
        delta_p in 0u32..10_000,
        load in load_strategy(),
        split_frac in 0.0f64..1.0,
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let contract = Contract::builder("rebind-base")
            .tariff(Tariff::TimeOfUse(TouTariff {
                windows: vec![window],
                base: EnergyPrice::per_kilowatt_hour(0.04),
            }))
            .tariff(Tariff::dynamic(
                strip,
                EnergyPrice::per_kilowatt_hour(0.011),
                EnergyPrice::per_kilowatt_hour(0.09),
            ))
            .demand_charge(dc)
            .powerband(Powerband::ceiling(
                Power::from_megawatts(band_mw as f64),
                EnergyPrice::per_kilowatt_hour(0.5),
            ))
            .emergency(EmergencyDrClause::reference(Power::from_megawatts(9.0)))
            .monthly_fee(Money::from_dollars(400.0))
            .build()
            .unwrap();
        let delta = rebindable_delta(delta_sel, delta_p, dc, band_mw);
        let kernel = compile(&cal, &contract, &load);
        let patched = Arc::new(kernel.patch(&delta).unwrap());
        let split = ((load.len() as f64 * split_frac) as usize).min(load.len());
        let mut acc = BillAccrual::new(Arc::clone(&kernel), load.start(), load.step()).unwrap();
        for (k, (t, &p)) in load.iter().enumerate() {
            if k == split {
                acc.rebind(Arc::clone(&patched)).unwrap();
            }
            acc.push(t, p).unwrap();
        }
        if split == load.len() {
            acc.rebind(Arc::clone(&patched)).unwrap();
        }
        prop_assert_eq!(acc.finalize().unwrap(), patched.bill(&load).unwrap());
    }

    /// Snapshot/restore round-trip: the snapshot survives serde_json
    /// byte-identically, and a restored accrual continues bit-identically
    /// to the original — same bills at finalize, same subsequent snapshots.
    #[test]
    fn snapshot_restore_continues_bit_identically(
        contract in rich_contract_strategy(),
        load in load_strategy(),
        split_frac in 0.0f64..1.0,
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let kernel = compile(&cal, &contract, &load);
        let split = ((load.len() as f64 * split_frac) as usize).min(load.len());
        let mut original =
            BillAccrual::new(Arc::clone(&kernel), load.start(), load.step()).unwrap();
        for (t, &p) in load.iter().take(split) {
            original.push(t, p).unwrap();
        }
        let snap = original.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let decoded: hpcgrid_core::accrual::AccrualSnapshot =
            serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&decoded, &snap);
        let mut restored = BillAccrual::restore(Arc::clone(&kernel), &decoded).unwrap();
        prop_assert_eq!(restored.samples(), original.samples());
        for (t, &p) in load.iter().skip(split) {
            original.push(t, p).unwrap();
            restored.push(t, p).unwrap();
        }
        if original.samples() > 0 {
            prop_assert_eq!(original.finalize().unwrap(), restored.finalize().unwrap());
        }
        prop_assert_eq!(original.snapshot(), restored.snapshot());
    }

    /// `Precision::Fast` batch bills agree with the accrual (which always
    /// accumulates in the bit-exact order) within the documented tolerance.
    #[test]
    fn fast_mode_agrees_within_tolerance(
        contract in rich_contract_strategy(),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let fast = Arc::new(
            CompiledContract::compile(&cal, &contract, load.start(), load.end())
                .unwrap()
                .with_precision(Precision::Fast),
        );
        let mut acc = BillAccrual::new(Arc::clone(&fast), load.start(), load.step()).unwrap();
        for (t, &p) in load.iter() {
            acc.push(t, p).unwrap();
        }
        assert_bills_close(&acc.finalize().unwrap(), &fast.bill(&load).unwrap())?;
    }

    /// Fleet bills are bit-identical to per-meter batch bills for ANY shard
    /// count, and identical across shard counts — sharding is pure
    /// deployment tuning.
    #[test]
    fn fleet_bills_match_batch_for_any_shard_count(
        contract in rich_contract_strategy(),
        loads in prop::collection::vec(
            prop::collection::vec(0.0f64..20_000.0, 24..60),
            2..6,
        ),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let step = Duration::from_minutes(15.0);
        let start = SimTime::from_secs(86_400);
        let n = loads.iter().map(|l| l.len()).min().unwrap();
        let series: Vec<PowerSeries> = loads
            .iter()
            .map(|kw| {
                Series::new(
                    start,
                    step,
                    kw[..n].iter().map(|&k| Power::from_kilowatts(k)).collect(),
                )
                .unwrap()
            })
            .collect();
        let end = start + step * n as u64;
        let kernel = Arc::new(
            CompiledContract::compile(&cal, &contract, start, end)
                .unwrap()
                .with_precision(Precision::BitExact),
        );
        let expected: Vec<Bill> = series.iter().map(|s| kernel.bill(s).unwrap()).collect();
        let mut all_bills = Vec::new();
        for shards in [1usize, 3, 16] {
            let mut fleet = MeterFleet::with_shards(cal, start, end, shards);
            // register_compiled pins the BitExact kernel so the equality
            // holds under a forced-fast HPCGRID_PRECISION environment too.
            let ids: Vec<_> = series
                .iter()
                .map(|_| {
                    fleet
                        .register_compiled(Arc::clone(&kernel), start, step)
                        .unwrap()
                })
                .collect();
            for tick in 0..n {
                let samples: Vec<Sample> = ids
                    .iter()
                    .zip(&series)
                    .map(|(&meter, s)| Sample {
                        meter,
                        power: s.values()[tick],
                    })
                    .collect();
                fleet.advance_tick(&samples).unwrap();
            }
            let bills: Vec<Bill> = fleet
                .finalize_all()
                .unwrap()
                .into_iter()
                .map(|(_, b)| b)
                .collect();
            prop_assert_eq!(&bills, &expected, "shard count {} diverged", shards);
            prop_assert_eq!(fleet.stats().contracts, 1);
            prop_assert_eq!(fleet.stats().kernel_misses, 1);
            all_bills.push(bills);
        }
        prop_assert_eq!(&all_bills[0], &all_bills[1]);
        prop_assert_eq!(&all_bills[0], &all_bills[2]);
    }
}

/// Non-accrual-preserving deltas are rejected by `rebind`, leaving the
/// meter untouched: tariff replacements, metering-shape changes, corridor
/// moves, and adding a stateful component mid-stream.
#[test]
fn non_rebindable_deltas_error() {
    let cal = Calendar::default();
    let contract = Contract::builder("strict")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.05)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0)))
        .build()
        .unwrap();
    let start = SimTime::EPOCH;
    let end = SimTime::from_days(30);
    let step = Duration::from_minutes(15.0);
    let kernel = Arc::new(CompiledContract::compile(&cal, &contract, start, end).unwrap());
    let mut acc = BillAccrual::new(Arc::clone(&kernel), start, step).unwrap();
    for _ in 0..10 {
        acc.push_next(Power::from_megawatts(5.0)).unwrap();
    }
    let before = acc.finalize().unwrap();
    let rejected = [
        // Re-pricing history: different tariff fingerprint.
        ContractDelta::ReplaceTariff {
            index: 0,
            tariff: Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.06)),
        },
        // Metering-shape change: different demand interval.
        ContractDelta::SetDemandCharge(Some(DemandCharge {
            demand_interval: Duration::from_hours(1.0),
            ..DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0))
        })),
        // Basis change.
        ContractDelta::SetDemandCharge(Some(DemandCharge {
            basis: DemandBasis::TopKAverage(3),
            ..DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0))
        })),
        // Adding a powerband mid-stream: excursions were never measured.
        ContractDelta::SetPowerband(Some(Powerband::ceiling(
            Power::from_megawatts(6.0),
            EnergyPrice::per_kilowatt_hour(0.5),
        ))),
    ];
    for delta in &rejected {
        let patched = Arc::new(kernel.patch(delta).unwrap());
        let mut probe = acc.clone();
        assert!(
            probe.rebind(patched).is_err(),
            "delta {delta:?} must be rejected"
        );
    }
    // A failed probe never perturbs the accrual.
    assert_eq!(acc.finalize().unwrap(), before);
    // A same-shape kernel with a different horizon is rejected too.
    let other = Arc::new(
        CompiledContract::compile(&cal, &contract, start, SimTime::from_days(60)).unwrap(),
    );
    assert!(acc.clone().rebind(other).is_err());
}

/// Fleet-level mid-stream patch: the meter re-shards onto the patched
/// kernel and keeps streaming; its bill matches the patched batch while an
/// unpatched neighbor under the original contract is unaffected.
#[test]
fn fleet_apply_delta_reshards_and_continues() {
    let cal = Calendar::default();
    let contract = Contract::builder("fleet-delta")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.05)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0)))
        .monthly_fee(Money::from_dollars(100.0))
        .build()
        .unwrap();
    let start = SimTime::EPOCH;
    let end = SimTime::from_days(45);
    let step = Duration::from_hours(1.0);
    let n = 40 * 24usize;
    let kernel = Arc::new(
        CompiledContract::compile(&cal, &contract, start, end)
            .unwrap()
            .with_precision(Precision::BitExact),
    );
    let mut fleet = MeterFleet::with_shards(cal, start, end, 4);
    let a = fleet
        .register_compiled(Arc::clone(&kernel), start, step)
        .unwrap();
    let b = fleet
        .register_compiled(Arc::clone(&kernel), start, step)
        .unwrap();
    let load_a: PowerSeries = Series::from_fn(start, step, n, |t| {
        Power::from_kilowatts(4_000.0 + (t.as_secs() % 7_200) as f64)
    })
    .unwrap();
    let load_b: PowerSeries = Series::constant(start, step, Power::from_megawatts(2.5), n).unwrap();
    let delta = ContractDelta::SetMonthlyFee(Money::from_dollars(900.0));
    let split = n / 2;
    for tick in 0..n {
        if tick == split {
            fleet.apply_delta(a, &delta).unwrap();
        }
        fleet
            .advance_tick(&[
                Sample {
                    meter: a,
                    power: load_a.values()[tick],
                },
                Sample {
                    meter: b,
                    power: load_b.values()[tick],
                },
            ])
            .unwrap();
    }
    let stats = fleet.stats();
    assert_eq!(stats.contracts, 2, "patched meter must get its own kernel");
    assert_eq!(stats.meters, 2);
    assert_eq!(stats.samples, 2 * n as u64);
    let patched = kernel.patch(&delta).unwrap();
    assert_eq!(fleet.finalize(a).unwrap(), patched.bill(&load_a).unwrap());
    assert_eq!(fleet.finalize(b).unwrap(), kernel.bill(&load_b).unwrap());
    // Snapshot/restore through the fleet: byte-identical continuation.
    let snap = fleet.snapshot(b).unwrap();
    fleet.restore(b, &snap).unwrap();
    assert_eq!(fleet.finalize(b).unwrap(), kernel.bill(&load_b).unwrap());
    // A non-rebindable delta is rejected and leaves the meter in place.
    let bad = ContractDelta::ReplaceTariff {
        index: 0,
        tariff: Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.09)),
    };
    assert!(fleet.apply_delta(b, &bad).is_err());
    assert_eq!(fleet.finalize(b).unwrap(), kernel.bill(&load_b).unwrap());
}
