//! Property-based tests for the contract/billing invariants (DESIGN.md §5).

use hpcgrid_core::billing::BillingEngine;
use hpcgrid_core::contract::Contract;
use hpcgrid_core::demand_charge::{DemandBasis, DemandCharge};
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::Tariff;
use hpcgrid_timeseries::series::{PowerSeries, Series};
use hpcgrid_units::{Calendar, DemandPrice, Duration, EnergyPrice, Money, Power, SimTime};
use proptest::prelude::*;

fn load_strategy() -> impl Strategy<Value = PowerSeries> {
    prop::collection::vec(0.0f64..20_000.0, 1..400).prop_map(|kw| {
        Series::new(
            SimTime::EPOCH,
            Duration::from_minutes(15.0),
            kw.into_iter().map(Power::from_kilowatts).collect(),
        )
        .unwrap()
    })
}

fn engine() -> BillingEngine {
    BillingEngine::new(Calendar::default())
}

proptest! {
    /// A fixed-tariff bill equals energy × price exactly.
    #[test]
    fn fixed_bill_is_energy_times_price(load in load_strategy(), cents in 1u32..50) {
        let price = EnergyPrice::per_kilowatt_hour(cents as f64 / 100.0);
        let c = Contract::builder("p").tariff(Tariff::fixed(price)).build().unwrap();
        let bill = engine().bill(&c, &load).unwrap();
        let expected = load.total_energy().as_kilowatt_hours() * price.as_dollars_per_kilowatt_hour();
        prop_assert!((bill.total().as_dollars() - expected).abs() <= 1e-6 * expected.abs().max(1.0));
    }

    /// Billing is monotone: scaling the load up never lowers any bill
    /// component (tariff, demand charge, or ceiling-band penalty).
    #[test]
    fn billing_monotone_in_load(load in load_strategy(), scale in 1.0f64..3.0) {
        let c = Contract::builder("m")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .powerband(Powerband::ceiling(
                Power::from_megawatts(5.0),
                EnergyPrice::per_kilowatt_hour(0.35),
            ))
            .build()
            .unwrap();
        let e = engine();
        let b1 = e.bill(&c, &load).unwrap();
        let b2 = e.bill(&c, &load.scale(scale)).unwrap();
        prop_assert!(b2.total() >= b1.total() - Money::from_dollars(1e-9));
        prop_assert!(b2.energy_cost() >= b1.energy_cost() - Money::from_dollars(1e-9));
        prop_assert!(b2.demand_cost() >= b1.demand_cost() - Money::from_dollars(1e-9));
    }

    /// The bill decomposes exactly: total = sum of line items.
    #[test]
    fn bill_decomposition_is_exact(load in load_strategy()) {
        let c = Contract::builder("d")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
            .tariff(Tariff::day_night(
                EnergyPrice::per_kilowatt_hour(0.02),
                EnergyPrice::ZERO,
            ))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .monthly_fee(Money::from_dollars(100.0))
            .build()
            .unwrap();
        let bill = engine().bill(&c, &load).unwrap();
        let sum: f64 = bill.items.iter().map(|i| i.amount.as_dollars()).sum();
        prop_assert!((bill.total().as_dollars() - sum).abs() < 1e-9);
    }

    /// Demand charge is invariant under permutation of intervals *within*
    /// one billing month (it depends only on the max).
    #[test]
    fn demand_charge_permutation_invariant(
        mut kw in prop::collection::vec(0.0f64..20_000.0, 2..96),
        seed in 0u64..1000
    ) {
        let cal = Calendar::default();
        let dc = DemandCharge {
            demand_interval: Duration::from_minutes(15.0),
            ..DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0))
        };
        let mk = |kw: &[f64]| {
            Series::new(
                SimTime::EPOCH,
                Duration::from_minutes(15.0),
                kw.iter().map(|k| Power::from_kilowatts(*k)).collect(),
            )
            .unwrap()
        };
        let before = dc.total(&cal, &mk(&kw)).unwrap();
        // Deterministic shuffle.
        let n = kw.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            kw.swap(i, j);
        }
        let after = dc.total(&cal, &mk(&kw)).unwrap();
        prop_assert!((before.as_dollars() - after.as_dollars()).abs() < 1e-9);
    }

    /// Top-k-average demand never exceeds max-peak demand.
    #[test]
    fn top_k_is_dominated_by_max(load in load_strategy(), k in 1usize..5) {
        let cal = Calendar::default();
        let max_dc = DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0));
        let topk_dc = DemandCharge {
            basis: DemandBasis::TopKAverage(k),
            ..max_dc
        };
        let max_total = max_dc.total(&cal, &load).unwrap();
        let topk_total = topk_dc.total(&cal, &load).unwrap();
        prop_assert!(topk_total <= max_total + Money::from_dollars(1e-9));
    }

    /// Powerband: zero cost inside the band; clipping at the ceiling can
    /// only reduce the penalty; penalty grows with excursion scale.
    #[test]
    fn powerband_invariants(load in load_strategy(), width_pct in 5.0f64..60.0) {
        let nominal = load.mean_power().unwrap();
        prop_assume!(nominal > Power::ZERO);
        let band = Powerband::symmetric(
            nominal,
            nominal * (width_pct / 100.0),
            EnergyPrice::per_kilowatt_hour(0.35),
        );
        let report = band.evaluate(&load).unwrap();
        // Clipped load never costs more on the ceiling side.
        let clipped = load.clip_max(band.upper);
        let clipped_report = band.evaluate(&clipped).unwrap();
        prop_assert!(clipped_report.over_energy <= report.over_energy);
        // A load fully inside the band costs zero.
        let inside = load.map(|_| nominal);
        prop_assert_eq!(band.penalty_cost(&inside).unwrap(), Money::ZERO);
    }

    /// TOU price lookup is total: every timestamp gets exactly one price,
    /// and materialized strips agree with point lookups.
    #[test]
    fn tou_price_series_consistent(hours in 1usize..200) {
        let cal = Calendar::default();
        let t = Tariff::day_night(
            EnergyPrice::per_kilowatt_hour(0.2),
            EnergyPrice::per_kilowatt_hour(0.05),
        );
        let strip = t
            .price_series(&cal, SimTime::EPOCH, Duration::from_hours(1.0), hours)
            .unwrap();
        for (ts, p) in strip.iter() {
            prop_assert_eq!(*p, t.price_at(&cal, ts));
        }
    }

    /// Emergency assessments never charge more than events × penalty.
    #[test]
    fn emergency_penalty_bounded(load in load_strategy(), n_events in 0usize..5) {
        use hpcgrid_core::emergency::EmergencyDrClause;
        use hpcgrid_timeseries::intervals::{Interval, IntervalSet};
        let clause = EmergencyDrClause::reference(Power::from_megawatts(1.0));
        let step = load.step();
        let events = IntervalSet::from_intervals(
            (0..n_events)
                .map(|i| {
                    let start = load.start() + step * (i as u64 * 7);
                    Interval::from_duration(start, step * 2)
                })
                .collect(),
        );
        let a = clause.assess(&load, &events).unwrap();
        let cap = clause.penalty_per_event * events.intervals().len() as f64;
        prop_assert!(a.total_penalty <= cap + Money::from_dollars(1e-9));
        prop_assert!(a.total_penalty >= Money::ZERO);
    }
}
