//! Property tests: the compiled billing kernel is **bit-identical** to the
//! interpreted `BillingEngine` path.
//!
//! `Bill` derives `PartialEq` over `Money` (exact `f64` comparison), so
//! `prop_assert_eq!(interpreted, compiled)` demands equality down to the last
//! bit of every line item — not approximate agreement. The two known-tricky
//! lowering cases called out in DESIGN.md get dedicated properties:
//! wrap-midnight TOU windows (`to <= from`) and loads that straddle
//! billing-month boundaries.

use hpcgrid_core::billing::BillingEngine;
use hpcgrid_core::compiled::CompiledContract;
use hpcgrid_core::contract::Contract;
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::tariff::{BlockStep, BlockTariff, DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, Money, Month, MonthSet, Power, SimTime,
    TimeOfDay, Weekday,
};
use proptest::prelude::*;

/// A load on a random start (second resolution), step, and length.
fn load_strategy() -> impl Strategy<Value = PowerSeries> {
    (
        0u64..40 * 86_400,
        prop::sample::select(vec![900u64, 3_600, 7_200]),
        prop::collection::vec(0.0f64..20_000.0, 1..500),
    )
        .prop_map(|(start, step, kw)| {
            Series::new(
                SimTime::from_secs(start),
                Duration::from_secs(step),
                kw.into_iter().map(Power::from_kilowatts).collect(),
            )
            .unwrap()
        })
}

/// A TOU window with arbitrary edges — wrap-midnight (`to <= from`)
/// included — and a random month filter.
fn window_strategy() -> impl Strategy<Value = TouWindow> {
    (
        (0u8..24, [0u8, 15, 30, 45]),
        (0u8..24, [0u8, 15, 30, 45]),
        0u8..3,
        0u16..0x1000,
        1u32..60,
    )
        .prop_map(
            |((fh, fm), (th, tm), day_sel, month_mask, cents)| TouWindow {
                months: match month_mask % 3 {
                    0 => None,
                    1 => Some(MonthSet::summer()),
                    _ => Some(
                        Month::ALL
                            .iter()
                            .copied()
                            .filter(|m| month_mask & m.bit() != 0)
                            .collect(),
                    ),
                },
                days: match day_sel {
                    0 => DayFilter::All,
                    1 => DayFilter::WeekdaysOnly,
                    _ => DayFilter::WeekendsOnly,
                },
                from: TimeOfDay::new(fh, fm),
                to: TimeOfDay::new(th, tm),
                price: EnergyPrice::per_kilowatt_hour(cents as f64 / 100.0),
            },
        )
}

/// A contract mixing every tariff kind plus demand charge and fee, with the
/// mix chosen by `sel` bits.
fn contract_strategy() -> impl Strategy<Value = Contract> {
    (
        window_strategy(),
        window_strategy(),
        1u32..40,
        0u8..8,
        prop::collection::vec(0.01f64..0.40, 3..20),
        0u64..30 * 86_400,
    )
        .prop_map(|(w1, w2, base_cents, sel, strip, strip_start)| {
            let mut b = Contract::builder("prop").tariff(Tariff::TimeOfUse(TouTariff {
                windows: vec![w1, w2],
                base: EnergyPrice::per_kilowatt_hour(base_cents as f64 / 100.0),
            }));
            if sel & 1 != 0 {
                b = b.tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.03)));
            }
            if sel & 2 != 0 {
                let prices = PriceSeries::new(
                    SimTime::from_secs(strip_start),
                    Duration::from_hours(1.0),
                    strip
                        .iter()
                        .map(|p| EnergyPrice::per_kilowatt_hour(*p))
                        .collect(),
                )
                .unwrap();
                b = b.tariff(Tariff::dynamic(
                    prices,
                    EnergyPrice::per_kilowatt_hour(0.011),
                    EnergyPrice::per_kilowatt_hour(0.09),
                ));
            }
            if sel & 4 != 0 {
                b = b
                    .tariff(Tariff::Block(BlockTariff {
                        blocks: vec![
                            BlockStep {
                                up_to_kwh: Some(500_000.0),
                                price: EnergyPrice::per_kilowatt_hour(0.13),
                            },
                            BlockStep {
                                up_to_kwh: None,
                                price: EnergyPrice::per_kilowatt_hour(0.065),
                            },
                        ],
                    }))
                    .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(11.0)))
                    .monthly_fee(Money::from_dollars(750.0));
            }
            b.build().unwrap()
        })
}

fn calendars() -> Vec<Calendar> {
    vec![
        Calendar::default(),
        Calendar::new(Weekday::Wednesday, Month::June, 15).unwrap(),
        Calendar::new(Weekday::Sunday, Month::December, 31).unwrap(),
    ]
}

proptest! {
    /// Core equivalence: for randomized contracts, loads, and calendars, the
    /// compiled kernel's bill equals the interpreted bill bit-for-bit.
    #[test]
    fn compiled_bill_is_bit_identical(
        contract in contract_strategy(),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let engine = BillingEngine::new(cal);
        let interpreted = engine.bill(&contract, &load).unwrap();
        let compiled = CompiledContract::compile(&cal, &contract, load.start(), load.end())
            .unwrap()
            .bill(&load)
            .unwrap();
        prop_assert_eq!(interpreted, compiled);
    }

    /// A compiled horizon wider than the load must not change the bill:
    /// the same contract compiled over a year bills a mid-horizon load
    /// identically to the interpreter.
    #[test]
    fn wide_horizon_is_bit_identical(
        contract in contract_strategy(),
        load in load_strategy(),
    ) {
        let cal = Calendar::default();
        let engine = BillingEngine::new(cal);
        let compiled = CompiledContract::compile(
            &cal,
            &contract,
            SimTime::EPOCH,
            SimTime::from_days(400),
        )
        .unwrap();
        prop_assert_eq!(
            engine.bill(&contract, &load).unwrap(),
            compiled.bill(&load).unwrap()
        );
    }

    /// Wrap-midnight TOU windows (`to <= from`), the first known-tricky
    /// lowering case: window membership is split across the day boundary.
    #[test]
    fn wrap_midnight_tou_is_bit_identical(
        from_h in 12u8..24,
        to_h in 0u8..12,
        kw in prop::collection::vec(0.0f64..15_000.0, 24..400),
        start_hours in 0u64..200,
    ) {
        let window = TouWindow {
            months: None,
            days: DayFilter::All,
            from: TimeOfDay::new(from_h, 30),
            to: TimeOfDay::new(to_h, 30),
            price: EnergyPrice::per_kilowatt_hour(0.031),
        };
        // to <= from by construction: the window wraps midnight.
        prop_assert!(window.to <= window.from);
        let contract = Contract::builder("wrap")
            .tariff(Tariff::TimeOfUse(TouTariff {
                windows: vec![window],
                base: EnergyPrice::per_kilowatt_hour(0.12),
            }))
            .build()
            .unwrap();
        let load = Series::new(
            SimTime::from_secs(start_hours * 3_600),
            Duration::from_minutes(15.0),
            kw.into_iter().map(Power::from_kilowatts).collect(),
        )
        .unwrap();
        let cal = Calendar::default();
        let engine = BillingEngine::new(cal);
        let compiled = CompiledContract::compile(&cal, &contract, load.start(), load.end())
            .unwrap();
        prop_assert_eq!(
            engine.bill(&contract, &load).unwrap(),
            compiled.bill(&load).unwrap()
        );
    }

    /// Loads straddling billing-month boundaries, the second known-tricky
    /// case: the load starts shortly before a month boundary and spans one
    /// or more of them, exercising demand-charge bucketing, block-tariff
    /// bucketing, and the fee month count against the boundary index.
    #[test]
    fn month_straddling_load_is_bit_identical(
        hours_before in 1u64..72,
        days_after in 1u64..70,
        kw in prop::collection::vec(100.0f64..18_000.0, 1..50),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        // First month boundary after t=0 under this calendar; clamp the
        // look-back so the start never precedes t=0 (the boundary can be as
        // little as one day after the epoch).
        let boundary = cal.next_month_start(SimTime::EPOCH);
        let hours_before = hours_before.min(boundary.as_secs() / 3_600);
        let start = boundary - Duration::from_hours(hours_before as f64);
        let span_secs = hours_before * 3_600 + days_after * 86_400;
        let step = Duration::from_minutes(15.0);
        let n = (span_secs / step.as_secs()) as usize;
        let values: Vec<Power> = (0..n)
            .map(|i| Power::from_kilowatts(kw[i % kw.len()]))
            .collect();
        let load = Series::new(start, step, values).unwrap();
        prop_assert!(load.start() < boundary && load.end() > boundary);
        let contract = Contract::builder("straddle")
            .tariff(Tariff::Block(BlockTariff {
                blocks: vec![
                    BlockStep {
                        up_to_kwh: Some(800_000.0),
                        price: EnergyPrice::per_kilowatt_hour(0.14),
                    },
                    BlockStep {
                        up_to_kwh: None,
                        price: EnergyPrice::per_kilowatt_hour(0.07),
                    },
                ],
            }))
            .tariff(Tariff::TimeOfUse(TouTariff::summer_peak(
                EnergyPrice::per_kilowatt_hour(0.29),
                EnergyPrice::per_kilowatt_hour(0.06),
            )))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .monthly_fee(Money::from_dollars(1_000.0))
            .build()
            .unwrap();
        let engine = BillingEngine::new(cal);
        let compiled = CompiledContract::compile(&cal, &contract, load.start(), load.end())
            .unwrap();
        prop_assert_eq!(
            engine.bill(&contract, &load).unwrap(),
            compiled.bill(&load).unwrap()
        );
    }

    /// `bill_many` (compile once + parallel fan-out) equals billing each load
    /// sequentially with the interpreter, bit for bit and in order.
    #[test]
    fn bill_many_is_bit_identical(
        contract in contract_strategy(),
        base in load_strategy(),
        scales in prop::collection::vec(0.1f64..3.0, 1..8),
    ) {
        let cal = Calendar::default();
        let engine = BillingEngine::new(cal);
        let loads: Vec<PowerSeries> = scales.iter().map(|s| base.scale(*s)).collect();
        let batch = engine.bill_many(&contract, &loads).unwrap();
        prop_assert_eq!(batch.len(), loads.len());
        for (load, bill) in loads.iter().zip(&batch) {
            prop_assert_eq!(&engine.bill(&contract, load).unwrap(), bill);
        }
    }
}
