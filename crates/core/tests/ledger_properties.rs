//! Property tests for the event-sourced contract ledger (DESIGN.md §5,
//! invariant 7): replaying any event prefix — under any idempotent-retry
//! reordering of duplicate appends — hydrates to a bit-identical contract
//! and bill, and as-of billing across an effective date equals billing the
//! pre-/post-event slices separately with their respective hydrated
//! kernels.

use std::sync::Arc;

use hpcgrid_core::accrual::BillAccrual;
use hpcgrid_core::billing::{Bill, Precision};
use hpcgrid_core::compiled::CompiledContract;
use hpcgrid_core::contract::{Contract, ContractDelta};
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::fleet::{MeterFleet, Sample};
use hpcgrid_core::ledger::{ContractLedger, EventPayload, LedgerEvent};
use hpcgrid_core::tariff::Tariff;
use hpcgrid_core::CoreError;
use hpcgrid_timeseries::series::{PowerSeries, Series};
use hpcgrid_units::{Calendar, DemandPrice, Duration, EnergyPrice, Money, Power, SimTime};
use proptest::prelude::*;

const DAYS: u64 = 8;
const STEP_MIN: f64 = 15.0;
const SAMPLES_PER_DAY: usize = 96;

fn base_contract() -> Contract {
    Contract::builder("ledgered")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.06)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(10.0)))
        .monthly_fee(Money::from_dollars(500.0))
        .build()
        .unwrap()
}

fn ledger() -> ContractLedger {
    ContractLedger::new(
        Calendar::default(),
        SimTime::EPOCH,
        SimTime::from_days(DAYS),
    )
}

/// A steady-ish load over the full horizon on the 15-minute grid.
fn load(kilowatts: &[f64]) -> PowerSeries {
    Series::new(
        SimTime::EPOCH,
        Duration::from_minutes(STEP_MIN),
        kilowatts
            .iter()
            .copied()
            .map(Power::from_kilowatts)
            .collect(),
    )
    .unwrap()
}

fn load_strategy() -> impl Strategy<Value = PowerSeries> {
    prop::collection::vec(
        0.0f64..20_000.0,
        (DAYS as usize) * SAMPLES_PER_DAY..=(DAYS as usize) * SAMPLES_PER_DAY,
    )
    .prop_map(|kw| load(&kw))
}

/// Fee amendments with distinct cent values, one per day from day 1 on —
/// every event changes the contract fingerprint.
fn fee_events(cents: &[u32]) -> Vec<(ContractDelta, String, SimTime)> {
    cents
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            (
                ContractDelta::SetMonthlyFee(Money::from_dollars(c as f64)),
                format!("amend-{i}"),
                SimTime::from_days(1 + i as u64),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hydrating any revision replays exactly the event prefix: the ledger's
    /// `hydrate_at` equals a manual `Contract::apply` fold, and the kernel it
    /// serves bills bit-identically to a fresh compile of that contract.
    #[test]
    fn prefix_replay_hydrates_bit_identically(
        cents in prop::collection::vec(1u32..2_000, 1..6),
        kw in prop::collection::vec(0.0f64..20_000.0, SAMPLES_PER_DAY..4 * SAMPLES_PER_DAY),
    ) {
        let mut ledger = ledger();
        let id = ledger.create(base_contract(), "created", SimTime::EPOCH).unwrap();
        let mut manual = vec![base_contract()];
        for (delta, key, effective) in fee_events(&cents) {
            let next = manual.last().unwrap().apply(&delta).unwrap();
            manual.push(next);
            ledger.append(id, delta, &key, effective).unwrap();
        }

        let probe = load(&kw);
        for (rev, expected) in manual.iter().enumerate() {
            let hydrated = ledger.hydrate_at(id, rev as u64).unwrap();
            prop_assert_eq!(&hydrated, expected);

            // Same compile path on both sides (ledger cache vs by-hand), so
            // the bills must agree bit for bit at any ambient precision.
            let (start, end) = ledger.horizon();
            let fresh = CompiledContract::compile(ledger.calendar(), expected, start, end).unwrap();
            let served = ledger.kernel_at(id, rev as u64).unwrap();
            prop_assert_eq!(served.bill(&probe).unwrap(), fresh.bill(&probe).unwrap());
        }
    }

    /// Duplicate appends are idempotent no-ops wherever they land: a stream
    /// peppered with retries of earlier events is event-for-event identical
    /// to the clean stream, and bills identically as-of any load.
    #[test]
    fn duplicate_appends_are_idempotent_under_retry_reordering(
        cents in prop::collection::vec(1u32..2_000, 2..6),
        retries in prop::collection::vec((0usize..6, 0usize..6), 0..12),
        probe in load_strategy(),
    ) {
        let events = fee_events(&cents);

        let mut clean = ledger();
        let clean_id = clean.create(base_contract(), "created", SimTime::EPOCH).unwrap();
        for (delta, key, effective) in events.clone() {
            clean.append(clean_id, delta, &key, effective).unwrap();
        }

        // The noisy ledger replays the same appends, but after the i-th
        // append it may retry any already-appended event (same key, same
        // payload — a client resending after a lost acknowledgement).
        let mut noisy = ledger();
        let noisy_id = noisy.create(base_contract(), "created", SimTime::EPOCH).unwrap();
        for (i, (delta, key, effective)) in events.iter().cloned().enumerate() {
            noisy.append(noisy_id, delta, &key, effective).unwrap();
            for &(at, which) in &retries {
                if at == i && which <= i {
                    let (d, k, e) = events[which].clone();
                    let outcome = noisy.append(noisy_id, d, &k, e).unwrap();
                    prop_assert!(!outcome.applied, "a retry must be a no-op");
                    prop_assert_eq!(outcome.revision, which as u64 + 1);
                }
            }
        }

        prop_assert_eq!(noisy.events(noisy_id).unwrap(), clean.events(clean_id).unwrap());
        prop_assert_eq!(
            noisy.head_contract(noisy_id).unwrap(),
            clean.head_contract(clean_id).unwrap()
        );
        prop_assert_eq!(
            noisy.bill_as_of(noisy_id, &probe).unwrap(),
            clean.bill_as_of(clean_id, &probe).unwrap()
        );
    }

    /// The acceptance property: billing a horizon containing a mid-horizon
    /// ledger event is bit-identical to billing the pre-/post-event slices
    /// separately with their respective hydrated kernels.
    #[test]
    fn as_of_splice_equals_manual_slice_billing(
        probe in load_strategy(),
        cut_q in 1usize..(DAYS as usize * SAMPLES_PER_DAY),
        new_rate in 1u32..50,
    ) {
        let cut = SimTime::from_secs(cut_q as u64 * (STEP_MIN as u64) * 60);
        let mut ledger = ledger();
        let id = ledger.create(base_contract(), "created", SimTime::EPOCH).unwrap();
        let delta = ContractDelta::ReplaceTariff {
            index: 0,
            tariff: Tariff::fixed(EnergyPrice::per_kilowatt_hour(new_rate as f64 / 100.0)),
        };
        ledger.append(id, delta, "renegotiated", cut).unwrap();

        let asof = ledger.bill_as_of(id, &probe).unwrap();
        prop_assert_eq!(asof.revisions(), vec![0, 1]);

        let (start, end) = ledger.horizon();
        let before = ledger
            .kernel_at(id, 0)
            .unwrap()
            .bill(&probe.slice_time(start, cut))
            .unwrap();
        let after = ledger
            .kernel_at(id, 1)
            .unwrap()
            .bill(&probe.slice_time(cut, end))
            .unwrap();
        prop_assert_eq!(&asof.slices[0].bill, &before);
        prop_assert_eq!(&asof.slices[1].bill, &after);
        prop_assert_eq!(asof.fold(), Bill::fold([&before, &after]).unwrap());
    }

    /// A streamed accrual that takes a ledger event mid-stream via
    /// `rebind_at` — with a snapshot/restore cycle straddling the event —
    /// finalizes bit-identically to folding the manual per-slice batch
    /// bills.
    #[test]
    fn accrual_survives_snapshot_across_a_ledger_event(
        kw in prop::collection::vec(0.0f64..20_000.0, 2 * SAMPLES_PER_DAY..4 * SAMPLES_PER_DAY),
        cut_frac in 0.2f64..0.8,
        snap_off in 1usize..SAMPLES_PER_DAY,
    ) {
        let probe = load(&kw);
        let cut_q = ((kw.len() as f64 * cut_frac) as usize).max(1);
        let cut = SimTime::from_secs(cut_q as u64 * (STEP_MIN as u64) * 60);

        let mut ledger = ledger();
        let id = ledger.create(base_contract(), "created", SimTime::EPOCH).unwrap();
        let delta = ContractDelta::SetMonthlyFee(Money::from_dollars(750.0));
        ledger.append(id, delta, "fee-hike", cut).unwrap();

        // Pin bit-exact on both sides: the streamed fold and the manual
        // batch bills must agree exactly, not approximately.
        let (start, end) = ledger.horizon();
        let k0 = Arc::new(
            CompiledContract::compile(ledger.calendar(), &ledger.hydrate_at(id, 0).unwrap(), start, end)
                .unwrap()
                .with_precision(Precision::BitExact),
        );
        let k1 = Arc::new(
            CompiledContract::compile(ledger.calendar(), &ledger.hydrate_at(id, 1).unwrap(), start, end)
                .unwrap()
                .with_precision(Precision::BitExact),
        );

        let step = Duration::from_minutes(STEP_MIN);
        let mut acc = BillAccrual::new(Arc::clone(&k0), SimTime::EPOCH, step).unwrap();
        for p in probe.values().iter().take(cut_q) {
            acc.push_next(*p).unwrap();
        }
        acc.rebind_at(Arc::clone(&k1), cut).unwrap();

        // Stream a little past the event, checkpoint, restore, and finish
        // on the restored copy.
        let past_event = (cut_q + snap_off).min(kw.len());
        for p in probe.values().iter().skip(cut_q).take(past_event - cut_q) {
            acc.push_next(*p).unwrap();
        }
        let snap = acc.snapshot();
        let mut restored = BillAccrual::restore(Arc::clone(&k1), &snap).unwrap();
        for p in probe.values().iter().skip(past_event) {
            acc.push_next(*p).unwrap();
            restored.push_next(*p).unwrap();
        }

        let manual = Bill::fold([
            &k0.bill(&probe.slice_time(start, cut)).unwrap(),
            &k1.bill(&probe.slice_time(cut, probe.end())).unwrap(),
        ])
        .unwrap();
        prop_assert_eq!(acc.finalize().unwrap(), manual.clone());
        prop_assert_eq!(restored.finalize().unwrap(), manual);
    }
}

#[test]
fn fleet_applies_delta_events_and_rejects_created_events() {
    let mut fleet = MeterFleet::new(
        Calendar::default(),
        SimTime::EPOCH,
        SimTime::from_days(DAYS),
    );
    let meter = fleet
        .register(
            &base_contract(),
            SimTime::EPOCH,
            Duration::from_minutes(STEP_MIN),
        )
        .unwrap();

    let mut ledger = ledger();
    let id = ledger
        .create(base_contract(), "created", SimTime::EPOCH)
        .unwrap();
    ledger
        .append(
            id,
            ContractDelta::SetMonthlyFee(Money::from_dollars(900.0)),
            "fee-hike",
            SimTime::from_days(2),
        )
        .unwrap();
    let events = ledger.events(id).unwrap().to_vec();

    // The created event describes a stream, not a live meter.
    assert!(matches!(
        fleet.apply_event(meter, &events[0]),
        Err(CoreError::Ledger(_))
    ));
    assert!(matches!(events[0].payload, EventPayload::Created(_)));

    // The delta event re-binds the meter through the patch path.
    fleet.apply_event(meter, &events[1]).unwrap();
    // The meter's bill now reflects the amended fee: a day of zero load
    // bills the new monthly fee, not the old one.
    let samples: Vec<Sample> = (0..SAMPLES_PER_DAY)
        .map(|_| Sample {
            meter,
            power: Power::from_kilowatts(0.0),
        })
        .collect();
    for s in &samples {
        fleet.advance_tick(std::slice::from_ref(s)).unwrap();
    }
    let bill = fleet.finalize(meter).unwrap();
    assert_eq!(bill.total(), Money::from_dollars(900.0));
}

#[test]
fn ledger_event_payload_labels_are_stable() {
    let mut ledger = ledger();
    let id = ledger
        .create(base_contract(), "created", SimTime::EPOCH)
        .unwrap();
    ledger
        .append(
            id,
            ContractDelta::SetMonthlyFee(Money::from_dollars(1.0)),
            "fee",
            SimTime::from_days(1),
        )
        .unwrap();
    let events: &[LedgerEvent] = ledger.events(id).unwrap();
    assert_eq!(events[0].payload.label(), "created");
    assert_eq!(events[1].payload.label(), "set_monthly_fee=1");
}
