//! Fleet degradation and crash-safe checkpoints: a panicking meter is
//! quarantined instead of killing the tick, and a `CheckpointStore` ring
//! brings a dead fleet back bit-identically.

use hpcgrid_core::checkpoint::CheckpointStore;
use hpcgrid_core::contract::Contract;
use hpcgrid_core::fleet::{MeterFleet, MeterId, Sample};
use hpcgrid_core::tariff::Tariff;
use hpcgrid_core::CoreError;
use hpcgrid_units::{Calendar, Duration, EnergyPrice, Power, SimTime};

const METERS: usize = 6;
const STEP_MIN: f64 = 15.0;

fn contract() -> Contract {
    Contract::builder("fleet-resilience")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .build()
        .unwrap()
}

fn fleet_of(n: usize) -> (MeterFleet, Vec<MeterId>) {
    let mut fleet = MeterFleet::with_shards(
        Calendar::default(),
        SimTime::EPOCH,
        SimTime::from_days(30),
        2,
    );
    let c = contract();
    let step = Duration::from_minutes(STEP_MIN);
    let ids = (0..n)
        .map(|_| fleet.register(&c, SimTime::EPOCH, step).unwrap())
        .collect();
    (fleet, ids)
}

/// Deterministic per-meter, per-tick load.
fn mw(meter: usize, tick: u64) -> Power {
    Power::from_megawatts(1.0 + meter as f64 * 0.25 + tick as f64 * 0.01)
}

fn batch(ids: &[MeterId], tick: u64) -> Vec<Sample> {
    ids.iter()
        .map(|id| Sample {
            meter: *id,
            power: mw(id.0, tick),
        })
        .collect()
}

#[test]
fn panicking_meter_is_quarantined_and_the_rest_of_the_fleet_ticks_on() {
    let (mut fleet, ids) = fleet_of(METERS);
    let (mut reference, ref_ids) = fleet_of(METERS);
    for t in 0..10 {
        fleet.advance_tick(&batch(&ids, t)).unwrap();
        reference.advance_tick(&batch(&ref_ids, t)).unwrap();
    }
    let victim = ids[3];
    let known_good = fleet.snapshot(victim).unwrap();

    // Tick 10: the victim's fold panics; the other five meters are
    // unaffected and the casualty is reported, not propagated.
    fleet.chaos_poison_meter(victim).unwrap();
    let report = fleet.advance_tick(&batch(&ids, 10)).unwrap();
    assert_eq!(report.samples, METERS);
    assert_eq!(report.applied, METERS - 1);
    assert_eq!(report.dropped, 1);
    assert_eq!(report.newly_quarantined.len(), 1);
    assert_eq!(report.newly_quarantined[0].0, victim);
    assert!(report.newly_quarantined[0]
        .1
        .contains("injected meter panic"));

    // Tick 11: the quarantined meter's sample is dropped at scatter time.
    let report = fleet.advance_tick(&batch(&ids, 11)).unwrap();
    assert_eq!((report.applied, report.dropped), (METERS - 1, 1));
    assert!(report.newly_quarantined.is_empty());

    // The quarantined meter refuses finalize and snapshot with a typed
    // error, and is excluded from fleet-wide operations.
    assert!(fleet.is_quarantined(victim));
    assert_eq!(fleet.quarantined().len(), 1);
    assert!(matches!(
        fleet.finalize(victim),
        Err(CoreError::Quarantined(_))
    ));
    assert!(matches!(
        fleet.snapshot(victim),
        Err(CoreError::Quarantined(_))
    ));
    assert_eq!(fleet.finalize_all().unwrap().len(), METERS - 1);
    assert_eq!(fleet.snapshot_all().len(), METERS - 1);

    // Rehabilitation: restore the pre-fault snapshot, replay the two
    // samples the quarantine dropped, and the whole fleet is bit-identical
    // to one that never faulted.
    reference.advance_tick(&batch(&ref_ids, 10)).unwrap();
    reference.advance_tick(&batch(&ref_ids, 11)).unwrap();
    fleet.restore(victim, &known_good).unwrap();
    assert!(!fleet.is_quarantined(victim));
    for t in [10, 11] {
        let report = fleet
            .advance_tick(&[Sample {
                meter: victim,
                power: mw(victim.0, t),
            }])
            .unwrap();
        assert_eq!((report.applied, report.dropped), (1, 0));
    }
    let bills = fleet.finalize_all().unwrap();
    assert_eq!(bills.len(), METERS);
    assert_eq!(bills, reference.finalize_all().unwrap());
}

#[test]
fn checkpoint_ring_survives_a_corrupt_generation_and_resumes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("hpcgrid-ckpt-ring-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut fleet, ids) = fleet_of(3);
    let mut store = CheckpointStore::open(&dir, 2).unwrap();

    let mut tick = 0u64;
    let advance = |fleet: &mut MeterFleet, n: u64, tick: &mut u64| {
        for _ in 0..n {
            fleet.advance_tick(&batch(&ids, *tick)).unwrap();
            *tick += 1;
        }
    };
    advance(&mut fleet, 5, &mut tick);
    assert_eq!(store.save(&fleet).unwrap(), 0);
    advance(&mut fleet, 3, &mut tick);
    assert_eq!(store.save(&fleet).unwrap(), 1);
    advance(&mut fleet, 2, &mut tick);
    assert_eq!(store.save(&fleet).unwrap(), 2);
    // Ring of 2: generation 0 was garbage collected.
    assert_eq!(store.generations().unwrap(), vec![1, 2]);

    // Tear the newest generation mid-file, as a crash mid-write upstream of
    // the rename never could — load falls back to generation 1.
    let newest = dir.join("ckpt-0000000002.json");
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
    let ckpt = store.load_latest().unwrap().expect("generation 1 intact");
    assert_eq!(ckpt.generation, 1);
    assert_eq!(ckpt.ticks, 8);
    assert_eq!(ckpt.meters.len(), 3);

    // A cold process: same registrations, restore, replay the ticks after
    // the checkpoint — bills are bit-identical to the uninterrupted fleet.
    let (mut revived, _) = fleet_of(3);
    assert_eq!(revived.restore_checkpoint(&ckpt).unwrap(), 3);
    let mut t = ckpt.ticks;
    while t < tick {
        revived.advance_tick(&batch(&ids, t)).unwrap();
        t += 1;
    }
    assert_eq!(
        revived.finalize_all().unwrap(),
        fleet.finalize_all().unwrap()
    );

    // Checkpoints are fingerprint-checked: a fleet billing a different
    // contract refuses the restore.
    let other = Contract::builder("other")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.99)))
        .build()
        .unwrap();
    let mut wrong = MeterFleet::with_shards(
        Calendar::default(),
        SimTime::EPOCH,
        SimTime::from_days(30),
        2,
    );
    for _ in 0..3 {
        wrong
            .register(&other, SimTime::EPOCH, Duration::from_minutes(STEP_MIN))
            .unwrap();
    }
    assert!(wrong.restore_checkpoint(&ckpt).is_err());

    // Saving sweeps stale temp debris from dead writers.
    let debris = dir.join("ckpt-0000000009.json.tmp.999999999");
    std::fs::write(&debris, b"half a checkpoint").unwrap();
    store.save(&fleet).unwrap();
    assert!(!debris.exists());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopened_store_continues_the_generation_sequence() {
    let dir = std::env::temp_dir().join(format!("hpcgrid-ckpt-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut fleet, ids) = fleet_of(2);
    fleet.advance_tick(&batch(&ids, 0)).unwrap();
    {
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        assert_eq!(store.save(&fleet).unwrap(), 0);
        assert_eq!(store.save(&fleet).unwrap(), 1);
    }
    // A new store (a restarted process) never reuses a published number.
    let mut store = CheckpointStore::open(&dir, 3).unwrap();
    assert_eq!(store.save(&fleet).unwrap(), 2);
    assert_eq!(store.load_latest().unwrap().unwrap().generation, 2);
    std::fs::remove_dir_all(&dir).unwrap();
}
