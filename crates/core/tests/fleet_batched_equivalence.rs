//! Property tests: the columnar / fused fleet ingest paths are
//! **bit-identical** to per-sample streaming — invariant #8, "fused ≡
//! per-sample".
//!
//! Three ways of feeding the same samples must close the same books, bit
//! for bit, under `Precision::BitExact`:
//!
//! * per-sample `BillAccrual::push_next`,
//! * fused `BillAccrual::push_run` over arbitrary chunkings,
//! * `MeterFleet::advance_tick` / `advance_frame` / `advance_window`
//!   over arbitrary window widths and shard counts.
//!
//! On top of pure equivalence: a meter that panics mid-window loses the
//! rest of *its* window only; a mid-stream `apply_delta` invalidates the
//! cached scatter plan and the rebuilt plan bills identically; duplicate
//! meter ids in a frame degrade to per-frame folds without changing
//! bills; and `Precision::Fast` fused runs stay within the documented
//! 1e-12 of the bit-exact batch bill.

use hpcgrid_core::accrual::BillAccrual;
use hpcgrid_core::billing::{Bill, Precision};
use hpcgrid_core::compiled::CompiledContract;
use hpcgrid_core::contract::{Contract, ContractDelta};
use hpcgrid_core::demand_charge::{DemandBasis, DemandCharge};
use hpcgrid_core::fleet::{MeterFleet, MeterId, Sample, TickFrame};
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::{BlockStep, BlockTariff, DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_core::CoreError;
use hpcgrid_timeseries::intervals::{Interval, IntervalSet};
use hpcgrid_timeseries::series::{PowerSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, Money, Power, SimTime, TimeOfDay,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;

/// Documented relative tolerance of `Precision::Fast`.
const FAST_RTOL: f64 = 1e-12;

/// Horizon every kernel in this file compiles against.
const HORIZON_DAYS: u64 = 40;

/// A deterministic contract exercising every streamed component kind:
/// TOU windows (one wrap-midnight), a block tariff with a bucket knee, a
/// top-k demand charge on 15-minute metering, a powerband ceiling, and a
/// monthly fee. Load/geometry randomness drives the cursor and boundary
/// logic; the contract supplies the component coverage.
fn rich_contract() -> Contract {
    Contract::builder("fleet-batched-rich")
        .tariff(Tariff::TimeOfUse(TouTariff {
            windows: vec![
                TouWindow {
                    months: None,
                    days: DayFilter::WeekdaysOnly,
                    from: TimeOfDay::new(8, 0),
                    to: TimeOfDay::new(20, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.12),
                },
                TouWindow {
                    months: None,
                    days: DayFilter::All,
                    from: TimeOfDay::new(22, 0),
                    to: TimeOfDay::new(6, 0),
                    price: EnergyPrice::per_kilowatt_hour(0.02),
                },
            ],
            base: EnergyPrice::per_kilowatt_hour(0.05),
        }))
        .tariff(Tariff::Block(BlockTariff {
            blocks: vec![
                BlockStep {
                    up_to_kwh: Some(400_000.0),
                    price: EnergyPrice::per_kilowatt_hour(0.11),
                },
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::per_kilowatt_hour(0.06),
                },
            ],
        }))
        .demand_charge(DemandCharge {
            price: DemandPrice::per_kilowatt_month(14.0),
            demand_interval: Duration::from_secs(900),
            basis: DemandBasis::TopKAverage(3),
            floor: Some(Power::from_kilowatts(900.0)),
        })
        .powerband(Powerband::ceiling(
            Power::from_megawatts(9.0),
            EnergyPrice::per_kilowatt_hour(0.4),
        ))
        .monthly_fee(Money::from_dollars(500.0))
        .build()
        .unwrap()
}

/// A plain flat-rate contract — the degenerate single-segment timeline.
fn flat_contract() -> Contract {
    Contract::builder("fleet-batched-flat")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .build()
        .unwrap()
}

fn compile(contract: &Contract, precision: Precision) -> Arc<CompiledContract> {
    Arc::new(
        CompiledContract::compile(
            &Calendar::default(),
            contract,
            SimTime::EPOCH,
            SimTime::from_days(HORIZON_DAYS),
        )
        .unwrap()
        .with_precision(precision),
    )
}

/// `(start, step, kw)`: a stream geometry inside the horizon, sized so
/// even the longest stream at the coarsest step stays in bounds.
fn stream_strategy() -> impl Strategy<Value = (SimTime, Duration, Vec<f64>)> {
    (
        0u64..30 * 86_400,
        prop::sample::select(vec![900u64, 3_600]),
        prop::collection::vec(0.0f64..20_000.0, 1..150),
    )
        .prop_map(|(s, step, kw)| (SimTime::from_secs(s), Duration::from_secs(step), kw))
}

/// Chunk widths for splitting a stream into `push_run` calls / windows.
fn chunks_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..17, 1..40)
}

/// Assert two bills agree line-by-line within the fast-path tolerance.
fn assert_bills_close(exact: &Bill, fast: &Bill) -> Result<(), TestCaseError> {
    prop_assert_eq!(&exact.contract, &fast.contract);
    prop_assert_eq!(exact.items.len(), fast.items.len());
    for (e, f) in exact.items.iter().zip(&fast.items) {
        prop_assert_eq!(&e.label, &f.label);
        let (a, b) = (e.amount.as_dollars(), f.amount.as_dollars());
        let scale = a.abs().max(b.abs()).max(1.0);
        prop_assert!(
            (a - b).abs() <= FAST_RTOL * scale,
            "line item {} diverged: exact {a:e} vs fast {b:e}",
            e.label
        );
    }
    Ok(())
}

/// Deterministic per-meter, per-tick load (kept under the band ceiling
/// sometimes, over it other times, so the band path accrues).
fn mw(meter: usize, tick: u64) -> Power {
    Power::from_megawatts(2.0 + meter as f64 * 1.3 + (tick % 7) as f64 * 0.9)
}

/// A fleet of `n` meters round-robined over the two contract shapes.
/// Kernels are pinned to `BitExact` (bypassing any `HPCGRID_PRECISION`
/// override) — this file's fused-vs-scalar claims are bit-identity
/// statements, which only `BitExact` makes; the `Fast` tolerance row has
/// its own dedicated property below.
fn fleet_of(n: usize, shards: usize) -> (MeterFleet, Vec<MeterId>) {
    let mut fleet = MeterFleet::with_shards(
        Calendar::default(),
        SimTime::EPOCH,
        SimTime::from_days(HORIZON_DAYS),
        shards,
    );
    let shapes = [
        compile(&rich_contract(), Precision::BitExact),
        compile(&flat_contract(), Precision::BitExact),
    ];
    let step = Duration::from_minutes(15.0);
    let ids = (0..n)
        .map(|i| {
            fleet
                .register_compiled(Arc::clone(&shapes[i % shapes.len()]), SimTime::EPOCH, step)
                .unwrap()
        })
        .collect();
    (fleet, ids)
}

fn frame_at(ids: &Arc<[MeterId]>, tick: u64) -> TickFrame {
    let powers = ids.iter().map(|id| mw(id.0, tick)).collect();
    TickFrame::new(Arc::clone(ids), powers).unwrap()
}

fn batch_at(ids: &[MeterId], tick: u64) -> Vec<Sample> {
    ids.iter()
        .map(|id| Sample {
            meter: *id,
            power: mw(id.0, tick),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The accrual-level half of invariant #8: `push_run` over any
    /// chunking leaves bit-identical state to per-sample `push_next` at
    /// every chunk boundary, and the full stream finalizes bit-identical
    /// to the batch bill — event windows included.
    #[test]
    fn push_run_matches_push_next_at_every_chunk(
        (start, step, kw) in stream_strategy(),
        chunks in chunks_strategy(),
        windows in prop::collection::vec((0u64..35 * 86_400, 1u64..12 * 3_600), 0..3),
    ) {
        let kernel = compile(&rich_contract(), Precision::BitExact);
        let events = IntervalSet::from_intervals(
            windows
                .iter()
                .map(|&(s, d)| Interval::from_duration(SimTime::from_secs(s), Duration::from_secs(d)))
                .collect(),
        );
        let powers: Vec<Power> = kw.iter().copied().map(Power::from_kilowatts).collect();
        let mut fused =
            BillAccrual::with_events(Arc::clone(&kernel), start, step, &events).unwrap();
        let mut seq =
            BillAccrual::with_events(Arc::clone(&kernel), start, step, &events).unwrap();
        let mut i = 0usize;
        for &c in &chunks {
            if i == powers.len() {
                break;
            }
            let c = c.min(powers.len() - i);
            fused.push_run(&powers[i..i + c]).unwrap();
            for &p in &powers[i..i + c] {
                seq.push_next(p).unwrap();
            }
            i += c;
            prop_assert_eq!(
                fused.finalize().unwrap(),
                seq.finalize().unwrap(),
                "chunk boundary at {} diverged",
                i
            );
        }
        // Drain whatever the chunk list didn't cover, then pin against the
        // batch kernel over the whole stream.
        fused.push_run(&powers[i..]).unwrap();
        let load: PowerSeries = Series::new(start, step, powers).unwrap();
        prop_assert_eq!(
            fused.finalize().unwrap(),
            kernel.bill_with_events(&load, &events).unwrap()
        );
    }

    /// The fleet-level half: `advance_window` over arbitrary window
    /// widths ≡ `advance_tick` per tick, bills compared bit-identically at
    /// every window boundary and pinned against solo per-sample accruals
    /// at the end — across shard counts.
    #[test]
    fn advance_window_matches_ticks_and_solo_push(
        meters in 1usize..10,
        shards in prop::sample::select(vec![1usize, 2, 5]),
        ticks in 1u64..40,
        widths in prop::collection::vec(1usize..9, 1..20),
    ) {
        let (mut windowed, ids_w) = fleet_of(meters, shards);
        let (mut ticked, ids_t) = fleet_of(meters, shards);
        prop_assert_eq!(&ids_w, &ids_t);
        let ids: Arc<[MeterId]> = ids_w.clone().into();

        let mut t = 0u64;
        let mut wi = 0usize;
        while t < ticks {
            let w = (widths[wi % widths.len()] as u64).min(ticks - t);
            wi += 1;
            let frames: Vec<TickFrame> =
                (t..t + w).map(|tick| frame_at(&ids, tick)).collect();
            let report = windowed.advance_window(&frames).unwrap();
            prop_assert_eq!(report.applied, meters * w as usize);
            for tick in t..t + w {
                ticked.advance_tick(&batch_at(&ids_t, tick)).unwrap();
            }
            t += w;
            prop_assert_eq!(
                windowed.finalize_all().unwrap(),
                ticked.finalize_all().unwrap(),
                "window boundary at tick {} diverged",
                t
            );
        }

        // Pin against solo accruals fed one push_next per sample.
        let shapes = [rich_contract(), flat_contract()];
        for (i, id) in ids.iter().enumerate() {
            let kernel = compile(&shapes[i % shapes.len()], Precision::BitExact);
            let mut solo =
                BillAccrual::new(kernel, SimTime::EPOCH, Duration::from_minutes(15.0)).unwrap();
            for tick in 0..ticks {
                solo.push_next(mw(id.0, tick)).unwrap();
            }
            prop_assert_eq!(
                windowed.finalize(*id).unwrap(),
                solo.finalize().unwrap(),
                "meter {} diverged from solo stream",
                id
            );
        }
    }

    /// Fast mode: fused runs under a `Precision::Fast` kernel stay within
    /// the documented 1e-12 of the bit-exact batch bill.
    #[test]
    fn fast_mode_fused_runs_stay_within_tolerance(
        (start, step, kw) in stream_strategy(),
        chunks in chunks_strategy(),
    ) {
        let fast_kernel = compile(&rich_contract(), Precision::Fast);
        let exact_kernel = compile(&rich_contract(), Precision::BitExact);
        let powers: Vec<Power> = kw.iter().copied().map(Power::from_kilowatts).collect();
        let mut fused = BillAccrual::new(Arc::clone(&fast_kernel), start, step).unwrap();
        let mut i = 0usize;
        for &c in &chunks {
            if i == powers.len() {
                break;
            }
            let c = c.min(powers.len() - i);
            fused.push_run(&powers[i..i + c]).unwrap();
            i += c;
        }
        fused.push_run(&powers[i..]).unwrap();
        let load: PowerSeries = Series::new(start, step, powers).unwrap();
        assert_bills_close(
            &exact_kernel.bill(&load).unwrap(),
            &fused.finalize().unwrap(),
        )?;
    }
}

/// A meter that panics mid-window is quarantined, the rest of *its*
/// window is dropped, and every other meter folds its full window —
/// matching the per-tick fleet's degradation bit for bit.
#[test]
fn panic_mid_window_quarantines_one_meter_only() {
    const METERS: usize = 6;
    const W: usize = 8;
    let (mut windowed, ids_vec) = fleet_of(METERS, 2);
    let (mut ticked, ids_t) = fleet_of(METERS, 2);
    let ids: Arc<[MeterId]> = ids_vec.into();

    // A clean warm-up window, so the plan exists and some state accrues.
    let warmup: Vec<TickFrame> = (0..W as u64).map(|t| frame_at(&ids, t)).collect();
    windowed.advance_window(&warmup).unwrap();
    for t in 0..W as u64 {
        ticked.advance_tick(&batch_at(&ids_t, t)).unwrap();
    }

    let victim = ids[3];
    windowed.chaos_poison_meter(victim).unwrap();
    ticked.chaos_poison_meter(victim).unwrap();

    let frames: Vec<TickFrame> = (W as u64..2 * W as u64)
        .map(|t| frame_at(&ids, t))
        .collect();
    let report = windowed.advance_window(&frames).unwrap();
    assert_eq!(report.samples, METERS * W);
    assert_eq!(report.applied, (METERS - 1) * W);
    assert_eq!(report.dropped, W);
    assert_eq!(report.newly_quarantined.len(), 1);
    assert_eq!(report.newly_quarantined[0].0, victim);
    assert!(report.newly_quarantined[0]
        .1
        .contains("injected meter panic"));
    assert!(windowed.is_quarantined(victim));
    assert!(matches!(
        windowed.finalize(victim),
        Err(CoreError::Quarantined(_))
    ));

    // The per-tick fleet degrades the same way over the same ticks...
    for t in W as u64..2 * W as u64 {
        ticked.advance_tick(&batch_at(&ids_t, t)).unwrap();
    }
    // ...so the healthy meters' books agree exactly.
    assert_eq!(
        windowed.finalize_all().unwrap(),
        ticked.finalize_all().unwrap()
    );

    // Steady-state quarantine: the rebuilt plan drops the victim without
    // probing, and the next window reports it.
    let frames: Vec<TickFrame> = (2 * W as u64..3 * W as u64)
        .map(|t| frame_at(&ids, t))
        .collect();
    let report = windowed.advance_window(&frames).unwrap();
    assert_eq!(report.applied, (METERS - 1) * W);
    assert_eq!(report.dropped, W);
    assert!(report.newly_quarantined.is_empty());
}

/// `apply_delta` between windows invalidates the cached scatter plan;
/// the rebuilt plan routes the moved meter to its new shard and bills
/// stay bit-identical to the per-tick fleet under the same delta.
#[test]
fn apply_delta_invalidates_plan_and_bills_agree() {
    const METERS: usize = 6;
    const W: u64 = 8;
    let (mut windowed, ids_vec) = fleet_of(METERS, 2);
    let (mut ticked, ids_t) = fleet_of(METERS, 2);
    let ids: Arc<[MeterId]> = ids_vec.into();

    let frames: Vec<TickFrame> = (0..W).map(|t| frame_at(&ids, t)).collect();
    windowed.advance_window(&frames).unwrap();
    windowed.advance_window(&frames2(&ids, W, 2 * W)).unwrap();
    for t in 0..2 * W {
        ticked.advance_tick(&batch_at(&ids_t, t)).unwrap();
    }
    // Second window reused the plan.
    let stats = windowed.stats();
    assert_eq!((stats.plan_builds, stats.plan_hits), (1, 1));

    // Move one meter to a revised contract (fee change → new fingerprint
    // → re-shard). The cached plan is now stale.
    let delta = ContractDelta::SetMonthlyFee(Money::from_dollars(1_250.0));
    windowed.apply_delta(ids[2], &delta).unwrap();
    ticked.apply_delta(ids_t[2], &delta).unwrap();

    windowed
        .advance_window(&frames2(&ids, 2 * W, 3 * W))
        .unwrap();
    for t in 2 * W..3 * W {
        ticked.advance_tick(&batch_at(&ids_t, t)).unwrap();
    }
    let stats = windowed.stats();
    assert_eq!(stats.plan_builds, 2, "delta must force a plan rebuild");
    assert_eq!(
        windowed.finalize_all().unwrap(),
        ticked.finalize_all().unwrap()
    );
}

fn frames2(ids: &Arc<[MeterId]>, from: u64, to: u64) -> Vec<TickFrame> {
    (from..to).map(|t| frame_at(ids, t)).collect()
}

/// Duplicate meter ids in a frame disqualify per-meter fusion (it would
/// reorder the duplicates); the window degrades to per-frame folds and
/// bills exactly like the equivalent per-tick sequence.
#[test]
fn duplicate_meters_in_frame_degrade_without_divergence() {
    let (mut windowed, ids) = fleet_of(3, 2);
    let (mut ticked, _) = fleet_of(3, 2);
    let dup_ids: Arc<[MeterId]> = vec![ids[0], ids[1], ids[0], ids[2]].into();
    let frames: Vec<TickFrame> = (0..6u64)
        .map(|t| {
            let powers = dup_ids
                .iter()
                .enumerate()
                .map(|(pos, _)| Power::from_megawatts(1.0 + pos as f64 + t as f64 * 0.1))
                .collect();
            TickFrame::new(Arc::clone(&dup_ids), powers).unwrap()
        })
        .collect();
    let report = windowed.advance_window(&frames).unwrap();
    assert_eq!(report.applied, 4 * 6);
    for f in &frames {
        let samples: Vec<Sample> = f
            .meters()
            .iter()
            .zip(f.powers())
            .map(|(&meter, &power)| Sample { meter, power })
            .collect();
        ticked.advance_tick(&samples).unwrap();
    }
    assert_eq!(
        windowed.finalize_all().unwrap(),
        ticked.finalize_all().unwrap()
    );
}

/// Frame construction and plan resolution reject malformed input with
/// typed errors: mismatched lanes, unknown meters, and a run past the
/// horizon applies the fitting prefix before erroring (per-sample error
/// equivalence).
#[test]
fn malformed_frames_and_horizon_overruns_error_like_per_sample() {
    let (mut fleet, ids) = fleet_of(2, 1);
    let lane: Arc<[MeterId]> = ids.clone().into();
    assert!(TickFrame::new(Arc::clone(&lane), vec![Power::from_megawatts(1.0)]).is_err());
    let stranger: Arc<[MeterId]> = vec![MeterId(99)].into();
    let frame = TickFrame::new(stranger, vec![Power::from_megawatts(1.0)]).unwrap();
    assert!(fleet.advance_frame(&frame).is_err());

    // push_run past the horizon: the fitting prefix applies, then the
    // exact error push_next would have returned for the first overrun.
    let kernel = compile(&flat_contract(), Precision::BitExact);
    let step = Duration::from_hours(1.0);
    let start = SimTime::from_days(HORIZON_DAYS) - Duration::from_hours(3.0);
    let mut fused = BillAccrual::new(Arc::clone(&kernel), start, step).unwrap();
    let mut seq = BillAccrual::new(Arc::clone(&kernel), start, step).unwrap();
    let powers = vec![Power::from_megawatts(5.0); 5];
    let fused_err = fused.push_run(&powers).unwrap_err();
    let seq_err = loop {
        if let Err(e) = seq.push_next(Power::from_megawatts(5.0)) {
            break e;
        }
    };
    assert_eq!(fused_err.to_string(), seq_err.to_string());
    assert_eq!(fused.samples(), 3);
    assert_eq!(fused.finalize().unwrap(), seq.finalize().unwrap());
}
