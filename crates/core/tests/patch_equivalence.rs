//! Property tests: incremental recompilation is **bit-identical** to a fresh
//! compile.
//!
//! The contract under test always carries all four tariff kinds (TOU with
//! arbitrary — including wrap-midnight — windows, fixed, dynamic, block),
//! and the randomized delta sequences replace tariffs, splice price strips,
//! and set/clear every non-tariff component. `CompiledContract` derives
//! `PartialEq` down to raw `f64` segment prices, and `Bill` compares `Money`
//! exactly, so `prop_assert_eq!` demands bit-level equality of both the
//! patched kernel and its bills against `compile(contract.apply(...))`.

use hpcgrid_core::billing::BillingEngine;
use hpcgrid_core::compiled::CompiledContract;
use hpcgrid_core::contract::{Contract, ContractDelta};
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::emergency::EmergencyDrClause;
use hpcgrid_core::fingerprint;
use hpcgrid_core::powerband::Powerband;
use hpcgrid_core::tariff::{BlockStep, BlockTariff, DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, Money, Month, MonthSet, Power, SimTime,
    TimeOfDay, Weekday,
};
use proptest::prelude::*;

/// A load on a random start (second resolution), step, and length.
fn load_strategy() -> impl Strategy<Value = PowerSeries> {
    (
        0u64..40 * 86_400,
        prop::sample::select(vec![900u64, 3_600, 7_200]),
        prop::collection::vec(0.0f64..20_000.0, 1..400),
    )
        .prop_map(|(start, step, kw)| {
            Series::new(
                SimTime::from_secs(start),
                Duration::from_secs(step),
                kw.into_iter().map(Power::from_kilowatts).collect(),
            )
            .unwrap()
        })
}

/// A TOU window with arbitrary edges — wrap-midnight (`to <= from`)
/// included — and a random month filter.
fn window_strategy() -> impl Strategy<Value = TouWindow> {
    (
        (0u8..24, [0u8, 15, 30, 45]),
        (0u8..24, [0u8, 15, 30, 45]),
        0u8..3,
        0u16..0x1000,
        1u32..60,
    )
        .prop_map(
            |((fh, fm), (th, tm), day_sel, month_mask, cents)| TouWindow {
                months: match month_mask % 3 {
                    0 => None,
                    1 => Some(MonthSet::summer()),
                    _ => Some(
                        Month::ALL
                            .iter()
                            .copied()
                            .filter(|m| month_mask & m.bit() != 0)
                            .collect(),
                    ),
                },
                days: match day_sel {
                    0 => DayFilter::All,
                    1 => DayFilter::WeekdaysOnly,
                    _ => DayFilter::WeekendsOnly,
                },
                from: TimeOfDay::new(fh, fm),
                to: TimeOfDay::new(th, tm),
                price: EnergyPrice::per_kilowatt_hour(cents as f64 / 100.0),
            },
        )
}

/// An hourly market-price strip on a random start.
fn strip_strategy() -> impl Strategy<Value = PriceSeries> {
    (
        prop::collection::vec(0.01f64..0.40, 3..30),
        0u64..30 * 86_400,
    )
        .prop_map(|(vals, start)| {
            PriceSeries::new(
                SimTime::from_secs(start),
                Duration::from_hours(1.0),
                vals.into_iter()
                    .map(EnergyPrice::per_kilowatt_hour)
                    .collect(),
            )
            .unwrap()
        })
}

/// A replacement tariff of any kind.
fn tariff_strategy() -> impl Strategy<Value = Tariff> {
    prop_oneof![
        (1u32..40).prop_map(|c| Tariff::fixed(EnergyPrice::per_kilowatt_hour(c as f64 / 100.0))),
        (window_strategy(), 1u32..40).prop_map(|(w, base)| Tariff::TimeOfUse(TouTariff {
            windows: vec![w],
            base: EnergyPrice::per_kilowatt_hour(base as f64 / 100.0),
        })),
        strip_strategy().prop_map(|s| Tariff::dynamic(
            s,
            EnergyPrice::per_kilowatt_hour(0.012),
            EnergyPrice::per_kilowatt_hour(0.08),
        )),
        (10u32..30, 1u32..9).prop_map(|(hi, lo)| Tariff::Block(BlockTariff {
            blocks: vec![
                BlockStep {
                    up_to_kwh: Some(600_000.0),
                    price: EnergyPrice::per_kilowatt_hour(hi as f64 / 100.0),
                },
                BlockStep {
                    up_to_kwh: None,
                    price: EnergyPrice::per_kilowatt_hour(lo as f64 / 100.0),
                },
            ],
        })),
    ]
}

/// The base contract: all four tariff kinds at fixed indices (0 = TOU,
/// 1 = fixed, 2 = dynamic, 3 = block) so delta sequences stay valid by
/// construction, plus demand charge and fee.
fn base_contract_strategy() -> impl Strategy<Value = Contract> {
    (
        window_strategy(),
        window_strategy(),
        1u32..40,
        strip_strategy(),
    )
        .prop_map(|(w1, w2, base_cents, strip)| {
            Contract::builder("patch-base")
                .tariff(Tariff::TimeOfUse(TouTariff {
                    windows: vec![w1, w2],
                    base: EnergyPrice::per_kilowatt_hour(base_cents as f64 / 100.0),
                }))
                .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.03)))
                .tariff(Tariff::dynamic(
                    strip,
                    EnergyPrice::per_kilowatt_hour(0.011),
                    EnergyPrice::per_kilowatt_hour(0.09),
                ))
                .tariff(Tariff::Block(BlockTariff {
                    blocks: vec![
                        BlockStep {
                            up_to_kwh: Some(500_000.0),
                            price: EnergyPrice::per_kilowatt_hour(0.13),
                        },
                        BlockStep {
                            up_to_kwh: None,
                            price: EnergyPrice::per_kilowatt_hour(0.065),
                        },
                    ],
                }))
                .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(11.0)))
                .monthly_fee(Money::from_dollars(750.0))
                .build()
                .unwrap()
        })
}

/// A single-component mutation valid against any contract produced by
/// [`base_contract_strategy`] (and any chain of these deltas): tariff
/// replacements target indices 0–1, strip splices target the dynamic tariff
/// at index 2.
fn delta_strategy() -> impl Strategy<Value = ContractDelta> {
    prop_oneof![
        (0usize..2, tariff_strategy())
            .prop_map(|(index, tariff)| ContractDelta::ReplaceTariff { index, tariff }),
        strip_strategy().prop_map(|strip| ContractDelta::ReplacePriceStrip { index: 2, strip }),
        prop_oneof![
            Just(None),
            (5u32..20).prop_map(
                |p| Some(DemandCharge::monthly(DemandPrice::per_kilowatt_month(
                    p as f64
                )))
            ),
        ]
        .prop_map(ContractDelta::SetDemandCharge),
        prop_oneof![
            Just(None),
            (5u32..20).prop_map(|mw| Some(Powerband::ceiling(
                Power::from_megawatts(mw as f64),
                EnergyPrice::per_kilowatt_hour(0.5),
            ))),
        ]
        .prop_map(ContractDelta::SetPowerband),
        prop_oneof![
            Just(None),
            (1u32..10).prop_map(
                |mw| Some(EmergencyDrClause::reference(Power::from_megawatts(
                    mw as f64
                )))
            ),
        ]
        .prop_map(ContractDelta::SetEmergency),
        (0u32..2_000).prop_map(|d| ContractDelta::SetMonthlyFee(Money::from_dollars(d as f64))),
    ]
}

fn calendars() -> Vec<Calendar> {
    vec![
        Calendar::default(),
        Calendar::new(Weekday::Wednesday, Month::June, 15).unwrap(),
        Calendar::new(Weekday::Sunday, Month::December, 31).unwrap(),
    ]
}

proptest! {
    /// The tentpole property: `patch` composed over a random sequence of
    /// 1–8 deltas produces a kernel — and bills — bit-identical to a fresh
    /// `compile` of the final contract, and the final contract is in turn
    /// bit-identical to the interpreter. Fingerprints track the chain.
    #[test]
    fn patch_chain_is_bit_identical_to_fresh_compile(
        base in base_contract_strategy(),
        deltas in prop::collection::vec(delta_strategy(), 1..=8),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let mut contract = base.clone();
        let mut kernel =
            CompiledContract::compile(&cal, &base, load.start(), load.end()).unwrap();
        for delta in &deltas {
            contract = contract.apply(delta).unwrap();
            kernel = kernel.patch(delta).unwrap();
        }
        let fresh =
            CompiledContract::compile(&cal, &contract, load.start(), load.end()).unwrap();
        prop_assert_eq!(&kernel, &fresh);
        prop_assert_eq!(kernel.bill(&load).unwrap(), fresh.bill(&load).unwrap());
        prop_assert_eq!(
            BillingEngine::new(cal).bill(&contract, &load).unwrap(),
            kernel.bill(&load).unwrap()
        );
        prop_assert_eq!(kernel.fingerprint(), fingerprint::of_contract(&contract));
        prop_assert_eq!(kernel.contract(), contract);
    }

    /// Market-price revisions through `with_price_strip`: every splice off
    /// the same base kernel equals a fresh compile of the strip-revised
    /// contract, bit for bit.
    #[test]
    fn price_strip_splice_is_bit_identical(
        window in window_strategy(),
        base_strip in strip_strategy(),
        revisions in prop::collection::vec(strip_strategy(), 1..6),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let contract = Contract::builder("strip-base")
            .tariff(Tariff::TimeOfUse(TouTariff {
                windows: vec![window],
                base: EnergyPrice::per_kilowatt_hour(0.10),
            }))
            .tariff(Tariff::dynamic(
                base_strip,
                EnergyPrice::per_kilowatt_hour(0.011),
                EnergyPrice::per_kilowatt_hour(0.09),
            ))
            .build()
            .unwrap();
        let kernel =
            CompiledContract::compile(&cal, &contract, load.start(), load.end()).unwrap();
        for strip in &revisions {
            let spliced = kernel.with_price_strip(strip).unwrap();
            let delta = ContractDelta::ReplacePriceStrip { index: 1, strip: strip.clone() };
            let fresh = CompiledContract::compile(
                &cal,
                &contract.apply(&delta).unwrap(),
                load.start(),
                load.end(),
            )
            .unwrap();
            prop_assert_eq!(&spliced, &fresh);
            prop_assert_eq!(spliced.bill(&load).unwrap(), fresh.bill(&load).unwrap());
        }
    }

    /// Month-straddling horizons under patched kernels: the load starts
    /// shortly before a billing-month boundary and spans one or more of
    /// them, exercising demand-charge bucketing, block bucketing, and the
    /// fee month count of a patched kernel against the boundary index.
    #[test]
    fn month_straddling_patch_is_bit_identical(
        base in base_contract_strategy(),
        deltas in prop::collection::vec(delta_strategy(), 1..=4),
        hours_before in 1u64..72,
        days_after in 1u64..70,
        kw in prop::collection::vec(100.0f64..18_000.0, 1..50),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let boundary = cal.next_month_start(SimTime::EPOCH);
        let hours_before = hours_before.min(boundary.as_secs() / 3_600);
        let start = boundary - Duration::from_hours(hours_before as f64);
        let span_secs = hours_before * 3_600 + days_after * 86_400;
        let step = Duration::from_minutes(15.0);
        let n = (span_secs / step.as_secs()) as usize;
        let values: Vec<Power> = (0..n)
            .map(|i| Power::from_kilowatts(kw[i % kw.len()]))
            .collect();
        let load = Series::new(start, step, values).unwrap();
        prop_assert!(load.start() < boundary && load.end() > boundary);
        let mut contract = base.clone();
        let mut kernel =
            CompiledContract::compile(&cal, &base, load.start(), load.end()).unwrap();
        for delta in &deltas {
            contract = contract.apply(delta).unwrap();
            kernel = kernel.patch(delta).unwrap();
        }
        prop_assert_eq!(
            BillingEngine::new(cal).bill(&contract, &load).unwrap(),
            kernel.bill(&load).unwrap()
        );
    }
}
