//! Property tests for the two billing precision modes.
//!
//! `Precision::BitExact` (the default) must stay **bit-identical** to the
//! interpreted `BillingEngine` path — the same contract every prior release
//! made, re-asserted here so the segment-map refactor cannot silently change
//! a bit. `Precision::Fast` trades that bit-identity for vectorized pairwise
//! summation and is held to the documented relative tolerance of `1e-12`
//! per line item, across all four tariff kinds, wrap-midnight TOU windows,
//! month-straddling loads, and patched delta chains.

use hpcgrid_core::billing::{Bill, BillingEngine, Precision};
use hpcgrid_core::compiled::CompiledContract;
use hpcgrid_core::contract::{Contract, ContractDelta};
use hpcgrid_core::demand_charge::DemandCharge;
use hpcgrid_core::tariff::{BlockStep, BlockTariff, DayFilter, Tariff, TouTariff, TouWindow};
use hpcgrid_timeseries::series::{PowerSeries, PriceSeries, Series};
use hpcgrid_units::{
    Calendar, DemandPrice, Duration, EnergyPrice, Money, Month, MonthSet, Power, SimTime,
    TimeOfDay, Weekday,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Documented relative tolerance of `Precision::Fast` (see
/// `hpcgrid_core::compiled` module docs).
const FAST_RTOL: f64 = 1e-12;

/// Assert two bills agree line-by-line within the fast-path tolerance.
/// The comparison scale floors at $1 so near-zero items compare absolutely.
fn assert_bills_close(exact: &Bill, fast: &Bill) -> Result<(), TestCaseError> {
    prop_assert_eq!(&exact.contract, &fast.contract);
    prop_assert_eq!(exact.items.len(), fast.items.len());
    for (e, f) in exact.items.iter().zip(&fast.items) {
        prop_assert_eq!(&e.label, &f.label);
        let (a, b) = (e.amount.as_dollars(), f.amount.as_dollars());
        let scale = a.abs().max(b.abs()).max(1.0);
        prop_assert!(
            (a - b).abs() <= FAST_RTOL * scale,
            "line item {} diverged: exact {a:e} vs fast {b:e}",
            e.label
        );
    }
    Ok(())
}

/// A load on a random start (second resolution), step, and length.
fn load_strategy() -> impl Strategy<Value = PowerSeries> {
    (
        0u64..40 * 86_400,
        prop::sample::select(vec![900u64, 3_600, 7_200]),
        prop::collection::vec(0.0f64..20_000.0, 1..500),
    )
        .prop_map(|(start, step, kw)| {
            Series::new(
                SimTime::from_secs(start),
                Duration::from_secs(step),
                kw.into_iter().map(Power::from_kilowatts).collect(),
            )
            .unwrap()
        })
}

/// A TOU window with arbitrary edges — wrap-midnight (`to <= from`)
/// included — and a random month filter.
fn window_strategy() -> impl Strategy<Value = TouWindow> {
    (
        (0u8..24, [0u8, 15, 30, 45]),
        (0u8..24, [0u8, 15, 30, 45]),
        0u8..3,
        0u16..0x1000,
        1u32..60,
    )
        .prop_map(
            |((fh, fm), (th, tm), day_sel, month_mask, cents)| TouWindow {
                months: match month_mask % 3 {
                    0 => None,
                    1 => Some(MonthSet::summer()),
                    _ => Some(
                        Month::ALL
                            .iter()
                            .copied()
                            .filter(|m| month_mask & m.bit() != 0)
                            .collect(),
                    ),
                },
                days: match day_sel {
                    0 => DayFilter::All,
                    1 => DayFilter::WeekdaysOnly,
                    _ => DayFilter::WeekendsOnly,
                },
                from: TimeOfDay::new(fh, fm),
                to: TimeOfDay::new(th, tm),
                price: EnergyPrice::per_kilowatt_hour(cents as f64 / 100.0),
            },
        )
}

/// A contract mixing every tariff kind plus demand charge and fee, with the
/// mix chosen by `sel` bits.
fn contract_strategy() -> impl Strategy<Value = Contract> {
    (
        window_strategy(),
        window_strategy(),
        1u32..40,
        0u8..8,
        prop::collection::vec(0.01f64..0.40, 3..20),
        0u64..30 * 86_400,
    )
        .prop_map(|(w1, w2, base_cents, sel, strip, strip_start)| {
            let mut b = Contract::builder("prop").tariff(Tariff::TimeOfUse(TouTariff {
                windows: vec![w1, w2],
                base: EnergyPrice::per_kilowatt_hour(base_cents as f64 / 100.0),
            }));
            if sel & 1 != 0 {
                b = b.tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.03)));
            }
            if sel & 2 != 0 {
                let prices = PriceSeries::new(
                    SimTime::from_secs(strip_start),
                    Duration::from_hours(1.0),
                    strip
                        .iter()
                        .map(|p| EnergyPrice::per_kilowatt_hour(*p))
                        .collect(),
                )
                .unwrap();
                b = b.tariff(Tariff::dynamic(
                    prices,
                    EnergyPrice::per_kilowatt_hour(0.011),
                    EnergyPrice::per_kilowatt_hour(0.09),
                ));
            }
            if sel & 4 != 0 {
                b = b
                    .tariff(Tariff::Block(BlockTariff {
                        blocks: vec![
                            BlockStep {
                                up_to_kwh: Some(500_000.0),
                                price: EnergyPrice::per_kilowatt_hour(0.13),
                            },
                            BlockStep {
                                up_to_kwh: None,
                                price: EnergyPrice::per_kilowatt_hour(0.065),
                            },
                        ],
                    }))
                    .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(11.0)))
                    .monthly_fee(Money::from_dollars(750.0));
            }
            b.build().unwrap()
        })
}

fn calendars() -> Vec<Calendar> {
    vec![
        Calendar::default(),
        Calendar::new(Weekday::Wednesday, Month::June, 15).unwrap(),
        Calendar::new(Weekday::Sunday, Month::December, 31).unwrap(),
    ]
}

proptest! {
    /// The refactor-safety anchor: a `Precision::BitExact` engine (the
    /// default) still produces bills byte-identical to the interpreted
    /// path, for randomized contracts, loads, and calendars. This is the
    /// same contract `compiled_equivalence.rs` asserted before the
    /// segment-map refactor, restated against the explicit knob.
    #[test]
    fn bit_exact_engine_is_byte_identical_to_interpreter(
        contract in contract_strategy(),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let engine = BillingEngine::new(cal).with_precision(Precision::BitExact);
        let interpreted = engine.bill(&contract, &load).unwrap();
        let compiled = CompiledContract::compile(&cal, &contract, load.start(), load.end())
            .unwrap()
            .with_precision(Precision::BitExact)
            .bill(&load)
            .unwrap();
        prop_assert_eq!(interpreted, compiled);
    }

    /// `Precision::Fast` stays within the documented relative tolerance of
    /// `Precision::BitExact` on every line item, across random mixes of all
    /// four tariff kinds (TOU incl. wrap-midnight windows, fixed, dynamic,
    /// block) plus demand charges and fees.
    #[test]
    fn fast_bill_is_within_tolerance_of_bit_exact(
        contract in contract_strategy(),
        load in load_strategy(),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let exact = BillingEngine::new(cal)
            .with_precision(Precision::BitExact)
            .bill(&contract, &load)
            .unwrap();
        let fast = BillingEngine::new(cal)
            .with_precision(Precision::Fast)
            .bill(&contract, &load)
            .unwrap();
        assert_bills_close(&exact, &fast)?;
    }

    /// Wrap-midnight TOU windows (`to <= from`) under the fast path: the
    /// merged segment runs split across the day boundary exactly as the
    /// exact path's, so the vectorized replay stays within tolerance.
    #[test]
    fn fast_wrap_midnight_tou_is_within_tolerance(
        from_h in 12u8..24,
        to_h in 0u8..12,
        kw in prop::collection::vec(0.0f64..15_000.0, 24..400),
        start_hours in 0u64..200,
    ) {
        let window = TouWindow {
            months: None,
            days: DayFilter::All,
            from: TimeOfDay::new(from_h, 30),
            to: TimeOfDay::new(to_h, 30),
            price: EnergyPrice::per_kilowatt_hour(0.031),
        };
        prop_assert!(window.to <= window.from);
        let contract = Contract::builder("wrap")
            .tariff(Tariff::TimeOfUse(TouTariff {
                windows: vec![window],
                base: EnergyPrice::per_kilowatt_hour(0.12),
            }))
            .build()
            .unwrap();
        let load = Series::new(
            SimTime::from_secs(start_hours * 3_600),
            Duration::from_minutes(15.0),
            kw.into_iter().map(Power::from_kilowatts).collect(),
        )
        .unwrap();
        let cal = Calendar::default();
        let exact = BillingEngine::new(cal).bill(&contract, &load).unwrap();
        let fast = BillingEngine::new(cal)
            .with_precision(Precision::Fast)
            .bill(&contract, &load)
            .unwrap();
        assert_bills_close(&exact, &fast)?;
    }

    /// Month-straddling loads under the fast path: demand-charge peaks per
    /// month bill bit-equal (lane-max over finite values is associative) and
    /// block-tariff bucket sums stay within tolerance across the boundary.
    #[test]
    fn fast_month_straddling_load_is_within_tolerance(
        hours_before in 1u64..72,
        days_after in 1u64..70,
        kw in prop::collection::vec(100.0f64..18_000.0, 1..50),
        cal_idx in 0usize..3,
    ) {
        let cal = calendars()[cal_idx];
        let boundary = cal.next_month_start(SimTime::EPOCH);
        let hours_before = hours_before.min(boundary.as_secs() / 3_600);
        let start = boundary - Duration::from_hours(hours_before as f64);
        let span_secs = hours_before * 3_600 + days_after * 86_400;
        let step = Duration::from_minutes(15.0);
        let n = (span_secs / step.as_secs()) as usize;
        let values: Vec<Power> = (0..n)
            .map(|i| Power::from_kilowatts(kw[i % kw.len()]))
            .collect();
        let load = Series::new(start, step, values).unwrap();
        prop_assert!(load.start() < boundary && load.end() > boundary);
        let contract = Contract::builder("straddle")
            .tariff(Tariff::Block(BlockTariff {
                blocks: vec![
                    BlockStep {
                        up_to_kwh: Some(800_000.0),
                        price: EnergyPrice::per_kilowatt_hour(0.14),
                    },
                    BlockStep {
                        up_to_kwh: None,
                        price: EnergyPrice::per_kilowatt_hour(0.07),
                    },
                ],
            }))
            .tariff(Tariff::TimeOfUse(TouTariff::summer_peak(
                EnergyPrice::per_kilowatt_hour(0.29),
                EnergyPrice::per_kilowatt_hour(0.06),
            )))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .monthly_fee(Money::from_dollars(1_000.0))
            .build()
            .unwrap();
        let exact = BillingEngine::new(cal).bill(&contract, &load).unwrap();
        let fast = BillingEngine::new(cal)
            .with_precision(Precision::Fast)
            .bill(&contract, &load)
            .unwrap();
        assert_bills_close(&exact, &fast)?;
        // The demand-charge peak is a max, not a sum: fast must match it
        // bit-for-bit, not merely within tolerance.
        for (e, f) in exact.items.iter().zip(&fast.items) {
            if e.label.contains("demand") {
                prop_assert_eq!(e.amount, f.amount);
            }
        }
    }

    /// Patched delta chains: applying deltas to a fast kernel bills within
    /// tolerance of a bit-exact kernel patched identically — the reusable
    /// segment maps of unchanged pieces cannot leak stale prices.
    #[test]
    fn fast_patched_delta_chain_is_within_tolerance(
        contract in contract_strategy(),
        load in load_strategy(),
        fee in 0.0f64..5_000.0,
        demand_price in 1.0f64..30.0,
    ) {
        let cal = Calendar::default();
        let base = CompiledContract::compile(&cal, &contract, load.start(), load.end()).unwrap();
        let deltas = [
            ContractDelta::SetMonthlyFee(Money::from_dollars(fee)),
            ContractDelta::SetDemandCharge(Some(DemandCharge::monthly(
                DemandPrice::per_kilowatt_month(demand_price),
            ))),
        ];
        let mut exact = base.clone().with_precision(Precision::BitExact);
        let mut fast = base.with_precision(Precision::Fast);
        for delta in &deltas {
            // Warm the pre-patch maps so the patched kernels inherit them.
            let _ = fast.bill(&load).unwrap();
            exact = exact.patch(delta).unwrap();
            fast = fast.patch(delta).unwrap();
            assert_bills_close(&exact.bill(&load).unwrap(), &fast.bill(&load).unwrap())?;
        }
    }

    /// `bill_many` under `Precision::Fast`: the batch equals billing each
    /// load one at a time (same kernel, same maps), and repeated geometries
    /// hit the segment-map cache instead of rebuilding.
    #[test]
    fn fast_bill_many_matches_sequential_and_reuses_maps(
        contract in contract_strategy(),
        base in load_strategy(),
        scales in prop::collection::vec(0.1f64..3.0, 2..8),
    ) {
        let cal = Calendar::default();
        let engine = BillingEngine::new(cal).with_precision(Precision::Fast);
        // Scaled copies share (start, step, len): one geometry, many loads.
        let loads: Vec<PowerSeries> = scales.iter().map(|s| base.scale(*s)).collect();
        let batch = engine.bill_many(&contract, &loads).unwrap();
        prop_assert_eq!(batch.len(), loads.len());
        let kernel = engine
            .compile(&contract, base.start(), base.end())
            .unwrap();
        for (load, batched) in loads.iter().zip(&batch) {
            prop_assert_eq!(&kernel.bill(load).unwrap(), batched);
        }
        let (hits, misses) = kernel.segment_map_stats();
        // One miss per price timeline on first touch, hits thereafter.
        prop_assert!(
            hits >= misses * (loads.len() as u64 - 1),
            "expected geometry reuse: {hits} hits vs {misses} misses over {} loads",
            loads.len()
        );
    }
}
