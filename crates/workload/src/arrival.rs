//! Job arrival processes.
//!
//! Submissions follow a Poisson process whose rate is modulated by a diurnal
//! working-hours curve — users submit during the day, the queue drains
//! overnight. This rhythm is what gives SC load its daily texture even at
//! high utilization.

use crate::distributions::exponential;
use crate::{Result, WorkloadError};
use hpcgrid_units::{Duration, SimTime};
use rand::Rng;

/// Diurnal modulation factor in `[min_factor, 1]`: ~1 during working hours
/// (08:00–18:00), decaying to `min_factor` overnight.
pub fn diurnal_rate_factor(t: SimTime, min_factor: f64) -> f64 {
    let hour = (t.as_secs() % 86_400) as f64 / 3_600.0;
    let working = if (8.0..18.0).contains(&hour) {
        1.0
    } else {
        // Quadratic decay to the overnight floor within 4 h of working hours.
        let dist = if hour < 8.0 { 8.0 - hour } else { hour - 18.0 };
        let x = (dist / 4.0).min(1.0);
        1.0 - x * x
    };
    min_factor + (1.0 - min_factor) * working
}

/// Generate Poisson arrival times in `[start, end)` with base rate
/// `per_hour` (events/hour at peak) and diurnal thinning.
///
/// Uses the standard thinning algorithm: candidate arrivals at the peak rate,
/// each kept with probability equal to the local rate factor.
pub fn poisson_arrivals<R: Rng + ?Sized>(
    rng: &mut R,
    start: SimTime,
    end: SimTime,
    per_hour: f64,
    overnight_factor: f64,
) -> Result<Vec<SimTime>> {
    if per_hour <= 0.0 || !per_hour.is_finite() {
        return Err(WorkloadError::BadParameter(format!(
            "arrival rate must be positive, got {per_hour}"
        )));
    }
    if !(0.0..=1.0).contains(&overnight_factor) {
        return Err(WorkloadError::BadParameter(
            "overnight_factor must be in [0,1]".into(),
        ));
    }
    if end <= start {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut t = start;
    loop {
        let gap_hours = exponential(rng, per_hour);
        let gap = Duration::from_secs((gap_hours * 3600.0).ceil().max(1.0) as u64);
        t += gap;
        if t >= end {
            break;
        }
        let keep_p = diurnal_rate_factor(t, overnight_factor);
        if rng.gen_bool(keep_p.clamp(0.0, 1.0)) {
            out.push(t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diurnal_factor_shape() {
        let noon = SimTime::from_secs(12 * 3600);
        let midnight = SimTime::from_secs(2 * 3600);
        assert!(diurnal_rate_factor(noon, 0.2) > diurnal_rate_factor(midnight, 0.2));
        assert!((diurnal_rate_factor(noon, 0.2) - 1.0).abs() < 1e-12);
        assert!(diurnal_rate_factor(midnight, 0.2) >= 0.2);
    }

    #[test]
    fn arrivals_ordered_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let start = SimTime::EPOCH;
        let end = SimTime::from_days(7);
        let arr = poisson_arrivals(&mut rng, start, end, 5.0, 0.3).unwrap();
        assert!(!arr.is_empty());
        for w in arr.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arr.iter().all(|t| *t >= start && *t < end));
    }

    #[test]
    fn rate_scales_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let end = SimTime::from_days(14);
        let slow = poisson_arrivals(&mut rng, SimTime::EPOCH, end, 1.0, 0.5)
            .unwrap()
            .len();
        let fast = poisson_arrivals(&mut rng, SimTime::EPOCH, end, 10.0, 0.5)
            .unwrap()
            .len();
        assert!(fast > slow * 4, "fast={fast} slow={slow}");
    }

    #[test]
    fn daytime_has_more_arrivals_than_night() {
        let mut rng = StdRng::seed_from_u64(3);
        let arr =
            poisson_arrivals(&mut rng, SimTime::EPOCH, SimTime::from_days(30), 8.0, 0.1).unwrap();
        let day = arr
            .iter()
            .filter(|t| {
                let h = (t.as_secs() % 86_400) / 3600;
                (8..18).contains(&h)
            })
            .count();
        let night = arr.len() - day;
        // 10 working hours vs 14 off hours, but the rate is much higher.
        assert!(day > night, "day={day} night={night}");
    }

    #[test]
    fn parameter_validation() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(
            poisson_arrivals(&mut rng, SimTime::EPOCH, SimTime::from_days(1), 0.0, 0.5).is_err()
        );
        assert!(
            poisson_arrivals(&mut rng, SimTime::EPOCH, SimTime::from_days(1), 5.0, 1.5).is_err()
        );
        // Empty window is fine.
        let empty =
            poisson_arrivals(&mut rng, SimTime::from_days(1), SimTime::EPOCH, 5.0, 0.5).unwrap();
        assert!(empty.is_empty());
    }
}
