//! Per-job power-intensity profiles.
//!
//! A running job drives its nodes at some fraction of the idle→max power
//! span. Real applications have phases; we model a three-phase trapezoid
//! (ramp-in, steady, ramp-out) plus the flat-out benchmark profile.

use hpcgrid_units::Duration;
use serde::{Deserialize, Serialize};

/// A job's power-intensity profile over its runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PowerProfile {
    /// Constant intensity for the whole runtime.
    Constant(f64),
    /// Trapezoid: linear ramp from `floor` to `peak` over `ramp`, steady at
    /// `peak`, then ramp back down over `ramp`.
    Trapezoid {
        /// Starting/ending intensity.
        floor: f64,
        /// Steady-phase intensity.
        peak: f64,
        /// Ramp duration on each side.
        ramp: Duration,
    },
}

impl PowerProfile {
    /// The HPL-style benchmark profile: flat-out from start to finish.
    pub fn benchmark() -> PowerProfile {
        PowerProfile::Constant(1.0)
    }

    /// Intensity at `elapsed` into a run of `runtime`. Outside `[0, runtime)`
    /// the intensity is zero.
    pub fn intensity_at(&self, elapsed: Duration, runtime: Duration) -> f64 {
        if elapsed >= runtime {
            return 0.0;
        }
        match self {
            PowerProfile::Constant(i) => i.clamp(0.0, 1.0),
            PowerProfile::Trapezoid { floor, peak, ramp } => {
                let floor = floor.clamp(0.0, 1.0);
                let peak = peak.clamp(0.0, 1.0);
                let ramp_s = ramp.as_secs().min(runtime.as_secs() / 2).max(1);
                let e = elapsed.as_secs();
                let r = runtime.as_secs();
                let frac = if e < ramp_s {
                    e as f64 / ramp_s as f64
                } else if e >= r - ramp_s {
                    (r - e) as f64 / ramp_s as f64
                } else {
                    1.0
                };
                floor + (peak - floor) * frac
            }
        }
    }

    /// Mean intensity over the whole runtime (closed form).
    pub fn mean_intensity(&self, runtime: Duration) -> f64 {
        match self {
            PowerProfile::Constant(i) => i.clamp(0.0, 1.0),
            PowerProfile::Trapezoid { floor, peak, ramp } => {
                let floor = floor.clamp(0.0, 1.0);
                let peak = peak.clamp(0.0, 1.0);
                let r = runtime.as_secs().max(1) as f64;
                let ramp_s = ramp.as_secs().min(runtime.as_secs() / 2).max(1) as f64;
                // Two ramps average (floor+peak)/2 over 2·ramp; steady at peak.
                let steady = (r - 2.0 * ramp_s).max(0.0);
                ((floor + peak) / 2.0 * 2.0 * ramp_s + peak * steady) / r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_profile() {
        let p = PowerProfile::Constant(0.7);
        let rt = Duration::from_hours(1.0);
        assert_eq!(p.intensity_at(Duration::from_minutes(30.0), rt), 0.7);
        assert_eq!(p.intensity_at(rt, rt), 0.0); // finished
        assert_eq!(p.mean_intensity(rt), 0.7);
        // Out-of-range intensity clamps.
        assert_eq!(
            PowerProfile::Constant(1.8).intensity_at(Duration::ZERO, rt),
            1.0
        );
    }

    #[test]
    fn benchmark_is_flat_out() {
        let p = PowerProfile::benchmark();
        assert_eq!(p.mean_intensity(Duration::from_hours(4.0)), 1.0);
    }

    #[test]
    fn trapezoid_shape() {
        let p = PowerProfile::Trapezoid {
            floor: 0.2,
            peak: 1.0,
            ramp: Duration::from_minutes(10.0),
        };
        let rt = Duration::from_hours(1.0);
        assert!((p.intensity_at(Duration::ZERO, rt) - 0.2).abs() < 1e-9);
        assert!((p.intensity_at(Duration::from_minutes(5.0), rt) - 0.6).abs() < 1e-9);
        assert!((p.intensity_at(Duration::from_minutes(30.0), rt) - 1.0).abs() < 1e-9);
        assert!((p.intensity_at(Duration::from_minutes(55.0), rt) - 0.6).abs() < 1e-9);
        assert_eq!(p.intensity_at(rt, rt), 0.0);
    }

    #[test]
    fn trapezoid_mean_between_floor_and_peak() {
        let p = PowerProfile::Trapezoid {
            floor: 0.2,
            peak: 1.0,
            ramp: Duration::from_minutes(10.0),
        };
        let rt = Duration::from_hours(1.0);
        let mean = p.mean_intensity(rt);
        assert!(mean > 0.2 && mean < 1.0);
        // 2/6 of time ramping at mean 0.6, 4/6 steady at 1.0 → 0.8667.
        assert!((mean - (0.6 * (1.0 / 3.0) + 1.0 * (2.0 / 3.0))).abs() < 1e-9);
    }

    #[test]
    fn short_runtime_clamps_ramp() {
        let p = PowerProfile::Trapezoid {
            floor: 0.0,
            peak: 1.0,
            ramp: Duration::from_hours(10.0),
        };
        let rt = Duration::from_minutes(10.0);
        // Ramp clamps to half the runtime; profile is a pure triangle.
        let mid = p.intensity_at(Duration::from_minutes(5.0), rt);
        assert!((mid - 1.0).abs() < 1e-9);
        let mean = p.mean_intensity(rt);
        assert!((mean - 0.5).abs() < 1e-6);
    }
}
