//! Maintenance-window generation.
//!
//! §3.4: good-neighbor SCs report "maintenance periods, benchmarks and other
//! events which make their power consumption deviate significantly from
//! default operation". Maintenance windows drop the machine to its idle (or
//! off) floor; experiment E7 prices the imbalance cost of announcing vs not
//! announcing them.

use crate::{Result, WorkloadError};
use hpcgrid_timeseries::intervals::{Interval, IntervalSet};
use hpcgrid_units::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A recurring maintenance schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceSchedule {
    /// Interval between maintenance windows (e.g. 28 days).
    pub period: Duration,
    /// Length of each window (e.g. 12 h).
    pub window: Duration,
    /// Offset of the first window from the horizon start.
    pub first_at: Duration,
}

impl MaintenanceSchedule {
    /// Monthly 12-hour maintenance starting on day 14.
    pub fn reference_monthly() -> MaintenanceSchedule {
        MaintenanceSchedule {
            period: Duration::from_days(28),
            window: Duration::from_hours(12.0),
            first_at: Duration::from_days(14),
        }
    }

    /// Materialize the windows within `[start, end)`.
    pub fn windows(&self, start: SimTime, end: SimTime) -> Result<IntervalSet> {
        if self.period.is_zero() {
            return Err(WorkloadError::BadParameter(
                "maintenance period must be positive".into(),
            ));
        }
        if self.window >= self.period {
            return Err(WorkloadError::BadParameter(
                "maintenance window must be shorter than the period".into(),
            ));
        }
        let mut out = Vec::new();
        let mut t = start + self.first_at;
        while t < end {
            out.push(Interval::new(t, (t + self.window).min(end)));
            t += self.period;
        }
        Ok(IntervalSet::from_intervals(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_windows_materialize() {
        let sched = MaintenanceSchedule::reference_monthly();
        let windows = sched
            .windows(SimTime::EPOCH, SimTime::from_days(90))
            .unwrap();
        // Day 14, 42, 70 → three windows.
        assert_eq!(windows.intervals().len(), 3);
        assert_eq!(windows.total_duration(), Duration::from_hours(36.0));
        assert!(windows.contains(SimTime::from_days(14)));
        assert!(!windows.contains(SimTime::from_days(15)));
    }

    #[test]
    fn windows_clip_at_horizon_end() {
        let sched = MaintenanceSchedule {
            period: Duration::from_days(10),
            window: Duration::from_days(2),
            first_at: Duration::from_days(9),
        };
        let windows = sched
            .windows(SimTime::EPOCH, SimTime::from_days(10))
            .unwrap();
        assert_eq!(windows.intervals().len(), 1);
        assert_eq!(windows.total_duration(), Duration::from_days(1));
    }

    #[test]
    fn validation() {
        let bad = MaintenanceSchedule {
            period: Duration::ZERO,
            window: Duration::from_hours(1.0),
            first_at: Duration::ZERO,
        };
        assert!(bad.windows(SimTime::EPOCH, SimTime::from_days(1)).is_err());
        let bad2 = MaintenanceSchedule {
            period: Duration::from_hours(1.0),
            window: Duration::from_hours(2.0),
            first_at: Duration::ZERO,
        };
        assert!(bad2.windows(SimTime::EPOCH, SimTime::from_days(1)).is_err());
    }

    #[test]
    fn empty_horizon_no_windows() {
        let sched = MaintenanceSchedule::reference_monthly();
        let w = sched
            .windows(SimTime::EPOCH, SimTime::from_days(7))
            .unwrap();
        assert!(w.is_empty());
    }
}
