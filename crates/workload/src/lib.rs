//! # hpcgrid-workload
//!
//! Synthetic HPC workload generation.
//!
//! The surveyed sites' job traces are confidential, so experiments run on
//! synthetic workloads with the statistical features that drive electrical
//! behaviour: heavy-tailed job sizes and runtimes, Poisson arrivals with a
//! diurnal submission rhythm, per-job computational-intensity (power)
//! fractions, occasional full-machine benchmark runs (the "HPL spike" whose
//! announcement to the ESP the paper calls being a "good neighbor"), and
//! scheduled maintenance windows.
//!
//! * [`distributions`] — seeded samplers (normal, lognormal, exponential,
//!   bounded variants) built on `rand`'s uniform source;
//! * [`job`] — the job record consumed by `hpcgrid-scheduler`;
//! * [`arrival`] — Poisson arrival process with diurnal modulation;
//! * [`profile`] — per-job power-intensity profiles;
//! * [`trace`] — [`trace::WorkloadBuilder`], the one-stop generator;
//! * [`maintenance`] — maintenance-window generation.

#![warn(missing_docs)]

pub mod arrival;
pub mod distributions;
pub mod job;
pub mod maintenance;
pub mod profile;
pub mod swf;
pub mod trace;

pub use job::{Job, JobId, JobKind};
pub use trace::{JobTrace, WorkloadBuilder};

/// Errors from workload generation.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// Invalid generation parameter.
    BadParameter(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::BadParameter(d) => write!(f, "bad parameter: {d}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WorkloadError>;
