//! Seeded samplers built on `rand`'s uniform source.
//!
//! The workspace's offline dependency set includes `rand` but not
//! `rand_distr`, so the handful of distributions workload modelling needs
//! are implemented here directly: Box–Muller normals, lognormals,
//! inverse-CDF exponentials, and clamped/discretized variants.

use rand::Rng;

/// Sample a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample `N(mean, std_dev²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Sample a lognormal with the given parameters of the underlying normal.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Sample an exponential with rate `lambda` (mean `1/lambda`) by inverse CDF.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

/// Lognormal clamped into `[lo, hi]`.
pub fn lognormal_clamped<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    lognormal(rng, mu, sigma).clamp(lo, hi)
}

/// Sample a job node-count: a power-of-two biased discrete distribution in
/// `[1, max_nodes]`, reflecting the size mix of real HPC traces (many small
/// jobs, few very large ones).
pub fn job_node_count<R: Rng + ?Sized>(rng: &mut R, max_nodes: usize) -> usize {
    debug_assert!(max_nodes >= 1);
    let max_exp = (max_nodes as f64).log2().floor() as u32;
    // Geometric-ish over exponents: P(exp = k) ∝ 0.7^k.
    let mut exp = 0u32;
    while exp < max_exp && rng.gen_bool(0.45) {
        exp += 1;
    }
    let base = 1usize << exp;
    // Jitter within the octave.
    let hi = (base * 2).min(max_nodes.max(1));
    rng.gen_range(base..=hi.max(base)).min(max_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        // Exponential samples are non-negative.
        assert!((0..1000).all(|_| exponential(&mut r, 1.0) >= 0.0));
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| lognormal(&mut r, 0.0, 1.0)).collect();
        assert!(samples.iter().all(|x| *x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal should be right-skewed");
    }

    #[test]
    fn clamped_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = lognormal_clamped(&mut r, 0.0, 2.0, 0.5, 3.0);
            assert!((0.5..=3.0).contains(&x));
        }
    }

    #[test]
    fn node_counts_within_bounds_and_varied() {
        let mut r = rng();
        let max = 1024;
        let samples: Vec<usize> = (0..5000).map(|_| job_node_count(&mut r, max)).collect();
        assert!(samples.iter().all(|n| (1..=max).contains(n)));
        let small = samples.iter().filter(|n| **n <= 8).count();
        let large = samples.iter().filter(|n| **n > 256).count();
        assert!(small > large, "small jobs should dominate");
        assert!(samples.iter().any(|n| *n > 32), "some large jobs expected");
    }

    #[test]
    fn node_count_handles_tiny_machines() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(job_node_count(&mut r, 1), 1);
            assert!(job_node_count(&mut r, 3) <= 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(normal(&mut a, 0.0, 1.0), normal(&mut b, 0.0, 1.0));
        }
    }
}
