//! Workload trace generation: the one-stop [`WorkloadBuilder`].

use crate::arrival::poisson_arrivals;
use crate::distributions::{job_node_count, lognormal_clamped};
use crate::job::{Job, JobId, JobKind};
use hpcgrid_units::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A generated workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// Jobs sorted by submission time.
    jobs: Vec<Job>,
    /// Machine size the trace targets.
    pub machine_nodes: usize,
    /// Horizon covered by the trace.
    pub horizon: Duration,
}

impl JobTrace {
    /// Assemble a trace from parts (jobs are sorted by submit time; used by
    /// importers such as [`crate::swf`]).
    pub fn from_parts(mut jobs: Vec<Job>, machine_nodes: usize, horizon: Duration) -> JobTrace {
        jobs.sort_by_key(|j| (j.submit, j.id));
        JobTrace {
            jobs,
            machine_nodes,
            horizon,
        }
    }

    /// The jobs, sorted by submission time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total compute demand in node-seconds.
    pub fn total_node_seconds(&self) -> u64 {
        self.jobs.iter().map(Job::node_seconds).sum()
    }

    /// Offered load: demanded node-seconds over machine capacity across the
    /// horizon. Values near (or above) 1.0 saturate the scheduler.
    pub fn offered_load(&self) -> f64 {
        let capacity = self.machine_nodes as u64 * self.horizon.as_secs();
        if capacity == 0 {
            return 0.0;
        }
        self.total_node_seconds() as f64 / capacity as f64
    }

    /// Submission times of all benchmark jobs (the events a good-neighbor SC
    /// would announce).
    pub fn benchmark_submits(&self) -> Vec<SimTime> {
        self.jobs
            .iter()
            .filter(|j| j.kind == JobKind::Benchmark)
            .map(|j| j.submit)
            .collect()
    }
}

/// Builder for synthetic workload traces.
///
/// All knobs have defaults producing a busy mid-size machine; invalid values
/// are clamped into their sane ranges so `build` is infallible.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    seed: u64,
    nodes: usize,
    days: u64,
    arrivals_per_hour: f64,
    overnight_factor: f64,
    mean_runtime_hours: f64,
    runtime_sigma: f64,
    walltime_slack: f64,
    deferrable_fraction: f64,
    benchmark_every_days: Option<u64>,
    max_job_nodes: Option<usize>,
}

impl WorkloadBuilder {
    /// Start a builder with the given RNG seed.
    pub fn new(seed: u64) -> WorkloadBuilder {
        WorkloadBuilder {
            seed,
            nodes: 1_024,
            days: 7,
            arrivals_per_hour: 12.0,
            overnight_factor: 0.3,
            mean_runtime_hours: 2.5,
            runtime_sigma: 1.0,
            walltime_slack: 1.5,
            deferrable_fraction: 0.2,
            benchmark_every_days: None,
            max_job_nodes: None,
        }
    }

    /// Machine size in nodes (≥ 1).
    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Horizon in days (≥ 1).
    pub fn days(mut self, d: u64) -> Self {
        self.days = d.max(1);
        self
    }

    /// Peak submission rate (jobs/hour, clamped positive).
    pub fn arrivals_per_hour(mut self, r: f64) -> Self {
        self.arrivals_per_hour = if r.is_finite() && r > 0.0 { r } else { 1.0 };
        self
    }

    /// Overnight submission-rate floor in `[0, 1]`.
    pub fn overnight_factor(mut self, f: f64) -> Self {
        self.overnight_factor = f.clamp(0.0, 1.0);
        self
    }

    /// Mean job runtime in hours (clamped positive).
    pub fn mean_runtime_hours(mut self, h: f64) -> Self {
        self.mean_runtime_hours = if h.is_finite() && h > 0.0 { h } else { 1.0 };
        self
    }

    /// Runtime lognormal sigma (spread), clamped into `[0, 3]`.
    pub fn runtime_sigma(mut self, s: f64) -> Self {
        self.runtime_sigma = s.clamp(0.0, 3.0);
        self
    }

    /// Fraction of jobs flagged deferrable (shiftable by DR), `[0, 1]`.
    pub fn deferrable_fraction(mut self, f: f64) -> Self {
        self.deferrable_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Schedule a full-machine benchmark every `d` days (HPL-style event).
    pub fn benchmark_every_days(mut self, d: u64) -> Self {
        self.benchmark_every_days = Some(d.max(1));
        self
    }

    /// Cap regular jobs at `n` nodes (clamped to the machine size).
    /// Benchmarks still use the whole machine.
    pub fn max_job_nodes(mut self, n: usize) -> Self {
        self.max_job_nodes = Some(n.max(1));
        self
    }

    /// Generate the trace.
    pub fn build(self) -> JobTrace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let start = SimTime::EPOCH;
        let horizon = Duration::from_days(self.days);
        let end = start + horizon;
        let submits = poisson_arrivals(
            &mut rng,
            start,
            end,
            self.arrivals_per_hour,
            self.overnight_factor,
        )
        .expect("builder clamps parameters into valid ranges");

        // Lognormal runtime with the requested mean: mean = exp(mu + s²/2).
        let sigma = self.runtime_sigma;
        let mu = self.mean_runtime_hours.ln() - sigma * sigma / 2.0;

        let mut jobs: Vec<Job> = Vec::with_capacity(submits.len() + self.days as usize);
        let mut next_id = 0u64;
        let size_cap = self.max_job_nodes.unwrap_or(self.nodes).min(self.nodes);
        for submit in submits {
            let nodes = job_node_count(&mut rng, size_cap);
            let runtime_h = lognormal_clamped(&mut rng, mu, sigma, 0.05, 48.0);
            let runtime = Duration::from_hours(runtime_h);
            let walltime = Duration::from_hours(runtime_h * self.walltime_slack);
            let intensity = rng.gen_range(0.4..1.0);
            let kind = if rng.gen_bool(self.deferrable_fraction) {
                JobKind::Deferrable
            } else {
                JobKind::Regular
            };
            jobs.push(Job {
                id: JobId(next_id),
                submit,
                nodes,
                walltime,
                runtime,
                intensity,
                kind,
            });
            next_id += 1;
        }

        // Periodic full-machine benchmarks, submitted at 06:00 of their day.
        if let Some(every) = self.benchmark_every_days {
            let mut day = every;
            while day < self.days {
                let submit = SimTime::from_days(day) + Duration::from_hours(6.0);
                let runtime = Duration::from_hours(4.0);
                jobs.push(Job {
                    id: JobId(next_id),
                    submit,
                    nodes: self.nodes,
                    walltime: runtime * 2,
                    runtime,
                    intensity: 1.0,
                    kind: JobKind::Benchmark,
                });
                next_id += 1;
                day += every;
            }
        }

        jobs.sort_by_key(|j| (j.submit, j.id));
        JobTrace {
            jobs,
            machine_nodes: self.nodes,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_consistent_jobs() {
        let trace = WorkloadBuilder::new(1).nodes(512).days(7).build();
        assert!(!trace.is_empty());
        for j in trace.jobs() {
            assert!(j.is_consistent(), "{j:?}");
            assert!(j.nodes <= 512);
            assert!(j.submit < SimTime::from_days(7));
        }
        // Sorted by submission.
        for w in trace.jobs().windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WorkloadBuilder::new(9).days(3).build();
        let b = WorkloadBuilder::new(9).days(3).build();
        let c = WorkloadBuilder::new(10).days(3).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn offered_load_scales_with_arrival_rate() {
        let light = WorkloadBuilder::new(5)
            .days(7)
            .arrivals_per_hour(2.0)
            .build();
        let heavy = WorkloadBuilder::new(5)
            .days(7)
            .arrivals_per_hour(30.0)
            .build();
        assert!(heavy.offered_load() > light.offered_load());
        assert!(light.offered_load() > 0.0);
    }

    #[test]
    fn benchmarks_are_full_machine() {
        let trace = WorkloadBuilder::new(2)
            .nodes(256)
            .days(14)
            .benchmark_every_days(7)
            .build();
        let benches: Vec<&Job> = trace
            .jobs()
            .iter()
            .filter(|j| j.kind == JobKind::Benchmark)
            .collect();
        assert_eq!(benches.len(), 1); // day 7 only (day 14 = end)
        assert_eq!(benches[0].nodes, 256);
        assert_eq!(benches[0].intensity, 1.0);
        assert_eq!(trace.benchmark_submits().len(), 1);
    }

    #[test]
    fn deferrable_fraction_respected_roughly() {
        let trace = WorkloadBuilder::new(3)
            .days(30)
            .deferrable_fraction(0.5)
            .build();
        let def = trace
            .jobs()
            .iter()
            .filter(|j| j.kind == JobKind::Deferrable)
            .count();
        let frac = def as f64 / trace.len() as f64;
        assert!((0.35..0.65).contains(&frac), "frac={frac}");
    }

    #[test]
    fn builder_clamps_bad_values() {
        let trace = WorkloadBuilder::new(4)
            .nodes(0)
            .days(0)
            .arrivals_per_hour(-3.0)
            .mean_runtime_hours(f64::NAN)
            .runtime_sigma(99.0)
            .deferrable_fraction(7.0)
            .build();
        assert_eq!(trace.machine_nodes, 1);
        assert_eq!(trace.horizon, Duration::from_days(1));
        for j in trace.jobs() {
            assert!(j.is_consistent());
        }
    }
}
