//! The job record consumed by the scheduler simulator.

use hpcgrid_units::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Unique job identifier within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// The kind of job, which determines its power profile and schedulability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// A normal user job.
    Regular,
    /// A full-machine benchmark run (HPL-style): maximum intensity, the
    /// load events §3.4 says good-neighbor sites announce to their ESP.
    Benchmark,
    /// A deadline-insensitive batch job the DR optimizer may shift.
    Deferrable,
}

/// One batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Submission time.
    pub submit: SimTime,
    /// Nodes requested.
    pub nodes: usize,
    /// Requested walltime (the scheduler's planning horizon for the job).
    pub walltime: Duration,
    /// Actual runtime (≤ walltime; known only when the job completes).
    pub runtime: Duration,
    /// Computational intensity in `[0, 1]`: fraction of the idle→max power
    /// span the job drives while running.
    pub intensity: f64,
    /// Job kind.
    pub kind: JobKind,
}

impl Job {
    /// Node-seconds of actual compute (`nodes × runtime`).
    pub fn node_seconds(&self) -> u64 {
        self.nodes as u64 * self.runtime.as_secs()
    }

    /// Node-seconds of the request (`nodes × walltime`).
    pub fn requested_node_seconds(&self) -> u64 {
        self.nodes as u64 * self.walltime.as_secs()
    }

    /// True if the runtime fits the request (always true for generated
    /// traces; checked as an invariant).
    pub fn is_consistent(&self) -> bool {
        self.runtime <= self.walltime
            && self.nodes > 0
            && (0.0..=1.0).contains(&self.intensity)
            && !self.runtime.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: JobId(1),
            submit: SimTime::EPOCH,
            nodes: 4,
            walltime: Duration::from_hours(2.0),
            runtime: Duration::from_hours(1.5),
            intensity: 0.8,
            kind: JobKind::Regular,
        }
    }

    #[test]
    fn node_seconds() {
        let j = job();
        assert_eq!(j.node_seconds(), 4 * 5400);
        assert_eq!(j.requested_node_seconds(), 4 * 7200);
    }

    #[test]
    fn consistency_checks() {
        assert!(job().is_consistent());
        let mut j = job();
        j.runtime = Duration::from_hours(3.0);
        assert!(!j.is_consistent());
        let mut j = job();
        j.nodes = 0;
        assert!(!j.is_consistent());
        let mut j = job();
        j.intensity = 1.5;
        assert!(!j.is_consistent());
        let mut j = job();
        j.runtime = Duration::ZERO;
        assert!(!j.is_consistent());
    }

    #[test]
    fn id_display() {
        assert_eq!(JobId(42).to_string(), "job#42");
    }
}
