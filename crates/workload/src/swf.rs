//! Standard Workload Format (SWF) import/export.
//!
//! The Parallel Workloads Archive's SWF is the lingua franca of HPC
//! scheduling research: one job per line, 18 whitespace-separated fields,
//! `;` comment lines. Importing real traces lets every experiment in this
//! workspace run on production workloads instead of synthetic ones; the
//! exporter makes our synthetic traces consumable by other simulators.
//!
//! Field mapping (1-based SWF field → [`Job`]):
//!
//! | SWF | meaning | mapped to |
//! |---|---|---|
//! | 1 | job number | `id` |
//! | 2 | submit time (s) | `submit` |
//! | 4 | run time (s) | `runtime` |
//! | 5 | allocated processors | `nodes` |
//! | 9 | requested time (s) | `walltime` (falls back to runtime) |
//!
//! Other fields are preserved on export with the conventional `-1`
//! (unknown) value. Jobs with non-positive runtime or zero processors are
//! skipped on import (they are cancelled/failed entries in real traces).

use crate::job::{Job, JobId, JobKind};
use crate::trace::JobTrace;
use crate::{Result, WorkloadError};
use hpcgrid_units::{Duration, SimTime};
use std::fmt::Write as _;

/// Parse an SWF document into a trace for a machine of `machine_nodes`.
///
/// Jobs requesting more than `machine_nodes` processors are clamped (some
/// archive traces contain oversized entries); `intensity` defaults to 0.8
/// since SWF carries no power information.
pub fn parse_swf(input: &str, machine_nodes: usize) -> Result<JobTrace> {
    if machine_nodes == 0 {
        return Err(WorkloadError::BadParameter(
            "machine must have at least one node".into(),
        ));
    }
    let mut jobs: Vec<Job> = Vec::new();
    let mut horizon_end = 0u64;
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(WorkloadError::BadParameter(format!(
                "line {}: SWF needs at least 5 fields, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        let parse_i64 = |i: usize, what: &str| -> Result<i64> {
            fields.get(i).unwrap_or(&"-1").parse::<i64>().map_err(|_| {
                WorkloadError::BadParameter(format!(
                    "line {}: field {} ({what}) is not an integer",
                    lineno + 1,
                    i + 1
                ))
            })
        };
        let id = parse_i64(0, "job number")?;
        let submit = parse_i64(1, "submit time")?;
        let runtime = parse_i64(3, "run time")?;
        let procs = parse_i64(4, "allocated processors")?;
        let requested = if fields.len() > 8 {
            parse_i64(8, "requested time")?
        } else {
            -1
        };
        if runtime <= 0 || procs <= 0 {
            continue; // cancelled / failed entry
        }
        if submit < 0 {
            return Err(WorkloadError::BadParameter(format!(
                "line {}: negative submit time",
                lineno + 1
            )));
        }
        let runtime_s = runtime as u64;
        let walltime_s = if requested > 0 {
            (requested as u64).max(runtime_s)
        } else {
            runtime_s
        };
        let job = Job {
            id: JobId(id.max(0) as u64),
            submit: SimTime::from_secs(submit as u64),
            nodes: (procs as usize).min(machine_nodes),
            walltime: Duration::from_secs(walltime_s),
            runtime: Duration::from_secs(runtime_s),
            intensity: 0.8,
            kind: JobKind::Regular,
        };
        horizon_end = horizon_end.max(job.submit.as_secs() + walltime_s);
        jobs.push(job);
    }
    jobs.sort_by_key(|j| (j.submit, j.id));
    let horizon = Duration::from_secs(horizon_end.max(1));
    Ok(JobTrace::from_parts(jobs, machine_nodes, horizon))
}

/// Serialize a trace to SWF (with a header comment block).
pub fn to_swf(trace: &JobTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; SWF export from hpcgrid-workload");
    let _ = writeln!(out, "; MaxNodes: {}", trace.machine_nodes);
    let _ = writeln!(out, "; MaxJobs: {}", trace.len());
    for j in trace.jobs() {
        // 18 fields; unknowns are -1 per the SWF convention. Field order:
        // id submit wait run procs avg_cpu mem req_procs req_time req_mem
        // status user group app queue partition prev_job think_time
        let _ = writeln!(
            out,
            "{} {} -1 {} {} -1 -1 {} {} -1 1 -1 -1 -1 -1 -1 -1 -1",
            j.id.0,
            j.submit.as_secs(),
            j.runtime.as_secs(),
            j.nodes,
            j.nodes,
            j.walltime.as_secs(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::WorkloadBuilder;

    const SAMPLE: &str = "\
; Sample SWF fragment
; UnixStartTime: 0
1 0 5 3600 16 -1 -1 16 7200 -1 1 -1 -1 -1 -1 -1 -1 -1
2 600 0 1800 4 -1 -1 4 1800 -1 1 -1 -1 -1 -1 -1 -1 -1
3 1200 0 -1 8 -1 -1 8 3600 -1 0 -1 -1 -1 -1 -1 -1 -1
4 1800 0 900 0 -1 -1 0 900 -1 0 -1 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn parses_jobs_and_skips_cancelled() {
        let trace = parse_swf(SAMPLE, 64).unwrap();
        // Jobs 3 (runtime -1) and 4 (0 procs) are skipped.
        assert_eq!(trace.len(), 2);
        let j1 = &trace.jobs()[0];
        assert_eq!(j1.id, JobId(1));
        assert_eq!(j1.submit, SimTime::EPOCH);
        assert_eq!(j1.runtime, Duration::from_secs(3600));
        assert_eq!(j1.walltime, Duration::from_secs(7200));
        assert_eq!(j1.nodes, 16);
        assert!(j1.is_consistent());
        let j2 = &trace.jobs()[1];
        assert_eq!(j2.walltime, Duration::from_secs(1800));
    }

    #[test]
    fn oversized_jobs_clamp_to_machine() {
        let trace = parse_swf(SAMPLE, 8).unwrap();
        assert_eq!(trace.jobs()[0].nodes, 8);
    }

    #[test]
    fn requested_time_shorter_than_runtime_is_raised() {
        let line = "1 0 0 3600 4 -1 -1 4 60 -1 1 -1 -1 -1 -1 -1 -1 -1";
        let trace = parse_swf(line, 64).unwrap();
        // Walltime must be >= runtime for consistency.
        assert_eq!(trace.jobs()[0].walltime, Duration::from_secs(3600));
        assert!(trace.jobs()[0].is_consistent());
    }

    #[test]
    fn bad_input_errors() {
        assert!(parse_swf("1 2 3", 64).is_err()); // too few fields
        assert!(parse_swf("a b c d e", 64).is_err()); // non-numeric
        assert!(parse_swf("1 -5 0 100 4", 64).is_err()); // negative submit
        assert!(parse_swf(SAMPLE, 0).is_err()); // zero-node machine
    }

    #[test]
    fn round_trip_through_swf() {
        let original = WorkloadBuilder::new(5)
            .nodes(128)
            .days(2)
            .arrivals_per_hour(6.0)
            .build();
        let text = to_swf(&original);
        let parsed = parse_swf(&text, 128).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.runtime, b.runtime);
            assert_eq!(a.walltime, b.walltime);
        }
        // Scheduling the parsed trace is covered by the workspace
        // integration tests (the scheduler is a downstream crate).
    }

    #[test]
    fn export_has_header_and_field_count() {
        let trace = WorkloadBuilder::new(1).nodes(32).days(1).build();
        let text = to_swf(&trace);
        assert!(text.starts_with("; SWF export"));
        let first_job_line = text.lines().find(|l| !l.starts_with(';')).unwrap();
        assert_eq!(first_job_line.split_whitespace().count(), 18);
    }
}
