//! `hpcgrid` — command-line front end to the toolkit.
//!
//! ```text
//! hpcgrid typology                        # print the Figure 1 typology tree
//! hpcgrid survey table1|table2|claims     # print the survey artifacts
//! hpcgrid simulate [--nodes N] [--days D] [--seed S] [--policy fcfs|easy]
//! hpcgrid bill     [simulate flags] [--tariff $/kWh] [--demand-charge $/kW-mo]
//!                  [--powerband-upper kW --powerband-penalty $/kWh]
//! hpcgrid report   [bill flags]           # bill + §4 recommendations
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--key value` pairs).

use hpcgrid::core::compare;
use hpcgrid::core::report;
use hpcgrid::core::survey::analysis::{discrepancies, rnp_distribution};
use hpcgrid::core::survey::coding::render_table2;
use hpcgrid::core::survey::corpus::{ProseFacts, SurveyCorpus};
use hpcgrid::core::typology::Typology;
use hpcgrid::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> &'static str {
    "hpcgrid — SC/ESP contract analysis toolkit (ICPP 2019 reproduction)

USAGE:
  hpcgrid typology
  hpcgrid survey <table1|table2|claims>
  hpcgrid simulate [--nodes N] [--days D] [--seed S] [--policy fcfs|easy]
  hpcgrid bill     [simulate flags] [--tariff $/kWh] [--demand-charge $/kW-month]
                   [--powerband-upper kW --powerband-penalty $/kWh]
  hpcgrid report   [bill flags]
  hpcgrid compare  [simulate flags]       # rank standard contract shapes on the load
  hpcgrid help

DEFAULTS: --nodes 512 --days 7 --seed 42 --policy easy --tariff 0.07
          --demand-charge 12.0 (omit components by passing 0)"
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(rest: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < rest.len() {
            let key = &rest[i];
            if !key.starts_with("--") {
                return Err(format!("unexpected argument '{key}'"));
            }
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("flag '{key}' needs a value"))?;
            flags.insert(key.trim_start_matches("--").to_string(), value.clone());
            i += 2;
        }
        Ok(Args { flags })
    }

    fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.flags.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got '{v}'")),
            None => Ok(default),
        }
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got '{v}'")),
            None => Ok(default),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn build_site(nodes: usize) -> Result<SiteSpec, String> {
    SiteSpec::new(
        "cli-site",
        hpcgrid::facility::site::Country::UnitedStates,
        nodes,
        hpcgrid::facility::node::NodeSpec::reference_hpc(),
        1.1,
        1.35,
        Power::from_kilowatts(nodes as f64 * 0.55 * 1.1 + 100.0),
        Power::from_kilowatts(20.0),
    )
    .map_err(|e| e.to_string())
}

fn run_simulation(
    args: &Args,
) -> Result<
    (
        SiteSpec,
        hpcgrid::scheduler::metrics::SimOutcome,
        PowerSeries,
    ),
    String,
> {
    let nodes = args.get_u64("nodes", 512)? as usize;
    let days = args.get_u64("days", 7)?;
    let seed = args.get_u64("seed", 42)?;
    let policy = match args.get_str("policy", "easy").as_str() {
        "fcfs" => Policy::Fcfs,
        "easy" => Policy::EasyBackfill,
        other => return Err(format!("unknown policy '{other}' (use fcfs|easy)")),
    };
    let site = build_site(nodes)?;
    let trace = WorkloadBuilder::new(seed).nodes(nodes).days(days).build();
    let outcome = ScheduleSimulator::new(nodes, policy)
        .try_run(&trace)
        .map_err(|e| e.to_string())?;
    let load = outcome.to_load_series(&site);
    Ok((site, outcome, load))
}

fn build_contract(args: &Args) -> Result<Contract, String> {
    let tariff = args.get_f64("tariff", 0.07)?;
    let dc = args.get_f64("demand-charge", 12.0)?;
    let pb_upper = args.get_f64("powerband-upper", 0.0)?;
    let pb_penalty = args.get_f64("powerband-penalty", 0.35)?;
    let mut b = Contract::builder("cli-contract").tariff(Tariff::fixed(
        EnergyPrice::try_per_kilowatt_hour(tariff).map_err(|e| e.to_string())?,
    ));
    if dc > 0.0 {
        b = b.demand_charge(DemandCharge::monthly(
            DemandPrice::try_per_kilowatt_month(dc).map_err(|e| e.to_string())?,
        ));
    }
    if pb_upper > 0.0 {
        b = b.powerband(Powerband::ceiling(
            Power::from_kilowatts(pb_upper),
            EnergyPrice::try_per_kilowatt_hour(pb_penalty).map_err(|e| e.to_string())?,
        ));
    }
    b.build().map_err(|e| e.to_string())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let (site, outcome, load) = run_simulation(args)?;
    println!(
        "site: {} nodes, feeder {}",
        site.node_count, site.feeder_rating
    );
    println!("jobs completed:   {}", outcome.records().len());
    println!("utilization:      {:.1}%", outcome.utilization() * 100.0);
    println!("mean wait:        {}", outcome.mean_wait());
    println!("mean slowdown:    {:.2}", outcome.mean_bounded_slowdown());
    println!("metered energy:   {}", load.total_energy());
    println!(
        "metered peak:     {}",
        load.peak().map_err(|e| e.to_string())?
    );
    let stats = hpcgrid::timeseries::stats::load_stats(&load).map_err(|e| e.to_string())?;
    println!("peak-to-average:  {:.2}", stats.peak_to_average);
    println!("max ramp:         {:.0} kW/h", stats.max_ramp_kw_per_hour);
    Ok(())
}

fn cmd_bill(args: &Args) -> Result<(), String> {
    let (_, _, load) = run_simulation(args)?;
    let contract = build_contract(args)?;
    let bill = BillingEngine::new(Calendar::default())
        .bill(&contract, &load)
        .map_err(|e| e.to_string())?;
    print!("{}", bill.render());
    println!(
        "\nkWh-domain share: {:.1}%",
        (1.0 - bill.demand_share()) * 100.0
    );
    println!("kW-domain share:  {:.1}%", bill.demand_share() * 100.0);
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let (_, _, load) = run_simulation(args)?;
    let contract = build_contract(args)?;
    let r = report::generate("cli-site", &contract, &load, &Calendar::default())
        .map_err(|e| e.to_string())?;
    print!("{}", r.render());
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let (_, _, load) = run_simulation(args)?;
    let peak = load.peak().map_err(|e| e.to_string())?;
    let candidates = vec![
        Contract::builder("flat-rate")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.085)))
            .build()
            .map_err(|e| e.to_string())?,
        Contract::builder("fixed+demand-charge")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.06)))
            .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
            .build()
            .map_err(|e| e.to_string())?,
        Contract::builder("day-night")
            .tariff(Tariff::day_night(
                EnergyPrice::per_kilowatt_hour(0.11),
                EnergyPrice::per_kilowatt_hour(0.05),
            ))
            .build()
            .map_err(|e| e.to_string())?,
        Contract::builder("fixed+powerband")
            .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.065)))
            .powerband(Powerband::ceiling(
                peak * 0.9,
                EnergyPrice::per_kilowatt_hour(0.35),
            ))
            .build()
            .map_err(|e| e.to_string())?,
    ];
    let report =
        compare::compare(&candidates, &load, &Calendar::default()).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    println!("shopping value (worst → best): {}", report.shopping_value());
    let flattening = compare::flattening_value(&candidates[1], &load, &Calendar::default())
        .map_err(|e| e.to_string())?;
    println!("perfect-flattening value under the demand-charge contract: {flattening}");
    Ok(())
}

fn cmd_survey(which: &str) -> Result<(), String> {
    let corpus = SurveyCorpus::published();
    match which {
        "table1" => {
            for s in SurveyCorpus::interview_sites() {
                println!("{:<55} {}", s.name, s.country);
            }
        }
        "table2" => print!("{}", render_table2(&corpus)),
        "claims" => {
            let facts = ProseFacts::published();
            println!("RNP distribution:");
            for (rnp, n) in rnp_distribution(&corpus) {
                println!("  {:<10} {n}/10", rnp.label());
            }
            println!("\ntext-vs-table discrepancies:");
            for d in discrepancies(&corpus, &facts) {
                println!(
                    "  {:<24} table {} vs text {}",
                    d.kind.label(),
                    d.table_count,
                    d.text_count
                );
            }
        }
        other => {
            return Err(format!(
                "unknown survey artifact '{other}' (table1|table2|claims)"
            ))
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        println!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "typology" => {
            print!("{}", Typology::render());
            Ok(())
        }
        "survey" => match argv.get(1) {
            Some(which) => cmd_survey(which),
            None => Err("survey needs an artifact: table1|table2|claims".into()),
        },
        "simulate" => Args::parse(&argv[1..]).and_then(|a| cmd_simulate(&a)),
        "bill" => Args::parse(&argv[1..]).and_then(|a| cmd_bill(&a)),
        "report" => Args::parse(&argv[1..]).and_then(|a| cmd_report(&a)),
        "compare" => Args::parse(&argv[1..]).and_then(|a| cmd_compare(&a)),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
