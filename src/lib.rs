//! # hpcgrid — facade crate
//!
//! Umbrella crate re-exporting the whole `hpcgrid` workspace: a
//! production-oriented reproduction of *"An Analysis of Contracts and
//! Relationships between Supercomputing Centers and Electricity Service
//! Providers"* (ICPP 2019 Workshops).
//!
//! The toolkit models, simulates, and analyzes:
//!
//! * **contracts** between supercomputing centers (SCs) and electricity
//!   service providers (ESPs) — the paper's contract typology as a typed,
//!   executable billing engine ([`core`]), batch or streamed one sample at
//!   a time across sharded meter fleets ([`core::fleet`]), with contract
//!   renegotiations recorded as event-sourced revision streams and billed
//!   as-of their effective dates ([`core::ledger`]);
//! * the **survey corpus** of ten SC sites and its qualitative analysis
//!   (Tables 1–2, Figure 1 of the paper);
//! * the **substrates** needed to exercise those contracts quantitatively:
//!   a grid/market simulator ([`grid`]), an SC facility model ([`facility`]),
//!   synthetic HPC workloads ([`workload`]), a power-aware job scheduler
//!   ([`scheduler`]), and demand-response programs and procurement auctions
//!   ([`dr`]);
//! * the **sweep orchestration engine** ([`engine`]): deterministic,
//!   fault-isolated scenario execution with content-addressed result
//!   caching, used by the experiment binaries.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use hpcgrid::prelude::*;
//!
//! // A 12 MW supercomputing facility running a synthetic workload...
//! let site = SiteSpec::reference_large();
//! let trace = WorkloadBuilder::new(42).nodes(site.node_count).days(7).build();
//! let mut sim = ScheduleSimulator::new(site.node_count, Policy::Fcfs);
//! let outcome = sim.run(&trace);
//! let load = outcome.to_load_series(&site);
//!
//! // ...billed under a contract drawn from the paper's typology.
//! let contract = Contract::builder("demo")
//!     .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.06)))
//!     .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
//!     .build()
//!     .unwrap();
//! let bill = BillingEngine::new(Calendar::default()).bill(&contract, &load).unwrap();
//! assert!(bill.total().is_positive());
//! ```

pub use hpcgrid_core as core;
pub use hpcgrid_dr as dr;
pub use hpcgrid_engine as engine;
pub use hpcgrid_facility as facility;
pub use hpcgrid_grid as grid;
pub use hpcgrid_scheduler as scheduler;
pub use hpcgrid_timeseries as timeseries;
pub use hpcgrid_units as units;
pub use hpcgrid_workload as workload;

/// Commonly used items across the workspace, for glob import.
pub mod prelude {
    pub use hpcgrid_core::accrual::{AccrualSnapshot, BillAccrual};
    pub use hpcgrid_core::billing::{Bill, BillingEngine, Precision};
    pub use hpcgrid_core::checkpoint::{CheckpointStore, FleetCheckpoint};
    pub use hpcgrid_core::compiled::CompiledContract;
    pub use hpcgrid_core::contract::{Contract, ContractBuilder, ContractDelta};
    pub use hpcgrid_core::demand_charge::DemandCharge;
    pub use hpcgrid_core::fingerprint::ComponentFingerprint;
    pub use hpcgrid_core::fleet::{
        FleetStats, FleetTickReport, MeterFleet, MeterId, Sample, TickFrame,
    };
    pub use hpcgrid_core::ledger::{
        AppendOutcome, AsOfBill, BillSlice, ContractId, ContractLedger, LedgerEvent,
    };
    pub use hpcgrid_core::powerband::Powerband;
    pub use hpcgrid_core::survey::corpus::SurveyCorpus;
    pub use hpcgrid_core::tariff::Tariff;
    pub use hpcgrid_core::typology::{ContractComponentKind, Typology};
    pub use hpcgrid_engine::{
        FailpointSet, ResultCache, RetryPolicy, RunJournal, RunReport, ScenarioError, ScenarioSpec,
        SweepRunner,
    };
    pub use hpcgrid_facility::site::SiteSpec;
    pub use hpcgrid_scheduler::policy::Policy;
    pub use hpcgrid_scheduler::sim::ScheduleSimulator;
    pub use hpcgrid_timeseries::series::{PowerSeries, PriceSeries};
    pub use hpcgrid_units::{
        Calendar, DemandPrice, Duration, Energy, EnergyPrice, Money, Month, Power, Ratio, SimTime,
        TimeOfDay, Weekday,
    };
    pub use hpcgrid_workload::trace::WorkloadBuilder;
}
