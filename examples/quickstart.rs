//! Quickstart: simulate a week of supercomputer operation and bill it
//! under a survey-typical contract.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hpcgrid::prelude::*;

fn main() {
    // 1. A supercomputing facility: 512 nodes behind a 1 MW feeder.
    let site = SiteSpec::new(
        "quickstart-site",
        hpcgrid::facility::site::Country::Germany,
        512,
        hpcgrid::facility::node::NodeSpec::reference_hpc(),
        1.1,  // PUE at full load
        1.35, // PUE at idle
        Power::from_megawatts(1.0),
        Power::from_kilowatts(20.0),
    )
    .expect("valid site");
    println!("site: {} ({:?})", site.name, site.country);
    println!("  peak facility power: {}", site.peak_facility_power());
    println!("  idle floor:          {}", site.idle_facility_power());

    // 2. A week of synthetic HPC workload.
    let trace = WorkloadBuilder::new(42)
        .nodes(site.node_count)
        .days(7)
        .arrivals_per_hour(18.0)
        .build();
    println!(
        "\nworkload: {} jobs, offered load {:.2}",
        trace.len(),
        trace.offered_load()
    );

    // 3. Schedule it with EASY backfill and meter the facility load.
    let mut sim = ScheduleSimulator::new(site.node_count, Policy::EasyBackfill);
    let outcome = sim.run(&trace);
    let load = outcome.to_load_series(&site);
    println!("\nschedule:");
    println!("  utilization:    {:.1}%", outcome.utilization() * 100.0);
    println!("  mean wait:      {}", outcome.mean_wait());
    println!("  metered energy: {}", load.total_energy());
    println!("  metered peak:   {}", load.peak().unwrap());

    // 4. Bill the load under the most common Table 2 contract shape:
    //    fixed tariff + monthly demand charge.
    let contract = Contract::builder("survey-typical")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .monthly_fee(Money::from_dollars(1_000.0))
        .build()
        .expect("valid contract");
    let bill = BillingEngine::new(Calendar::default())
        .bill(&contract, &load)
        .expect("billable load");
    println!("\n{}", bill.render());
    println!(
        "demand charges are {:.1}% of this bill — the lever the paper says SCs \
         should attack with energy efficiency.",
        bill.demand_share() * 100.0
    );
}
