//! Contract zoo: price the same month of SC load under all ten surveyed
//! sites' contract shapes (Table 2 rows) and see how the typology mix
//! changes the bill.
//!
//! ```sh
//! cargo run --release --example contract_zoo
//! ```

use hpcgrid::core::survey::corpus::SurveyCorpus;
use hpcgrid::core::typology::ContractComponentKind;
use hpcgrid::prelude::*;

fn main() {
    // One month of load from the reference facility.
    let site = SiteSpec::new(
        "zoo-site",
        hpcgrid::facility::site::Country::UnitedStates,
        512,
        hpcgrid::facility::node::NodeSpec::reference_hpc(),
        1.1,
        1.35,
        Power::from_megawatts(1.0),
        Power::from_kilowatts(20.0),
    )
    .unwrap();
    let trace = WorkloadBuilder::new(7)
        .nodes(site.node_count)
        .days(30)
        .arrivals_per_hour(18.0)
        .build();
    let outcome = ScheduleSimulator::new(site.node_count, Policy::EasyBackfill).run(&trace);
    let load = outcome.to_load_series(&site);
    println!(
        "reference load: {} over {} days, peak {}\n",
        load.total_energy(),
        30,
        load.peak().unwrap()
    );

    let engine = BillingEngine::new(Calendar::default());
    let corpus = SurveyCorpus::published();
    let mut results: Vec<(String, Money, f64, String)> = Vec::new();
    let nominal = load.mean_power().expect("non-empty load");
    for row in corpus.responses() {
        let contract = row.reference_contract_scaled(nominal);
        let bill = engine.bill(&contract, &load).expect("billable");
        let kinds: Vec<&str> = contract
            .component_kinds()
            .iter()
            .map(|k| k.label())
            .collect();
        results.push((
            row.site.to_string(),
            bill.total(),
            bill.demand_share(),
            kinds.join(" + "),
        ));
    }
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

    println!(
        "{:<8} {:>14} {:>14}  components",
        "site", "bill", "demand share"
    );
    println!("{}", "-".repeat(78));
    for (site, total, share, kinds) in &results {
        println!(
            "{site:<8} {:>14} {:>13.1}%  {kinds}",
            total.to_string(),
            share * 100.0
        );
    }

    // The paper's observation: sites with demand-side (kW) components pay
    // for their peaks; tariff-only sites pay for energy alone.
    let dc_sites: Vec<_> = corpus
        .responses()
        .iter()
        .filter(|r| r.has(ContractComponentKind::DemandCharge))
        .map(|r| r.site.to_string())
        .collect();
    println!(
        "\nsites with a demand-charge component ({}) carry a kW-domain share of \
         their bill; the typology's kWh/kW split is exactly this decomposition.",
        dc_sites.join(", ")
    );
}
