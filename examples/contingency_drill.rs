//! Contingency drill: the paper's future-work scenario end to end — a
//! stressed grid week, a staged contingency plan, and the impact analysis
//! an SC operator would review afterwards.
//!
//! ```sh
//! cargo run --release --example contingency_drill
//! ```

use hpcgrid::core::emergency::EmergencyDrClause;
use hpcgrid::dr::contingency::{execute_plan, ContingencyPlan, ContingencyResources};
use hpcgrid::facility::generator::OnsiteGenerator;
use hpcgrid::grid::demand::{demand_series, DemandParams};
use hpcgrid::grid::dispatch::MeritOrderMarket;
use hpcgrid::grid::events::{detect_events, StressThresholds};
use hpcgrid::grid::generation::GeneratorFleet;
use hpcgrid::prelude::*;

fn main() {
    // 1. A stressed regional grid over two weeks.
    let cal = Calendar::default();
    let demand = demand_series(
        &DemandParams::default(),
        &cal,
        SimTime::EPOCH,
        Duration::from_hours(1.0),
        14 * 24,
        77,
    )
    .unwrap();
    let market = MeritOrderMarket::new(
        GeneratorFleet::synthetic_regional(Power::from_megawatts(2_850.0), 0.0).unwrap(),
    );
    let dispatch = market.dispatch(&demand, None).unwrap();
    let events = detect_events(
        &dispatch,
        market.fleet().total_available(),
        StressThresholds::default(),
    )
    .unwrap();
    println!("grid: {} stress events in two weeks", events.len());
    for e in events.iter().take(5) {
        println!(
            "  {:?} at {} for {}",
            e.severity,
            e.window.start,
            e.window.duration()
        );
    }

    // 2. The SC: site, workload, plan, resources, emergency clause.
    let site = SiteSpec::new(
        "drill-site",
        hpcgrid::facility::site::Country::UnitedStates,
        512,
        hpcgrid::facility::node::NodeSpec::reference_hpc(),
        1.1,
        1.35,
        Power::from_megawatts(1.0),
        Power::from_kilowatts(40.0),
    )
    .unwrap();
    let trace = WorkloadBuilder::new(7)
        .nodes(site.node_count)
        .days(14)
        .deferrable_fraction(0.3)
        .max_job_nodes(256)
        .build();
    let plan = ContingencyPlan::reference(Power::from_kilowatts(220.0));
    println!("\ncontingency plan:");
    for (i, stage) in plan.stages().iter().enumerate() {
        println!(
            "  stage #{i} @ {:?}: {} actions",
            stage.trigger,
            stage.actions.len()
        );
    }
    let resources = ContingencyResources {
        generators: vec![OnsiteGenerator::reference_diesel()],
    };
    let clause = EmergencyDrClause::reference(Power::from_kilowatts(260.0));

    // 3. Execute and review.
    let out = execute_plan(
        &site,
        &trace,
        Policy::EasyBackfill,
        &events,
        &plan,
        &resources,
        Some(&clause),
        Duration::from_minutes(15.0),
    )
    .expect("drill succeeds");

    println!("\nimpact analysis:");
    for i in &out.impacts {
        println!(
            "  {:?} event at {}: {} → {} (relief {})",
            i.severity,
            i.window.start,
            i.baseline_mean,
            i.response_mean,
            i.relief()
        );
    }
    println!(
        "\nemergency penalties avoided: {} (fuel spent {})",
        out.penalty_avoided(),
        out.fuel_cost
    );
    println!(
        "mission cost: utilization {:.4} → {:.4}, mean wait {} → {}",
        out.dr.baseline.utilization(),
        out.dr.response.utilization(),
        out.dr.baseline.mean_wait(),
        out.dr.response.mean_wait()
    );
    println!(
        "\nThis is the loop the paper's conclusion calls for: 'impact analysis of \
         contingency planning on their operation in an effort to prepare for \
         more sophisticated grid integration.'"
    );
}
