//! CSCS-style procurement: run a public auction for an SC's electricity
//! supply with a renewable-mix floor and a bidder-chosen price formula,
//! then compare the winner against the legacy demand-charge contract.
//!
//! ```sh
//! cargo run --release --example procurement_auction
//! ```

use hpcgrid::dr::procurement::{random_bids, run_auction, ProcurementSpec};
use hpcgrid::prelude::*;
use hpcgrid::units::Ratio;

fn main() {
    // The site's reference year of load (30 days scaled is enough shape).
    let site = SiteSpec::new(
        "cscs-like",
        hpcgrid::facility::site::Country::Switzerland,
        512,
        hpcgrid::facility::node::NodeSpec::reference_hpc(),
        1.1,
        1.35,
        Power::from_megawatts(1.0),
        Power::from_kilowatts(20.0),
    )
    .unwrap();
    let trace = WorkloadBuilder::new(5)
        .nodes(site.node_count)
        .days(30)
        .arrivals_per_hour(18.0)
        .build();
    let outcome = ScheduleSimulator::new(site.node_count, Policy::EasyBackfill).run(&trace);
    let load = outcome.to_load_series(&site);
    let engine = BillingEngine::new(Calendar::default());

    // Legacy contract: fixed tariff + demand charges.
    let legacy = Contract::builder("legacy")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.075)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .build()
        .unwrap();
    let legacy_bill = engine.bill(&legacy, &load).unwrap();
    println!("legacy contract: {}", legacy_bill.total());
    println!(
        "  demand charges: {} ({:.1}% of bill)\n",
        legacy_bill.demand_cost(),
        legacy_bill.demand_share() * 100.0
    );

    // The procurement: ≥80 % renewable, demand charges removed, 4-variable
    // price formula chosen by each bidder.
    let spec = ProcurementSpec {
        min_renewable: Ratio::from_percent(80.0),
    };
    let bids = random_bids(2024, 10);
    let result = run_auction(&bids, &spec, &Calendar::default(), &load).unwrap();
    println!(
        "{} bids submitted, {} disqualified by the renewable floor:",
        bids.len(),
        result.disqualified.len()
    );
    for (name, why) in &result.disqualified {
        println!("  ✗ {name}: {why}");
    }
    println!("\nranking of qualifying bids:");
    for (i, b) in result.ranking.iter().enumerate() {
        println!(
            "  {}. {:<8} renewable {:>6}  cost {}",
            i + 1,
            b.bidder,
            b.renewable_share.to_string(),
            b.annual_cost
        );
    }
    let winner = result.winner().expect("a bid qualifies");
    let savings = legacy_bill.total() - winner.annual_cost;
    println!(
        "\nwinner: {} — saves {} vs the legacy contract while guaranteeing \
         {} renewable supply.",
        winner.bidder, savings, winner.renewable_share
    );
    println!(
        "This is the CSCS transformation the paper describes: from passive \
         consumer to a site that designs its own procurement."
    );
}
