//! DR event drill: the ESP calls a four-hour event; compare the SC's
//! response strategies (do nothing / cap / cap+shift) on both sides of the
//! meter — exactly the trade-off survey question 6 asks about.
//!
//! ```sh
//! cargo run --release --example dr_event_drill
//! ```

use hpcgrid::dr::event::{simulate_events, ResponseStrategy};
use hpcgrid::dr::program::CurtailmentProgram;
use hpcgrid::prelude::*;
use hpcgrid::timeseries::intervals::{Interval, IntervalSet};

fn main() {
    let site = SiteSpec::new(
        "drill-site",
        hpcgrid::facility::site::Country::UnitedStates,
        512,
        hpcgrid::facility::node::NodeSpec::reference_hpc(),
        1.1,
        1.35,
        Power::from_megawatts(1.0),
        Power::from_kilowatts(20.0),
    )
    .unwrap();
    let trace = WorkloadBuilder::new(99)
        .nodes(site.node_count)
        .days(7)
        .arrivals_per_hour(20.0)
        .deferrable_fraction(0.3)
        .build();

    // Wednesday 14:00–18:00: the ESP calls an event.
    let events = IntervalSet::from_intervals(vec![Interval::new(
        SimTime::from_days(2) + Duration::from_hours(14.0),
        SimTime::from_days(2) + Duration::from_hours(18.0),
    )]);
    let program = CurtailmentProgram {
        min_reduction: Power::from_kilowatts(20.0),
        shortfall_penalty: Money::ZERO,
        ..CurtailmentProgram::reference()
    };
    println!(
        "event: {} for {}, incentive {}/kWh curtailed\n",
        events.intervals()[0].start,
        events.total_duration(),
        program.incentive
    );

    let strategies = [
        ("do nothing", ResponseStrategy::none()),
        (
            "cap at 200 kW",
            ResponseStrategy {
                cap: Some(Power::from_kilowatts(200.0)),
                ..Default::default()
            },
        ),
        (
            "cap + shift deferrable",
            ResponseStrategy {
                cap: Some(Power::from_kilowatts(200.0)),
                shift_deferrable: true,
                shutdown_idle: false,
                dvfs_factor: None,
            },
        ),
    ];
    println!(
        "{:<24} {:>12} {:>12} {:>14} {:>12}",
        "strategy", "curtailed", "revenue", "utilizationΔ", "waitΔ"
    );
    println!("{}", "-".repeat(80));
    for (name, strat) in strategies {
        let out = simulate_events(
            &site,
            &trace,
            Policy::EasyBackfill,
            &events,
            strat,
            &program,
            Duration::from_minutes(15.0),
        )
        .expect("simulation succeeds");
        let curtailed: f64 = out
            .settlements
            .iter()
            .map(|s| s.curtailed.as_kilowatt_hours())
            .sum();
        println!(
            "{name:<24} {:>9.0} kWh {:>12} {:>14.4} {:>12}",
            curtailed,
            out.net_revenue().to_string(),
            -out.utilization_delta(),
            out.wait_delta().to_string(),
        );
    }
    println!(
        "\nThe revenue column is why the paper found SCs unenthusiastic: even a \
         generous program pays a few hundred dollars for an event, while the \
         machine depreciates tens of thousands per day."
    );
}
