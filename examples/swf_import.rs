//! SWF import: run the billing pipeline on a Standard Workload Format
//! trace (the Parallel Workloads Archive format), instead of a synthetic
//! workload — the path a site would use with its own scheduler logs.
//!
//! ```sh
//! cargo run --release --example swf_import [path/to/trace.swf]
//! ```
//!
//! Without an argument a small embedded fragment is used.

use hpcgrid::prelude::*;
use hpcgrid::workload::swf::{parse_swf, to_swf};

const EMBEDDED: &str = "\
; embedded demo fragment (SWF)
1  0      10 7200  64  -1 -1 64  10800 -1 1 -1 -1 -1 -1 -1 -1 -1
2  1800   0  3600  32  -1 -1 32  5400  -1 1 -1 -1 -1 -1 -1 -1 -1
3  3600   0  14400 128 -1 -1 128 21600 -1 1 -1 -1 -1 -1 -1 -1 -1
4  7200   0  1800  16  -1 -1 16  2700  -1 1 -1 -1 -1 -1 -1 -1 -1
5  10800  0  7200  96  -1 -1 96  10800 -1 1 -1 -1 -1 -1 -1 -1 -1
6  14400  0  3600  256 -1 -1 256 7200  -1 1 -1 -1 -1 -1 -1 -1 -1
7  18000  0  900   8   -1 -1 8   1800  -1 1 -1 -1 -1 -1 -1 -1 -1
8  21600  0  10800 64  -1 -1 64  14400 -1 1 -1 -1 -1 -1 -1 -1 -1
";

fn main() {
    let machine_nodes = 512;
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        }
        None => EMBEDDED.to_string(),
    };
    let trace = parse_swf(&text, machine_nodes).expect("valid SWF");
    println!(
        "imported {} jobs over {} (offered load {:.2})",
        trace.len(),
        trace.horizon,
        trace.offered_load()
    );

    let site = SiteSpec::new(
        "swf-site",
        hpcgrid::facility::site::Country::UnitedStates,
        machine_nodes,
        hpcgrid::facility::node::NodeSpec::reference_hpc(),
        1.1,
        1.35,
        Power::from_megawatts(1.0),
        Power::from_kilowatts(20.0),
    )
    .unwrap();
    let outcome = ScheduleSimulator::new(machine_nodes, Policy::EasyBackfill)
        .try_run(&trace)
        .expect("schedulable trace");
    let load = outcome.to_load_series(&site);
    println!(
        "scheduled: utilization {:.1}%, mean wait {}",
        outcome.utilization() * 100.0,
        outcome.mean_wait()
    );

    let contract = Contract::builder("swf-demo")
        .tariff(Tariff::fixed(EnergyPrice::per_kilowatt_hour(0.07)))
        .demand_charge(DemandCharge::monthly(DemandPrice::per_kilowatt_month(12.0)))
        .build()
        .unwrap();
    let bill = BillingEngine::new(Calendar::default())
        .bill(&contract, &load)
        .unwrap();
    println!("\n{}", bill.render());

    // Round-trip: re-export the trace for other simulators.
    let exported = to_swf(&trace);
    println!(
        "re-exported {} SWF lines (header + jobs)",
        exported.lines().count()
    );
}
