//! Grid-side view: a summer week in a tight balancing area — renewables,
//! merit-order prices, stress events, and an SC's emergency-DR clause being
//! exercised.
//!
//! ```sh
//! cargo run --release --example grid_stress_week
//! ```

use hpcgrid::core::emergency::EmergencyDrClause;
use hpcgrid::grid::demand::{demand_series, DemandParams};
use hpcgrid::grid::dispatch::MeritOrderMarket;
use hpcgrid::grid::events::{detect_events, emergency_windows, StressThresholds};
use hpcgrid::grid::generation::GeneratorFleet;
use hpcgrid::grid::renewables::{solar_series, wind_series, SolarParams, WindParams};
use hpcgrid::prelude::*;

fn main() {
    let cal = Calendar::default();
    let step = Duration::from_hours(1.0);
    let n = 7 * 24;
    let start = SimTime::from_days(180); // mid-summer week

    // Regional demand and renewables.
    let demand = demand_series(&DemandParams::default(), &cal, start, step, n, 8).unwrap();
    let solar = solar_series(&SolarParams::default(), &cal, start, step, n, 8).unwrap();
    let wind = wind_series(&WindParams::default(), start, step, n, 8).unwrap();
    let renewables = solar.add_series(&wind).unwrap();

    // A deliberately under-built fleet to provoke stress.
    let fleet = GeneratorFleet::synthetic_regional(Power::from_megawatts(2_900.0), 0.0).unwrap();
    let market = MeritOrderMarket::new(fleet);
    let outcome = market.dispatch(&demand, Some(&renewables)).unwrap();

    println!("summer week dispatch:");
    println!("  renewable share: {}", outcome.renewable_share());
    let max_price = outcome
        .prices
        .values()
        .iter()
        .fold(EnergyPrice::ZERO, |a, p| a.max(*p));
    println!("  max hourly price: {max_price}");
    println!("  unserved energy:  {}", outcome.unserved_energy());

    // Stress events.
    let events = detect_events(
        &outcome,
        market.fleet().total_available(),
        StressThresholds::default(),
    )
    .unwrap();
    println!("\nstress events detected: {}", events.len());
    for e in &events {
        println!(
            "  {:?} from {} for {} (min reserve {})",
            e.severity,
            e.window.start,
            e.window.duration(),
            e.min_reserve
        );
    }

    // An SC with an emergency clause rides through the events.
    let windows = emergency_windows(&events);
    if windows.is_empty() {
        println!("\nno emergency windows this week — the SC's clause lies dormant.");
        return;
    }
    let clause = EmergencyDrClause::reference(Power::from_megawatts(5.0));
    // Two SC behaviours: ignore the event vs shed to 4 MW.
    let sc_ignore = PowerSeries::constant(start, step, Power::from_megawatts(9.0), n).unwrap();
    let sc_shed = sc_ignore.map_with_time(|t, p| {
        if windows.contains(t) {
            Power::from_megawatts(4.0)
        } else {
            *p
        }
    });
    let a_ignore = clause.assess(&sc_ignore, &windows).unwrap();
    let a_shed = clause.assess(&sc_shed, &windows).unwrap();
    println!(
        "\nSC emergency clause (limit {}): ignoring events costs {}, shedding costs {}",
        clause.limit, a_ignore.total_penalty, a_shed.total_penalty
    );
    println!(
        "Mandatory emergency DR is the 'Other' branch of the typology: not a \
         market program but a reliability obligation."
    );
}
